"""Setup shim for environments without PEP 517 build isolation.

``pip install -e . --no-build-isolation --no-use-pep517`` works offline;
configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
