"""Composing taxonomies with application designs."""

from __future__ import annotations

from typing import List

from repro.lang.ast_nodes import DeviceDecl, Spec
from repro.lang.parser import parse


def combine(*fragments: str) -> Spec:
    """Concatenate DiaSpec fragments into one design.

    Fragments are plain DiaSpec text (a taxonomy, then application
    declarations); duplicate declarations across fragments are rejected
    by the analyzer, exactly as they would be in a single file.
    """
    declarations = []
    for fragment in fragments:
        declarations.extend(parse(fragment).declarations)
    return Spec(tuple(declarations))


def taxonomy_device_names(fragment: str) -> List[str]:
    """The device types a taxonomy contributes (sorted)."""
    return sorted(
        declaration.name
        for declaration in parse(fragment).declarations
        if isinstance(declaration, DeviceDecl)
    )
