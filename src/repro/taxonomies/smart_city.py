"""The smart-city taxonomy: the shared vocabulary of city-scale
applications (parking, transportation, environment).

The display-panel hierarchy mirrors Figure 6; environmental sensors and
traffic counters extend the vocabulary beyond the paper's parking study
so other city applications (pollution monitoring, traffic steering) can
be designed over the same taxonomy.
"""

SMART_CITY_TAXONOMY = """\
enumeration CityZoneEnum { CENTER, NORTH, SOUTH, EAST, WEST }

device CityDisplayPanel {
    action update(status as String);
}

device ZonePanel extends CityDisplayPanel {
    attribute zone as CityZoneEnum;
}

device CityPresenceSensor {
    attribute zone as CityZoneEnum;
    source presence as Boolean;
}

device TrafficCounter {
    attribute zone as CityZoneEnum;
    source vehicleCount as Integer;
}

device PollutionSensor {
    attribute zone as CityZoneEnum;
    source pm10 as Float;
    source no2 as Float;
}

device CityMessenger {
    action sendMessage(message as String);
}
"""
