"""The assisted-living taxonomy (§III: "we created a taxonomy of entities
for the domain of assisted living").

Shared device declarations for home applications: both the cooker
monitoring application and the HomeAssist platform can be expressed over
this vocabulary.  Appliances share an ``Appliance`` supertype (so a
safety application can discover everything that draws power), sensors
carry a ``room`` attribute, and interaction devices (prompter,
notification service) round out the home.
"""

ASSISTED_LIVING_TAXONOMY = """\
enumeration HomeRoomEnum { KITCHEN, LIVING_ROOM, BEDROOM, BATHROOM, HALLWAY }

enumeration HomeDoorEnum { FRONT, BACK }

enumeration AlertLevelEnum { INFO, WARNING, URGENT }

device Appliance {
    source consumption as Float;
    action On;
    action Off;
}

device HomeCooker extends Appliance {
}

device Kettle extends Appliance {
}

device HomeClock {
    source tickSecond as Integer;
    source tickMinute as Integer;
    source tickHour as Integer;
}

device RoomMotionSensor {
    attribute room as HomeRoomEnum;
    source motion as Boolean;
}

device DoorContactSensor {
    attribute door as HomeDoorEnum;
    source open as Boolean;
}

device RoomLamp {
    attribute room as HomeRoomEnum;
    action On;
    action Off;
}

device HomePrompter {
    source answer as String indexed by questionId as String;
    action askQuestion(question as String, questionId as String);
}

device CaregiverService {
    action notify(message as String, level as AlertLevelEnum);
}
"""
