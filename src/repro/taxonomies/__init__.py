"""Reusable device taxonomies.

"Device declarations are factorized and form a taxonomy dedicated to a
given area, used across applications" (§III).  This package ships two
such taxonomies as DiaSpec fragments — assisted living and smart city —
plus :func:`combine` for composing a taxonomy with application-specific
declarations into one design.
"""

from repro.taxonomies.assisted_living import ASSISTED_LIVING_TAXONOMY
from repro.taxonomies.smart_city import SMART_CITY_TAXONOMY
from repro.taxonomies.compose import combine, taxonomy_device_names

__all__ = [
    "ASSISTED_LIVING_TAXONOMY",
    "SMART_CITY_TAXONOMY",
    "combine",
    "taxonomy_device_names",
]
