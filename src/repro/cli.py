"""Command-line toolchain for DiaSpec designs.

The paper's methodology is *tool-based* (§I); this module is the tooling
face of the reproduction::

    python -m repro check  design.diaspec      # analyze, report warnings
    python -m repro fmt    design.diaspec      # canonical formatting
    python -m repro graph  design.diaspec      # dataflow graph + layers
    python -m repro chains design.diaspec      # functional chains (Fig. 3)
    python -m repro stats  design.diaspec      # design metrics
    python -m repro compile design.diaspec --name App -o out/  # framework+stubs
    python -m repro metrics                    # run an example, dump telemetry

Exit status: 0 on success, 1 on a design error (with a message on
stderr), 2 on bad usage.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.codegen.framework_gen import generate_framework
from repro.codegen.stub_gen import generate_stubs
from repro.errors import DiaSpecError
from repro.lang.ast_nodes import (
    WhenPeriodic,
    WhenProvidedContext,
    WhenProvidedSource,
    WhenRequired,
)
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.naming import camel_to_snake
from repro.sema.analyzer import AnalyzedSpec, analyze


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    arguments = parser.parse_args(argv)
    if arguments.command is None:
        parser.print_help()
        return 2
    try:
        return arguments.handler(arguments)
    except DiaSpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DiaSpec design toolchain (ICDCS 2017 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command")
    parser.set_defaults(command=None)

    def add(name, help_text, handler):
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("design", help="path to a .diaspec file")
        sub.set_defaults(handler=handler)
        return sub

    add("check", "analyze a design and report problems", _cmd_check)
    add("fmt", "print the canonical form of a design", _cmd_fmt)
    graph_parser = add(
        "graph", "print the component dataflow graph", _cmd_graph
    )
    graph_parser.add_argument(
        "--dot", action="store_true",
        help="emit Graphviz DOT instead of the text rendering",
    )
    add("chains", "print the source-to-action functional chains",
        _cmd_chains)
    add("stats", "print design metrics", _cmd_stats)
    doc_parser = add("doc", "render Markdown documentation for a design",
                     _cmd_doc)
    doc_parser.add_argument(
        "--title", default=None, help="document title (default: file name)"
    )

    diff_parser = subparsers.add_parser(
        "diff", help="compare two design versions (exit 3 on breaking "
        "changes)"
    )
    diff_parser.add_argument("old", help="path to the old design")
    diff_parser.add_argument("new", help="path to the new design")
    diff_parser.set_defaults(handler=_cmd_diff)

    compile_parser = add(
        "compile", "generate the programming framework and stubs",
        _cmd_compile,
    )
    compile_parser.add_argument(
        "--name", default="App", help="application/framework name"
    )
    compile_parser.add_argument(
        "-o", "--output", default=".",
        help="output directory (default: current)",
    )
    compile_parser.add_argument(
        "--no-stubs", action="store_true",
        help="generate only the framework, not the implementation stubs",
    )

    metrics_parser = subparsers.add_parser(
        "metrics",
        help="run the parking example and dump a Prometheus metrics "
        "snapshot",
    )
    metrics_parser.add_argument(
        "--seconds", type=float, default=1800.0,
        help="simulated seconds to run (default: 1800)",
    )
    metrics_parser.add_argument(
        "--chrome-trace", default=None, metavar="PATH",
        help="also write the traced timeline as Chrome-trace JSON "
        "(loadable in chrome://tracing)",
    )
    metrics_parser.set_defaults(handler=_cmd_metrics)

    chaos_parser = subparsers.add_parser(
        "chaos",
        help="run the parking example under a seeded fault plan and "
        "report recovery",
    )
    chaos_parser.add_argument(
        "--seed", type=int, default=7,
        help="fault-plan seed (default: 7); the same seed always kills "
        "the same sensors",
    )
    chaos_parser.add_argument(
        "--duration", type=float, default=7200.0,
        help="simulated seconds to run (default: 7200)",
    )
    chaos_parser.add_argument(
        "--kill-fraction", type=float, default=0.3,
        help="fraction of presence sensors taken down (default: 0.3)",
    )
    chaos_parser.add_argument(
        "--stale", choices=("last_known", "skip", "fail"),
        default="last_known",
        help="degraded-delivery policy for failed reads "
        "(default: last_known)",
    )
    chaos_parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the JSON report to this path",
    )
    chaos_parser.set_defaults(handler=_cmd_chaos)

    tune_parser = subparsers.add_parser(
        "tune",
        help="run the parking example with the adaptive tuning "
        "controller closed over a connection-flap plan and report the "
        "trajectory",
    )
    tune_parser.add_argument(
        "--seed", type=int, default=7,
        help="fault-plan and controller seed (default: 7)",
    )
    tune_parser.add_argument(
        "--duration", type=float, default=21600.0,
        help="simulated seconds to run (default: 21600)",
    )
    tune_parser.add_argument(
        "--interval", type=float, default=600.0,
        help="controller tick interval in simulated seconds "
        "(default: 600)",
    )
    tune_parser.add_argument(
        "--flap-fraction", type=float, default=0.5,
        help="fraction of presence sensors that flap (default: 0.5)",
    )
    tune_parser.add_argument(
        "--report", default=None, metavar="PATH",
        help="also write the JSON report to this path",
    )
    tune_parser.set_defaults(handler=_cmd_tune)
    return parser


def _read(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _analyze_file(path: str) -> AnalyzedSpec:
    return analyze(_read(path))


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def _cmd_check(arguments) -> int:
    design = _analyze_file(arguments.design)
    devices = len(design.devices)
    contexts = len(design.contexts)
    controllers = len(design.controllers)
    print(
        f"OK: {devices} device(s), {contexts} context(s), "
        f"{controllers} controller(s)"
    )
    for warning in design.report.warnings:
        print(f"warning: {warning}")
    return 0


def _cmd_fmt(arguments) -> int:
    spec = parse(_read(arguments.design))
    sys.stdout.write(pretty(spec))
    return 0


def _cmd_graph(arguments) -> int:
    design = _analyze_file(arguments.design)
    if getattr(arguments, "dot", False):
        title = os.path.splitext(os.path.basename(arguments.design))[0]
        print(design.graph.render_dot(title))
    else:
        print(design.graph.render())
    return 0


def _cmd_chains(arguments) -> int:
    design = _analyze_file(arguments.design)
    chains = design.graph.functional_chains()
    if not chains:
        print("(no complete source-to-action chains)")
        return 0
    for chain in chains:
        print(" -> ".join(chain))
    return 0


def _cmd_stats(arguments) -> int:
    design = _analyze_file(arguments.design)
    interactions = {
        "event-driven": 0,
        "periodic": 0,
        "context-subscription": 0,
        "query-served (when required)": 0,
    }
    grouped = mapreduce = windowed = 0
    for context in design.contexts.values():
        for interaction in context.decl.interactions:
            if isinstance(interaction, WhenProvidedSource):
                interactions["event-driven"] += 1
            elif isinstance(interaction, WhenPeriodic):
                interactions["periodic"] += 1
                if interaction.group is not None:
                    grouped += 1
                    if interaction.group.uses_mapreduce:
                        mapreduce += 1
                    if interaction.group.window is not None:
                        windowed += 1
            elif isinstance(interaction, WhenProvidedContext):
                interactions["context-subscription"] += 1
            elif isinstance(interaction, WhenRequired):
                interactions["query-served (when required)"] += 1

    sources = sum(len(d.sources) for d in design.devices.values())
    actions = sum(len(d.actions) for d in design.devices.values())
    attributes = sum(len(d.attributes) for d in design.devices.values())
    print(f"devices:      {len(design.devices)} "
          f"({sources} sources, {actions} actions, {attributes} attributes)")
    print(f"contexts:     {len(design.contexts)}")
    print(f"controllers:  {len(design.controllers)}")
    print(f"enumerations: {len(design.spec.enumerations)}")
    print(f"structures:   {len(design.spec.structures)}")
    print("interactions:")
    for label, count in interactions.items():
        print(f"  {label}: {count}")
    print(f"  grouped by: {grouped} (mapreduce: {mapreduce}, "
          f"windowed: {windowed})")
    layers = design.graph.layers
    depth = max(layers.values()) if layers else 0
    print(f"dataflow depth: {depth} layer(s), "
          f"{len(design.graph.functional_chains())} functional chain(s)")
    return 0


def _cmd_doc(arguments) -> int:
    from repro.codegen.docgen import generate_docs

    design = _analyze_file(arguments.design)
    title = arguments.title or os.path.splitext(
        os.path.basename(arguments.design)
    )[0]
    sys.stdout.write(generate_docs(design, title))
    return 0


def _cmd_diff(arguments) -> int:
    from repro.sema.diff import diff_designs

    diff = diff_designs(_read(arguments.old), _read(arguments.new))
    print(diff.render())
    return 3 if diff.is_breaking else 0


def _cmd_metrics(arguments) -> int:
    """Run the parking example under telemetry and print the snapshot.

    Periods are scaled down (1-minute sweeps, 10-minute occupancy
    windows) so a short simulated run exercises every instrumented
    layer: bus, entity registry, MapReduce engine, window accumulators,
    and device reads.
    """
    from repro.apps.parking.app import build_parking_app
    from repro.runtime.tracing import Tracer
    from repro.telemetry import render_chrome_trace

    parking = build_parking_app(
        availability_period="1 min",
        usage_period="5 min",
        occupancy_window="10 min",
        start=False,
    )
    app = parking.application
    tracer = None
    if arguments.chrome_trace:
        tracer = Tracer(app).attach()
    app.start()
    app.advance(arguments.seconds)
    sys.stdout.write(app.metrics.render_prometheus())
    if tracer is not None:
        with open(arguments.chrome_trace, "w", encoding="utf-8") as handle:
            handle.write(render_chrome_trace(tracer, app.name))
        print(
            f"wrote {arguments.chrome_trace} "
            f"({len(tracer.entries)} trace events)",
            file=sys.stderr,
        )
    return 0


def _cmd_chaos(arguments) -> int:
    """Kill a slice of the parking sensors mid-run and report recovery.

    Exit status is 0 only when every injected failure recovered: all
    breakers closed, no entity quarantined or failed at the end of the
    run, and no gather ever aborted.  CI runs this as a smoke test.
    """
    import json

    from repro.faults.chaos import run_parking_chaos

    report = run_parking_chaos(
        seed=arguments.seed,
        duration_seconds=arguments.duration,
        kill_fraction=arguments.kill_fraction,
        stale_mode=arguments.stale,
    )
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if arguments.report:
        with open(arguments.report, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {arguments.report}", file=sys.stderr)
    if not report["recovered"]:
        if report["injected_read_failures"] == 0:
            print(
                "chaos: no faults fired within the run window "
                "(nothing was proven)",
                file=sys.stderr,
            )
        else:
            print(
                f"chaos: {report['unrecovered_failures']} unrecovered "
                f"failure(s)",
                file=sys.stderr,
            )
        return 1
    return 0


def _cmd_tune(arguments) -> int:
    """Close the telemetry → config loop on the parking deployment.

    Half the presence sensors flap; the controller retunes the live
    supervision policy to stop burning reads on dark hardware.  Exit
    status is 0 only when the controller actually evaluated its
    objective and made at least one adjustment — a run too short to
    tick (or a plan that never fires) proves nothing.
    """
    import json

    from repro.runtime.tuning import run_parking_tuning

    report = run_parking_tuning(
        seed=arguments.seed,
        duration_seconds=arguments.duration,
        interval_seconds=arguments.interval,
        flap_fraction=arguments.flap_fraction,
    )
    rendered = json.dumps(report, indent=2, sort_keys=True)
    print(rendered)
    if arguments.report:
        with open(arguments.report, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {arguments.report}", file=sys.stderr)
    if not report["adjusted"]:
        print(
            "tune: the controller never adjusted a knob "
            "(run longer, or widen the fault plan)",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_compile(arguments) -> int:
    design = _analyze_file(arguments.design)
    name = arguments.name
    os.makedirs(arguments.output, exist_ok=True)
    module_base = camel_to_snake(name)
    framework_path = os.path.join(
        arguments.output, f"{module_base}_framework.py"
    )
    framework_source = generate_framework(design, name)
    with open(framework_path, "w", encoding="utf-8") as handle:
        handle.write(framework_source)
    print(f"wrote {framework_path} "
          f"({len(framework_source.splitlines())} lines)")
    if not arguments.no_stubs:
        stubs_path = os.path.join(arguments.output, f"{module_base}_impl.py")
        stub_source = generate_stubs(
            design, name, framework_module=f"{module_base}_framework"
        )
        with open(stubs_path, "w", encoding="utf-8") as handle:
            handle.write(stub_source)
        print(f"wrote {stubs_path} ({len(stub_source.splitlines())} lines)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
