"""MapReduce execution engine.

Runs a :class:`~repro.mapreduce.api.MapReduce` job over grouped sensor
data (``{group_key: [readings]}``) and returns the reduced results
(``{intermediate_key: reduced_value}``).  Three executors:

* :class:`SerialExecutor` — single-threaded reference implementation; the
  baseline of the scaling benchmarks.
* :class:`ThreadExecutor` — map chunks and reduce partitions fan out to a
  thread pool.  Python threads do not speed up pure-Python byte-code, but
  they parallelize readings whose processing releases the GIL and they
  exercise the same partitioned dataflow as a distributed backend.
* :class:`ProcessExecutor` — fan-out to worker processes; requires the job
  and data to be picklable.  This stands in for the cluster backend of the
  DiaSwarm work the paper builds on.

Results are identical across executors for deterministic jobs — the
framework interface "prevents the specificities of a target MapReduce
implementation to percolate to the application logic" (Section V.B).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, Hashable, List, Mapping, Sequence, Tuple

from repro.mapreduce.api import MapCollector, MapReduce, ReduceCollector
from repro.mapreduce.partition import group_pairs, hash_partition, partition_items

Pairs = List[Tuple[Hashable, Any]]


def _run_map_chunk(
    job: MapReduce, chunk: Sequence[Tuple[Hashable, Any]]
) -> Pairs:
    collector = MapCollector()
    for key, value in chunk:
        job.map(key, value, collector)
    return collector.pairs


def _run_reduce_bucket(job: MapReduce, bucket: Pairs) -> Pairs:
    collector = ReduceCollector()
    for key, values in group_pairs(bucket).items():
        job.reduce(key, values, collector)
    return collector.pairs


class SerialExecutor:
    """Reference executor: both phases run inline."""

    workers = 1

    def run(self, job: MapReduce, grouped: Mapping[Hashable, Sequence[Any]]):
        inputs = [
            (key, value) for key, values in grouped.items() for value in values
        ]
        intermediate = _run_map_chunk(job, inputs)
        return dict(_run_reduce_bucket(job, intermediate))


class _PooledExecutor:
    """Shared fan-out logic for thread and process pools."""

    def __init__(self, workers: int = 4):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers

    def _pool(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def run(self, job: MapReduce, grouped: Mapping[Hashable, Sequence[Any]]):
        inputs = [
            (key, value) for key, values in grouped.items() for value in values
        ]
        chunks = partition_items(inputs, self.workers)
        if not chunks:
            return {}
        with self._pool() as pool:
            map_results = list(
                pool.map(_run_map_chunk, [job] * len(chunks), chunks)
            )
            intermediate: Pairs = [
                pair for chunk in map_results for pair in chunk
            ]
            buckets = [
                bucket
                for bucket in hash_partition(intermediate, self.workers)
                if bucket
            ]
            if not buckets:
                return {}
            reduce_results = list(
                pool.map(_run_reduce_bucket, [job] * len(buckets), buckets)
            )
        merged: Dict[Hashable, Any] = {}
        for pairs in reduce_results:
            merged.update(pairs)
        return merged


class ThreadExecutor(_PooledExecutor):
    """Thread-pool executor."""

    def _pool(self):
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessExecutor(_PooledExecutor):
    """Process-pool executor; job and data must be picklable."""

    def _pool(self):
        return ProcessPoolExecutor(max_workers=self.workers)


class MapReduceEngine:
    """Facade bundling an executor with result post-processing."""

    def __init__(self, executor=None):
        self.executor = executor or SerialExecutor()

    def run(
        self, job: MapReduce, grouped: Mapping[Hashable, Sequence[Any]]
    ) -> Dict[Hashable, Any]:
        return self.executor.run(job, grouped)


def run_mapreduce(
    job: MapReduce,
    grouped: Mapping[Hashable, Sequence[Any]],
    executor=None,
) -> Dict[Hashable, Any]:
    """One-shot convenience wrapper around :class:`MapReduceEngine`."""
    return MapReduceEngine(executor).run(job, grouped)
