"""MapReduce execution engine.

Runs a :class:`~repro.mapreduce.api.MapReduce` job over grouped sensor
data (``{group_key: [readings]}``) and returns the reduced results
(``{intermediate_key: reduced_value}``).  Three executors:

* :class:`SerialExecutor` — single-threaded reference implementation; the
  baseline of the scaling benchmarks.
* :class:`ThreadExecutor` — map chunks and reduce partitions fan out to a
  thread pool.  Python threads do not speed up pure-Python byte-code, but
  they parallelize readings whose processing releases the GIL and they
  exercise the same partitioned dataflow as a distributed backend.
* :class:`ProcessExecutor` — fan-out to worker processes; requires the job
  and data to be picklable.  This stands in for the cluster backend of the
  DiaSwarm work the paper builds on.

Results are identical across executors for deterministic jobs — the
framework interface "prevents the specificities of a target MapReduce
implementation to percolate to the application logic" (Section V.B).

When the job provides the optional ``combine`` hook, every executor runs
it per map chunk *before* partitioning, so only one partial aggregate per
(chunk, key) crosses the shuffle boundary.  Each run records shuffle
volume in ``executor.last_stats`` / ``engine.last_stats``::

    {"map_emitted": <pairs the Map phase produced>,
     "shuffled":    <pairs that crossed the map->reduce boundary>,
     "reduced":     <final result count>,
     "combined":    <whether the combine hook ran>}

making the combiner's win (``map_emitted / shuffled``) observable.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, Hashable, List, Mapping, Sequence, Tuple

from repro.mapreduce.api import (
    CombineCollector,
    MapCollector,
    MapReduce,
    ReduceCollector,
    job_combiner,
)
from repro.mapreduce.partition import group_pairs, hash_partition, partition_items

Pairs = List[Tuple[Hashable, Any]]


def _run_map_chunk(
    job: MapReduce, chunk: Sequence[Tuple[Hashable, Any]]
) -> Tuple[Pairs, int]:
    """Map one chunk; returns (pairs to shuffle, raw map emission count).

    With a combiner, the raw emissions are folded to one partial per key
    here — inside the map task, before any pair crosses an executor
    boundary — which is what makes this the *map-side* combine.
    """
    collector = MapCollector()
    for key, value in chunk:
        job.map(key, value, collector)
    pairs = collector.pairs
    emitted = len(pairs)
    combine = job_combiner(job)
    if combine is not None and pairs:
        combined = CombineCollector()
        for key, values in group_pairs(pairs).items():
            combine(key, values, combined)
        pairs = combined.pairs
    return pairs, emitted


def _run_reduce_bucket(job: MapReduce, bucket: Pairs) -> Pairs:
    collector = ReduceCollector()
    for key, values in group_pairs(bucket).items():
        job.reduce(key, values, collector)
    return collector.pairs


def _stats(map_emitted: int, shuffled: int, reduced: int, combined: bool):
    return {
        "map_emitted": map_emitted,
        "shuffled": shuffled,
        "reduced": reduced,
        "combined": combined,
    }


class SerialExecutor:
    """Reference executor: both phases run inline."""

    workers = 1
    last_stats: Dict[str, Any] = _stats(0, 0, 0, False)

    def run(self, job: MapReduce, grouped: Mapping[Hashable, Sequence[Any]]):
        inputs = [
            (key, value) for key, values in grouped.items() for value in values
        ]
        intermediate, emitted = _run_map_chunk(job, inputs)
        result = dict(_run_reduce_bucket(job, intermediate))
        self.last_stats = _stats(
            emitted, len(intermediate), len(result),
            job_combiner(job) is not None,
        )
        return result


class _PooledExecutor:
    """Shared fan-out logic for thread and process pools."""

    def __init__(self, workers: int = 4):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.last_stats: Dict[str, Any] = _stats(0, 0, 0, False)

    def _pool(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def run(self, job: MapReduce, grouped: Mapping[Hashable, Sequence[Any]]):
        combined = job_combiner(job) is not None
        inputs = [
            (key, value) for key, values in grouped.items() for value in values
        ]
        chunks = partition_items(inputs, self.workers)
        if not chunks:
            self.last_stats = _stats(0, 0, 0, combined)
            return {}
        with self._pool() as pool:
            map_results = list(
                pool.map(_run_map_chunk, [job] * len(chunks), chunks)
            )
            intermediate: Pairs = [
                pair for chunk_pairs, __ in map_results for pair in chunk_pairs
            ]
            emitted = sum(count for __, count in map_results)
            buckets = [
                bucket
                for bucket in hash_partition(intermediate, self.workers)
                if bucket
            ]
            if not buckets:
                self.last_stats = _stats(emitted, 0, 0, combined)
                return {}
            reduce_results = list(
                pool.map(_run_reduce_bucket, [job] * len(buckets), buckets)
            )
        merged: Dict[Hashable, Any] = {}
        for pairs in reduce_results:
            merged.update(pairs)
        self.last_stats = _stats(
            emitted, len(intermediate), len(merged), combined
        )
        return merged


class ThreadExecutor(_PooledExecutor):
    """Thread-pool executor."""

    def _pool(self):
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessExecutor(_PooledExecutor):
    """Process-pool executor; job and data must be picklable."""

    def _pool(self):
        return ProcessPoolExecutor(max_workers=self.workers)


class MapReduceEngine:
    """Facade bundling an executor with result post-processing."""

    def __init__(self, executor=None):
        self.executor = executor or SerialExecutor()

    def run(
        self, job: MapReduce, grouped: Mapping[Hashable, Sequence[Any]]
    ) -> Dict[Hashable, Any]:
        return self.executor.run(job, grouped)

    @property
    def last_stats(self) -> Dict[str, Any]:
        """Shuffle-volume counters of the most recent run."""
        return dict(self.executor.last_stats)


def run_mapreduce(
    job: MapReduce,
    grouped: Mapping[Hashable, Sequence[Any]],
    executor=None,
) -> Dict[Hashable, Any]:
    """One-shot convenience wrapper around :class:`MapReduceEngine`."""
    return MapReduceEngine(executor).run(job, grouped)
