"""MapReduce execution engine.

Runs a :class:`~repro.mapreduce.api.MapReduce` job over grouped sensor
data (``{group_key: [readings]}``) and returns the reduced results
(``{intermediate_key: reduced_value}``).  Three executors:

* :class:`SerialExecutor` — single-threaded reference implementation; the
  baseline of the scaling benchmarks.
* :class:`ThreadExecutor` — map chunks and reduce partitions fan out to a
  thread pool.  Python threads do not speed up pure-Python byte-code, but
  they parallelize readings whose processing releases the GIL and they
  exercise the same partitioned dataflow as a distributed backend.
* :class:`ProcessExecutor` — fan-out to worker processes; requires the job
  and data to be picklable.  This stands in for the cluster backend of the
  DiaSwarm work the paper builds on.

Results are identical across executors for deterministic jobs — the
framework interface "prevents the specificities of a target MapReduce
implementation to percolate to the application logic" (Section V.B).

When the job provides the optional ``combine`` hook, every executor runs
it per map chunk *before* partitioning, so only one partial aggregate per
(chunk, key) crosses the shuffle boundary.  Each run records shuffle
volume in ``executor.last_stats`` / ``engine.last_stats``, with key
names aligned with the bus's ``published``/``delivered`` convention
(past-participle verb per phase)::

    {"mapped":       <pairs the Map phase produced>,
     "shuffled":     <pairs that crossed the map->reduce boundary>,
     "reduced":      <final result count>,
     "combine_used": <whether the combine hook ran>}

making the combiner's win (``mapped / shuffled``) observable.  The
engine additionally accumulates the same counters across runs and can
export them through a telemetry registry (``mapreduce_mapped_total``
and friends).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Dict, Hashable, List, Mapping, Sequence, Tuple

from repro.mapreduce.api import (
    CombineCollector,
    MapCollector,
    MapReduce,
    ReduceCollector,
    job_combiner,
)
from repro.telemetry.instrument import Instrumented, MetricSpec
from repro.mapreduce.partition import group_pairs, hash_partition, partition_items

Pairs = List[Tuple[Hashable, Any]]


def _run_map_chunk(
    job: MapReduce, chunk: Sequence[Tuple[Hashable, Any]]
) -> Tuple[Pairs, int]:
    """Map one chunk; returns (pairs to shuffle, raw map emission count).

    With a combiner, the raw emissions are folded to one partial per key
    here — inside the map task, before any pair crosses an executor
    boundary — which is what makes this the *map-side* combine.
    """
    collector = MapCollector()
    for key, value in chunk:
        job.map(key, value, collector)
    pairs = collector.pairs
    emitted = len(pairs)
    combine = job_combiner(job)
    if combine is not None and pairs:
        combined = CombineCollector()
        for key, values in group_pairs(pairs).items():
            combine(key, values, combined)
        pairs = combined.pairs
    return pairs, emitted


def _run_reduce_bucket(job: MapReduce, bucket: Pairs) -> Pairs:
    collector = ReduceCollector()
    for key, values in group_pairs(bucket).items():
        job.reduce(key, values, collector)
    return collector.pairs


def _stats(mapped: int, shuffled: int, reduced: int, combine_used: bool):
    return {
        "mapped": mapped,
        "shuffled": shuffled,
        "reduced": reduced,
        "combine_used": combine_used,
    }


class SerialExecutor:
    """Reference executor: both phases run inline."""

    workers = 1
    last_stats: Dict[str, Any] = _stats(0, 0, 0, False)

    def run(self, job: MapReduce, grouped: Mapping[Hashable, Sequence[Any]]):
        inputs = [
            (key, value) for key, values in grouped.items() for value in values
        ]
        intermediate, emitted = _run_map_chunk(job, inputs)
        result = dict(_run_reduce_bucket(job, intermediate))
        self.last_stats = _stats(
            emitted, len(intermediate), len(result),
            job_combiner(job) is not None,
        )
        return result


class _PooledExecutor:
    """Shared fan-out logic for thread and process pools."""

    def __init__(self, workers: int = 4):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.last_stats: Dict[str, Any] = _stats(0, 0, 0, False)

    def _pool(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def run(self, job: MapReduce, grouped: Mapping[Hashable, Sequence[Any]]):
        combined = job_combiner(job) is not None
        inputs = [
            (key, value) for key, values in grouped.items() for value in values
        ]
        chunks = partition_items(inputs, self.workers)
        if not chunks:
            self.last_stats = _stats(0, 0, 0, combined)
            return {}
        with self._pool() as pool:
            map_results = list(
                pool.map(_run_map_chunk, [job] * len(chunks), chunks)
            )
            intermediate: Pairs = [
                pair for chunk_pairs, __ in map_results for pair in chunk_pairs
            ]
            emitted = sum(count for __, count in map_results)
            buckets = [
                bucket
                for bucket in hash_partition(intermediate, self.workers)
                if bucket
            ]
            if not buckets:
                self.last_stats = _stats(emitted, 0, 0, combined)
                return {}
            reduce_results = list(
                pool.map(_run_reduce_bucket, [job] * len(buckets), buckets)
            )
        merged: Dict[Hashable, Any] = {}
        for pairs in reduce_results:
            merged.update(pairs)
        self.last_stats = _stats(
            emitted, len(intermediate), len(merged), combined
        )
        return merged


class ThreadExecutor(_PooledExecutor):
    """Thread-pool executor."""

    def _pool(self):
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessExecutor(_PooledExecutor):
    """Process-pool executor; job and data must be picklable."""

    def _pool(self):
        return ProcessPoolExecutor(max_workers=self.workers)


class MapReduceEngine(Instrumented):
    """Facade bundling an executor with result post-processing.

    Cumulative run counters are declared through the shared
    :class:`Instrumented` protocol and exported as pull-time callbacks.
    """

    metric_specs = (
        MetricSpec(
            "mapreduce_runs_total",
            "_runs",
            stats_key="runs",
            help="MapReduce jobs executed.",
        ),
        MetricSpec(
            "mapreduce_combined_runs_total",
            "_combined_runs",
            stats_key="combined_runs",
            help="Runs whose job supplied a map-side combine hook.",
        ),
        MetricSpec(
            "mapreduce_mapped_total",
            "_mapped",
            stats_key="mapped",
            help="Pairs produced by Map phases.",
        ),
        MetricSpec(
            "mapreduce_shuffled_total",
            "_shuffled",
            stats_key="shuffled",
            help="Pairs that crossed the map->reduce boundary.",
        ),
        MetricSpec(
            "mapreduce_reduced_total",
            "_reduced",
            stats_key="reduced",
            help="Final pairs produced by Reduce phases.",
        ),
    )

    def __init__(self, executor=None, metrics=None):
        self.executor = executor or SerialExecutor()
        self._runs = 0
        self._combined_runs = 0
        self._mapped = 0
        self._shuffled = 0
        self._reduced = 0
        if metrics is not None:
            self.attach_metrics(metrics)

    def run(
        self, job: MapReduce, grouped: Mapping[Hashable, Sequence[Any]]
    ) -> Dict[Hashable, Any]:
        result = self.executor.run(job, grouped)
        stats = self.executor.last_stats
        self._runs += 1
        self._combined_runs += 1 if stats["combine_used"] else 0
        self._mapped += stats["mapped"]
        self._shuffled += stats["shuffled"]
        self._reduced += stats["reduced"]
        return result

    def merge_partials(
        self, job: MapReduce, pairs: Pairs, mapped: int
    ) -> Dict[Hashable, Any]:
        """Reduce pre-shuffled partials produced elsewhere (shard workers).

        The sharded runtime runs Map and the map-side combine inside each
        worker process and ships only the partial pairs to the
        coordinator; this is the coordinator-side final reduce over those
        partials.  ``mapped`` is the raw map emission count across
        workers, so the engine's cumulative counters (and
        ``last_stats``) stay truthful about shuffle volume even though
        the executor never saw the run.
        """
        result = dict(_run_reduce_bucket(job, pairs))
        stats = _stats(
            mapped, len(pairs), len(result), job_combiner(job) is not None
        )
        self.executor.last_stats = stats
        self._runs += 1
        self._combined_runs += 1 if stats["combine_used"] else 0
        self._mapped += stats["mapped"]
        self._shuffled += stats["shuffled"]
        self._reduced += stats["reduced"]
        return result

    @property
    def last_stats(self) -> Dict[str, Any]:
        """Shuffle-volume counters of the most recent run."""
        return dict(self.executor.last_stats)


def run_mapreduce(
    job: MapReduce,
    grouped: Mapping[Hashable, Sequence[Any]],
    executor=None,
) -> Dict[Hashable, Any]:
    """One-shot convenience wrapper around :class:`MapReduceEngine`."""
    return MapReduceEngine(executor).run(job, grouped)
