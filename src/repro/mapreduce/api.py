"""The MapReduce programming interface of the generated frameworks.

Mirrors Figure 10 of the paper: an implementation provides

* ``map(key, value, collector)`` — called once per gathered reading with
  the grouping attribute as key (the parking lot) and the raw reading as
  value; emits intermediate key/value pairs via
  :meth:`MapCollector.emit_map`;
* ``reduce(key, values, collector)`` — called once per intermediate key
  with the list of values the Map phase emitted for it; emits final
  results via :meth:`ReduceCollector.emit_reduce`.

The engine groups intermediate pairs between the phases exactly as the
paper describes ("intermediate results from the Map phase are grouped into
a list by the generated framework").
"""

from __future__ import annotations

from typing import Any, Hashable, List, Tuple


class MapCollector:
    """Collects intermediate key/value pairs emitted by the Map phase."""

    __slots__ = ("_pairs",)

    def __init__(self):
        self._pairs: List[Tuple[Hashable, Any]] = []

    def emit_map(self, key: Hashable, value: Any) -> None:
        self._pairs.append((key, value))

    @property
    def pairs(self) -> List[Tuple[Hashable, Any]]:
        return self._pairs


class ReduceCollector:
    """Collects final key/value pairs emitted by the Reduce phase."""

    __slots__ = ("_pairs",)

    def __init__(self):
        self._pairs: List[Tuple[Hashable, Any]] = []

    def emit_reduce(self, key: Hashable, value: Any) -> None:
        self._pairs.append((key, value))

    @property
    def pairs(self) -> List[Tuple[Hashable, Any]]:
        return self._pairs


class MapReduce:
    """Interface implemented by contexts that declare ``with map ... reduce ...``.

    The default phases implement the *identity* job: map re-emits each
    reading under its group key and reduce re-emits the value list, so a
    context that only wants grouping can inherit the defaults.
    """

    def map(self, key: Hashable, value: Any, collector: MapCollector) -> None:
        collector.emit_map(key, value)

    def reduce(
        self, key: Hashable, values: List[Any], collector: ReduceCollector
    ) -> None:
        collector.emit_reduce(key, values)
