"""The MapReduce programming interface of the generated frameworks.

Mirrors Figure 10 of the paper: an implementation provides

* ``map(key, value, collector)`` — called once per gathered reading with
  the grouping attribute as key (the parking lot) and the raw reading as
  value; emits intermediate key/value pairs via
  :meth:`MapCollector.emit_map`;
* ``reduce(key, values, collector)`` — called once per intermediate key
  with the list of values the Map phase emitted for it; emits final
  results via :meth:`ReduceCollector.emit_reduce`.

The engine groups intermediate pairs between the phases exactly as the
paper describes ("intermediate results from the Map phase are grouped into
a list by the generated framework").

A job may additionally provide the optional combiner hook

* ``combine(key, values, collector)`` — a "mini-reduce" the executors run
  per map chunk, *before* partitioning, collapsing each chunk's
  intermediate pairs to one partial aggregate per key.  Shuffle volume
  then scales with the number of groups instead of the number of
  readings, which is what makes city-scale gathering (thousands of
  sensors, a handful of lots) cheap.  The hook must be associative and
  its output values must be acceptable inputs to ``reduce`` — for the
  canonical counting job: map emits ``1`` per match, combine and reduce
  both sum.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Optional, Tuple


class _PairCollector:
    """Base collector: an ordered list of emitted key/value pairs."""

    __slots__ = ("_pairs",)

    def __init__(self):
        self._pairs: List[Tuple[Hashable, Any]] = []

    def emit(self, key: Hashable, value: Any) -> None:
        self._pairs.append((key, value))

    @property
    def pairs(self) -> List[Tuple[Hashable, Any]]:
        return self._pairs


class MapCollector(_PairCollector):
    """Collects intermediate key/value pairs emitted by the Map phase."""

    __slots__ = ()

    emit_map = _PairCollector.emit


class CombineCollector(_PairCollector):
    """Collects partial aggregates emitted by the optional Combine phase."""

    __slots__ = ()

    emit_combine = _PairCollector.emit


class ReduceCollector(_PairCollector):
    """Collects final key/value pairs emitted by the Reduce phase."""

    __slots__ = ()

    emit_reduce = _PairCollector.emit


class FoldCollector(_PairCollector):
    """Accepts emissions from any phase.

    Used where one callback may be served by either ``combine`` or
    ``reduce`` (incremental window accumulation folds deliveries through
    whichever the job provides).
    """

    __slots__ = ()

    emit_map = _PairCollector.emit
    emit_combine = _PairCollector.emit
    emit_reduce = _PairCollector.emit


class MapReduce:
    """Interface implemented by contexts that declare ``with map ... reduce ...``.

    The default phases implement the *identity* job: map re-emits each
    reading under its group key and reduce re-emits the value list, so a
    context that only wants grouping can inherit the defaults.

    ``combine`` defaults to ``None`` (disabled); subclasses opt in by
    defining it as a method.
    """

    #: Optional combiner hook; override with a method
    #: ``combine(self, key, values, collector)`` to enable map-side
    #: partial aggregation.
    combine = None

    def map(self, key: Hashable, value: Any, collector: MapCollector) -> None:
        collector.emit_map(key, value)

    def reduce(
        self, key: Hashable, values: List[Any], collector: ReduceCollector
    ) -> None:
        collector.emit_reduce(key, values)


def job_combiner(job: Any) -> Optional[Any]:
    """The job's combine hook when enabled, else None.

    Accepts any object with a callable ``combine`` attribute, so duck
    typed jobs (contexts that do not subclass :class:`MapReduce`) work
    the same as subclasses.
    """
    combine = getattr(job, "combine", None)
    return combine if callable(combine) else None
