"""Partitioning helpers for the MapReduce engine.

Partitioning is what lets the phases run in parallel: map tasks are split
into chunks of input groups, and intermediate keys are hash-partitioned
across reduce workers, as in the original MapReduce design.  A stable
string-based hash keeps partition assignment reproducible across Python
processes (the built-in ``hash`` is randomized for strings).
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Hashable, List, Sequence, Tuple


def stable_hash(key: Hashable) -> int:
    """Deterministic non-negative hash, stable across interpreter runs."""
    return zlib.crc32(repr(key).encode("utf-8"))


def shard_index(key: Hashable, shards: int) -> int:
    """Deterministic shard assignment for ``key`` among ``shards`` buckets.

    The same stable crc32 hash that routes intermediate pairs to reduce
    workers routes entities to runtime shards, so a fleet partitions
    identically across interpreter runs *and* across the processes of a
    sharded runtime (``repro.runtime.shard``), which is what makes the
    coordinator's registry-order merge deterministic.
    """
    if shards <= 0:
        raise ValueError("shards must be >= 1")
    return stable_hash(key) % shards


def hash_partition(
    pairs: Sequence[Tuple[Hashable, Any]], partitions: int
) -> List[List[Tuple[Hashable, Any]]]:
    """Split intermediate pairs into ``partitions`` buckets by key hash.

    All pairs with equal keys land in the same bucket, which is the
    correctness requirement for parallel reduction.
    """
    if partitions <= 0:
        raise ValueError("partitions must be >= 1")
    buckets: List[List[Tuple[Hashable, Any]]] = [[] for __ in range(partitions)]
    for key, value in pairs:
        buckets[stable_hash(key) % partitions].append((key, value))
    return buckets


def partition_items(items: Sequence[Any], chunks: int) -> List[Sequence[Any]]:
    """Split a work list into at most ``chunks`` contiguous, balanced slices."""
    if chunks <= 0:
        raise ValueError("chunks must be >= 1")
    total = len(items)
    if total == 0:
        return []
    chunks = min(chunks, total)
    base, remainder = divmod(total, chunks)
    slices = []
    start = 0
    for index in range(chunks):
        size = base + (1 if index < remainder else 0)
        slices.append(items[start : start + size])
        start += size
    return slices


def group_pairs(
    pairs: Sequence[Tuple[Hashable, Any]]
) -> Dict[Hashable, List[Any]]:
    """Group intermediate pairs by key, preserving emission order."""
    grouped: Dict[Hashable, List[Any]] = {}
    for key, value in pairs:
        grouped.setdefault(key, []).append(value)
    return grouped
