"""MapReduce engine behind ``grouped by ... with map ... reduce ...``.

Large-scale orchestration "may involve masses of sensors, gathering large
amounts of data" (Section IV); the paper's answer is to leverage the
``grouped by`` construct to introduce the MapReduce programming model at
the design level.  This package is the processing substrate: the
:class:`~repro.mapreduce.api.MapReduce` interface implemented by context
components (Figure 10), the collectors their phases emit into, and an
engine with serial, thread-pool and process-pool executors.

The generated programming framework "exposes an interface that prevents
the specificities of a target MapReduce implementation to percolate to the
application logic" — accordingly, swapping executors never changes
results, which the property-based tests assert.
"""

from repro.mapreduce.api import (
    CombineCollector,
    FoldCollector,
    MapCollector,
    MapReduce,
    ReduceCollector,
    job_combiner,
)
from repro.mapreduce.engine import (
    MapReduceEngine,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    run_mapreduce,
)
from repro.mapreduce.partition import hash_partition, partition_items

__all__ = [
    "CombineCollector",
    "FoldCollector",
    "MapCollector",
    "MapReduce",
    "MapReduceEngine",
    "ProcessExecutor",
    "ReduceCollector",
    "SerialExecutor",
    "ThreadExecutor",
    "hash_partition",
    "job_combiner",
    "partition_items",
    "run_mapreduce",
]
