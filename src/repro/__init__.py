"""repro — a reproduction of "Internet of Things: From Small- to Large-Scale
Orchestration" (Consel & Kabáč, ICDCS 2017).

The package implements the paper's complete tool chain:

* :mod:`repro.lang` — the DiaSpec design language (lexer, parser, AST,
  pretty-printer);
* :mod:`repro.sema` — semantic analysis enforcing the Sense-Compute-Control
  paradigm;
* :mod:`repro.codegen` — the design compiler that generates customized
  Python programming frameworks;
* :mod:`repro.runtime` — the inversion-of-control runtime: entity binding,
  the three data-delivery models, grouping/windowing, actuation;
* :mod:`repro.mapreduce` — the MapReduce engine behind ``grouped by ...
  with map ... reduce ...``;
* :mod:`repro.simulation` — simulated environments, sensors and failure
  injection used in place of physical deployments;
* :mod:`repro.apps` — the paper's case-study applications (cooker
  monitoring, parking management) plus the avionics and assisted-living
  domains it cites.

Quickstart::

    from repro import analyze
    from repro.runtime import Application

    design = analyze(open("design.diaspec").read())
    app = Application(design)
    ...
"""

from repro.errors import (
    DiaSpecError,
    DiaSpecSyntaxError,
    ReproError,
    SccViolationError,
    SemanticError,
)
from repro.lang import parse, pretty
from repro.sema import AnalyzedSpec, analyze

__version__ = "1.0.0"

__all__ = [
    "AnalyzedSpec",
    "DiaSpecError",
    "DiaSpecSyntaxError",
    "ReproError",
    "SccViolationError",
    "SemanticError",
    "__version__",
    "analyze",
    "parse",
    "pretty",
]
