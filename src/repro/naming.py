"""Name conversions between DiaSpec and Python conventions.

DiaSpec follows Java-ish conventions (``ParkingAvailability``,
``tickSecond``, ``askQuestion``); the generated Python frameworks and the
runtime dispatch use PEP 8 names (``parking_availability``,
``on_tick_second_from_clock``).  All conversions live here so the code
generator and the runtime agree exactly on method names.
"""

from __future__ import annotations

import re

_CAMEL_BOUNDARY = re.compile(
    r"""
    (?<=[a-z0-9])(?=[A-Z])        # fooBar -> foo_Bar
    | (?<=[A-Z])(?=[A-Z][a-z])    # HTTPServer -> HTTP_Server
    """,
    re.VERBOSE,
)


def camel_to_snake(name: str) -> str:
    """``tickSecond`` → ``tick_second``; ``HTTPServer`` → ``http_server``."""
    return _CAMEL_BOUNDARY.sub("_", name).lower()


def snake_to_camel(name: str) -> str:
    """``tick_second`` → ``tickSecond``."""
    head, *rest = name.split("_")
    return head + "".join(part.capitalize() for part in rest)


def class_name(name: str) -> str:
    """DiaSpec declaration name as a Python class name (identity for
    well-formed designs, but normalizes lowercase-first names)."""
    return name[:1].upper() + name[1:]


def abstract_class_name(name: str) -> str:
    """Figure 9: the generated base for ``Alert`` is ``AbstractAlert``."""
    return f"Abstract{class_name(name)}"


def publishable_name(name: str) -> str:
    """Figure 9: the typed wrapper is ``AlertValuePublishable``."""
    return f"{class_name(name)}ValuePublishable"


def event_handler_name(source: str, device: str) -> str:
    """Figure 9: ``onTickSecondFromClock`` → ``on_tick_second_from_clock``."""
    return f"on_{camel_to_snake(source)}_from_{camel_to_snake(device)}"


def event_handler_short_name(source: str) -> str:
    return f"on_{camel_to_snake(source)}"


def periodic_handler_name(source: str, device: str) -> str:
    return f"on_periodic_{camel_to_snake(source)}_from_{camel_to_snake(device)}"


def periodic_handler_short_name(source: str) -> str:
    """Figure 10: ``onPeriodicPresence`` → ``on_periodic_presence``."""
    return f"on_periodic_{camel_to_snake(source)}"


def context_handler_name(context: str) -> str:
    """Figure 11: ``onParkingAvailability`` → ``on_parking_availability``."""
    return f"on_{camel_to_snake(context)}"


def query_method_name(source: str) -> str:
    """Proxy query method for a source facet."""
    return camel_to_snake(source)


def action_method_name(action: str) -> str:
    """Proxy/driver method for an action facet."""
    return camel_to_snake(action)


def where_method_name(attribute: str) -> str:
    """Figure 11: ``whereLocation`` → ``where_location``."""
    return f"where_{camel_to_snake(attribute)}"


def pluralize(word: str) -> str:
    """Naive English plural used for discovery sets (Figure 11:
    ``parkingEntrancePanels``)."""
    if word.endswith(("s", "x", "z", "ch", "sh")):
        return word + "es"
    if word.endswith("y") and len(word) > 1 and word[-2] not in "aeiou":
        return word[:-1] + "ies"
    return word + "s"


def proxy_set_method_name(device: str) -> str:
    """Discovery accessor: device ``ParkingEntrancePanel`` →
    ``parking_entrance_panels``."""
    return pluralize(camel_to_snake(device))
