"""The supported public API surface of :mod:`repro`.

This module is the **stable import surface** of the library: everything
an application, example, or generated framework needs is re-exported
here, and these names follow deprecation policy (one release of
``DeprecationWarning`` before any breaking change)::

    from repro.api import Application, RuntimeConfig, SweepConfig, analyze

    design = analyze(DESIGN_SOURCE)
    app = Application(design, RuntimeConfig(error_policy="isolate"))

Deep-module imports (``from repro.runtime.app import Application``,
``from repro.faults.supervisor import ...``) keep working but are
**unstable**: internal modules may move, split, or change signature
between releases without deprecation cover.  New code should import
from :mod:`repro.api` (or the package roots it aggregates).

The surface, by concern:

* **Design analysis** — :func:`analyze`, :class:`AnalyzedSpec`;
* **Assembly & configuration** — :class:`Application`,
  :class:`RuntimeConfig`, :class:`SweepConfig`, :class:`CacheConfig`,
  :class:`BatchConfig`;
* **Time** — :class:`Clock`, :class:`SimulationClock`,
  :class:`WallClock`;
* **Components** — :class:`Context`, :class:`Controller`,
  :class:`Publishable`, :class:`MapReduce`, and the event records
  (:class:`SourceEvent`, :class:`ContextEvent`,
  :class:`GatherReading`);
* **Devices** — :class:`DeviceDriver`, :class:`CallableDriver`,
  :class:`DeviceInstance`;
* **MapReduce executors** — :class:`SerialExecutor`,
  :class:`ThreadExecutor`, :class:`ProcessExecutor`;
* **Fault tolerance** — :class:`SupervisionPolicy`,
  :class:`StalePolicy`, :class:`FaultPlan`, :class:`ChaosInjector`;
* **Query-driven caching** — :class:`ReadCache` (usually reached via
  ``CacheConfig`` on the runtime config) and the typed
  :class:`ContextNotQueryableError`;
* **Batch hot path** — :class:`BatchConfig` (columnar driver reads and
  precompiled delivery plans, usually reached via ``batch=`` on the
  runtime config) and :class:`DeliveryPlanner`;
* **Process sharding** — :class:`ShardConfig` (usually reached via
  ``shard=`` on the runtime config), :class:`ShardContext`,
  :class:`ShardBootstrap`, :class:`ShardedRuntime`,
  :class:`SimulatedFleetBootstrap`, and the typed :class:`ShardError`;
* **Network & placement** — :class:`NetworkConfig` (the frozen network
  section of the runtime config), the models it builds
  (:class:`NetworkConditions`, :class:`TopologyModel`,
  :class:`HopProfile`), and the edge/cloud continuum
  (:class:`PlacementConfig`, :class:`Tier`, :class:`EdgeNode`,
  :class:`EntityPlacement`, and the typed :class:`PlacementError`);
* **Observability** — :class:`MetricsRegistry`, :class:`Tracer`;
* **Adaptive tuning** — :class:`ConfigBase` (the shared
  replace/serialize/validate protocol every config section follows),
  :class:`TuningConfig` (the frozen ``tuning=`` section, off by
  default), :class:`Knob` and :class:`KnobRegistry` (named live
  tunables with safe ranges, exposed as ``Application.knobs``),
  :class:`TuningController` (the drift-gated hill climb behind
  ``Application.tuner``), and the typed :class:`TuningError`;
* **Deployment descriptors** — :class:`DeploymentDescriptor`,
  :class:`DriverCatalog`, :func:`load_descriptor`,
  :func:`apply_descriptor`.
"""

from __future__ import annotations

from repro.errors import (
    ContextNotQueryableError,
    PlacementError,
    ShardError,
    TuningError,
)
from repro.faults.chaos import ChaosInjector, FaultEvent, FaultPlan
from repro.faults.policy import StalePolicy, SupervisionPolicy
from repro.mapreduce.api import MapReduce
from repro.mapreduce.engine import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
)
from repro.runtime.app import Application
from repro.runtime.cache import CacheConfig, ReadCache
from repro.runtime.clock import Clock, SimulationClock, WallClock
from repro.runtime.configbase import ConfigBase
from repro.runtime.component import (
    Context,
    ContextEvent,
    Controller,
    GatherReading,
    Publishable,
    SourceEvent,
)
from repro.runtime.config import RuntimeConfig
from repro.runtime.descriptor import (
    DeploymentDescriptor,
    DriverCatalog,
    apply_descriptor,
    load_descriptor,
)
from repro.runtime.device import CallableDriver, DeviceDriver, DeviceInstance
from repro.runtime.placement import (
    EdgeNode,
    EntityPlacement,
    NetworkConfig,
    PlacementConfig,
    Tier,
)
from repro.runtime.plan import BatchConfig, DeliveryPlanner
from repro.runtime.shard import (
    ShardBootstrap,
    ShardConfig,
    ShardContext,
    ShardedRuntime,
    SimulatedFleetBootstrap,
)
from repro.runtime.sweep import SweepConfig, SweepEngine
from repro.runtime.tracing import Tracer
from repro.runtime.tuning import (
    Knob,
    KnobRegistry,
    TuningConfig,
    TuningController,
)
from repro.simulation.network import (
    HopProfile,
    NetworkConditions,
    TopologyModel,
)
from repro.sema.analyzer import AnalyzedSpec, analyze
from repro.telemetry import MetricsRegistry

__all__ = [
    "AnalyzedSpec",
    "Application",
    "BatchConfig",
    "CacheConfig",
    "CallableDriver",
    "ChaosInjector",
    "Clock",
    "ConfigBase",
    "Context",
    "ContextEvent",
    "ContextNotQueryableError",
    "Controller",
    "DeliveryPlanner",
    "DeploymentDescriptor",
    "DeviceDriver",
    "DeviceInstance",
    "DriverCatalog",
    "EdgeNode",
    "EntityPlacement",
    "FaultEvent",
    "FaultPlan",
    "GatherReading",
    "HopProfile",
    "Knob",
    "KnobRegistry",
    "MapReduce",
    "MetricsRegistry",
    "NetworkConditions",
    "NetworkConfig",
    "PlacementConfig",
    "PlacementError",
    "ProcessExecutor",
    "Publishable",
    "ReadCache",
    "RuntimeConfig",
    "SerialExecutor",
    "ShardBootstrap",
    "ShardConfig",
    "ShardContext",
    "ShardError",
    "ShardedRuntime",
    "SimulatedFleetBootstrap",
    "SimulationClock",
    "SourceEvent",
    "StalePolicy",
    "SupervisionPolicy",
    "SweepConfig",
    "SweepEngine",
    "ThreadExecutor",
    "Tier",
    "TopologyModel",
    "Tracer",
    "TuningConfig",
    "TuningController",
    "TuningError",
    "WallClock",
    "analyze",
    "apply_descriptor",
    "load_descriptor",
]
