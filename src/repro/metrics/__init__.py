"""Measurement helpers: line counting and summary statistics."""

from repro.metrics.loc import count_loc, count_module_loc
from repro.metrics.stats import mean, percentile, stdev, summarize

__all__ = [
    "count_loc",
    "count_module_loc",
    "mean",
    "percentile",
    "stdev",
    "summarize",
]
