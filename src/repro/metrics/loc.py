"""Lines-of-code counting.

Counts *logical* source lines: blank lines, comment-only lines and
docstring lines are excluded, so the generated-ratio measurement is not
inflated by the generator's documentation.
"""

from __future__ import annotations

import inspect
import io
import tokenize
from typing import Set


def count_loc(source: str) -> int:
    """Count non-blank, non-comment, non-docstring lines of Python source.

    Falls back to counting non-blank, non-``#`` lines when the text does
    not tokenize as Python (e.g. DiaSpec designs, where ``//`` comments
    are excluded instead).
    """
    try:
        # Validate first: tokenize alone accepts much non-Python text
        # (e.g. DiaSpec, whose '//' comments lex as floor division).
        compile(source, "<loc>", "exec")
        return _count_python(source)
    except (tokenize.TokenError, IndentationError, SyntaxError, ValueError):
        return _count_plain(source)


def count_module_loc(obj) -> int:
    """LoC of the module/class/function defining ``obj``."""
    return count_loc(inspect.getsource(obj))


def _count_python(source: str) -> int:
    code_lines: Set[int] = set()
    doc_lines: Set[int] = set()
    previous_significant = None
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    for token in tokens:
        kind = token.type
        if kind in (tokenize.COMMENT, tokenize.NL, tokenize.ENCODING,
                    tokenize.ENDMARKER):
            continue
        if kind in (tokenize.NEWLINE, tokenize.INDENT, tokenize.DEDENT):
            previous_significant = kind
            continue
        if kind == tokenize.STRING and previous_significant in (
            None,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
        ):
            # A string statement = docstring (module, class or function).
            for line in range(token.start[0], token.end[0] + 1):
                doc_lines.add(line)
            previous_significant = kind
            continue
        for line in range(token.start[0], token.end[0] + 1):
            code_lines.add(line)
        previous_significant = kind
    return len(code_lines - doc_lines)


def _count_plain(source: str) -> int:
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith(("#", "//")):
            continue
        count += 1
    return count
