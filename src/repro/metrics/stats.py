"""Tiny statistics helpers used by benchmarks and reports."""

from __future__ import annotations

import math
from typing import Dict, Sequence


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two values)."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (len(values) - 1))


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high or ordered[low] == ordered[high]:
        # The equality guard avoids denormal-float interpolation artifacts
        # (a*(1-f) + a*f can underflow below a for subnormal a).
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """min/mean/p50/p95/max/stdev bundle for report rows."""
    return {
        "min": min(values),
        "mean": mean(values),
        "p50": percentile(values, 50),
        "p95": percentile(values, 95),
        "max": max(values),
        "stdev": stdev(values),
    }
