"""A small indentation-aware source-code writer."""

from __future__ import annotations

from typing import Iterable, List


class Emitter:
    """Accumulates lines of Python source with managed indentation.

    >>> emitter = Emitter()
    >>> emitter.line("class Foo:")
    >>> with emitter.indented():
    ...     emitter.line("pass")
    >>> print(emitter.render(), end="")
    class Foo:
        pass
    """

    def __init__(self, indent: str = "    "):
        self._indent_unit = indent
        self._depth = 0
        self._lines: List[str] = []

    def line(self, text: str = "") -> None:
        if text:
            self._lines.append(self._indent_unit * self._depth + text)
        else:
            self._lines.append("")

    def lines(self, texts: Iterable[str]) -> None:
        for text in texts:
            self.line(text)

    def blank(self, count: int = 1) -> None:
        for __ in range(count):
            self._lines.append("")

    def docstring(self, *paragraphs: str) -> None:
        """Emit a (possibly multi-paragraph) docstring at current depth."""
        flat = [p for p in paragraphs if p]
        if not flat:
            return
        if len(flat) == 1 and "\n" not in flat[0] and len(flat[0]) < 68:
            self.line(f'"""{flat[0]}"""')
            return
        self.line(f'"""{flat[0]}')
        for paragraph in flat[1:]:
            self.blank()
            for line in paragraph.splitlines():
                self.line(line)
        self.line('"""')

    def indented(self) -> "_IndentGuard":
        return _IndentGuard(self)

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"

    @property
    def line_count(self) -> int:
        return len(self._lines)


class _IndentGuard:
    def __init__(self, emitter: Emitter):
        self._emitter = emitter

    def __enter__(self):
        self._emitter._depth += 1
        return self._emitter

    def __exit__(self, *exc_info):
        self._emitter._depth -= 1
        return False
