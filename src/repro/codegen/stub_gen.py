"""Developer-side stub generation (the white code of Figures 9-10).

The design compiler does not only produce the framework; it also emits the
skeleton the developer fills in — Figure 9 shows exactly this, an ``Alert``
subclass with a ``// TODO Auto-generated method stub`` body.
:func:`generate_stubs` produces the Python equivalent: one subclass per
declared context/controller with every required callback raising
``NotImplementedError`` under a ``TODO`` marker.
"""

from __future__ import annotations

from typing import Set, Union

from repro.codegen.emitter import Emitter
from repro.lang.ast_nodes import (
    WhenPeriodic,
    WhenProvidedContext,
    WhenProvidedSource,
    WhenRequired,
)
from repro.naming import (
    abstract_class_name,
    camel_to_snake,
    class_name,
    context_handler_name,
    event_handler_name,
    periodic_handler_short_name,
)
from repro.sema.analyzer import AnalyzedSpec, analyze


def generate_stubs(
    design: Union[str, AnalyzedSpec],
    name: str = "App",
    framework_module: str = "framework",
) -> str:
    """Generate the implementation skeleton for a design."""
    if isinstance(design, str):
        design = analyze(design)
    e = Emitter()
    e.line(f'"""Implementation skeleton for design \'{class_name(name)}\'.')
    e.blank()
    e.line("Auto-generated: fill in every TODO with application logic.")
    e.line('"""')
    e.blank()
    imports = sorted(
        [abstract_class_name(c.name) for c in design.spec.contexts]
        + [abstract_class_name(c.name) for c in design.spec.controllers]
    )
    e.line(f"from {framework_module} import (")
    for imported in imports:
        e.line(f"    {imported},")
    e.line(")")
    e.blank(1)

    for context in design.spec.contexts:
        e.line(f"class {class_name(context.name)}"
               f"({abstract_class_name(context.name)}):")
        with e.indented():
            emitted: Set[str] = set()
            wrote = False
            for interaction in context.interactions:
                wrote |= _stub_interaction(e, interaction, emitted)
            if _uses_mapreduce(context):
                wrote |= _stub_method(e, emitted, "map",
                                      "self, key, value, collector")
                wrote |= _stub_method(e, emitted, "reduce",
                                      "self, key, values, collector")
            if not wrote:
                e.line("pass")
        e.blank(1)

    for controller in design.spec.controllers:
        e.line(f"class {class_name(controller.name)}"
               f"({abstract_class_name(controller.name)}):")
        with e.indented():
            emitted = set()
            wrote = False
            for reaction in controller.reactions:
                wrote |= _stub_method(
                    e,
                    emitted,
                    context_handler_name(reaction.context),
                    f"self, {camel_to_snake(reaction.context)}, discover",
                )
            if not wrote:
                e.line("pass")
        e.blank(1)
    return e.render()


def _uses_mapreduce(context) -> bool:
    return any(
        isinstance(i, WhenPeriodic)
        and i.group is not None
        and i.group.uses_mapreduce
        for i in context.interactions
    )


def _stub_interaction(e: Emitter, interaction, emitted: Set[str]) -> bool:
    if isinstance(interaction, WhenRequired):
        return _stub_method(e, emitted, "when_required", "self, discover")
    if isinstance(interaction, WhenProvidedSource):
        argument = camel_to_snake(
            f"{interaction.source}From{class_name(interaction.device)}"
        )
        return _stub_method(
            e,
            emitted,
            event_handler_name(interaction.source, interaction.device),
            f"self, {argument}, discover",
        )
    if isinstance(interaction, WhenPeriodic):
        group = interaction.group
        if group is None:
            argument = f"{camel_to_snake(interaction.source)}_readings"
        else:
            argument = (
                f"{camel_to_snake(interaction.source)}_by_"
                f"{camel_to_snake(group.attribute)}"
            )
        return _stub_method(
            e,
            emitted,
            periodic_handler_short_name(interaction.source),
            f"self, {argument}, discover",
        )
    if isinstance(interaction, WhenProvidedContext):
        return _stub_method(
            e,
            emitted,
            context_handler_name(interaction.context),
            f"self, {camel_to_snake(interaction.context)}, discover",
        )
    return False


def _stub_method(
    e: Emitter, emitted: Set[str], method: str, signature: str
) -> bool:
    if method in emitted:
        return False
    emitted.add(method)
    e.line(f"def {method}({signature}):")
    with e.indented():
        e.line("# TODO Auto-generated method stub")
        e.line(f'raise NotImplementedError("{method}")')
    e.blank()
    return True


__all__ = ["generate_stubs"]
