"""Generation of customized programming frameworks (Figures 9-11).

Given an analyzed design, :func:`generate_framework` produces the source
text of a self-contained Python module; :func:`compile_design` goes one
step further and returns the executed module object.  The developer then
subclasses the generated ``Abstract*`` classes and installs them through
the generated ``*Framework`` class, which "ensures conformance between
design and programming" (Section V) by rejecting implementations that do
not subclass their abstract base.
"""

from __future__ import annotations

import types
from typing import Optional, Set, Union

from repro.codegen.emitter import Emitter
from repro.errors import CodegenError
from repro.lang.ast_nodes import (
    GetContext,
    GetSource,
    WhenPeriodic,
    WhenProvidedContext,
    WhenProvidedSource,
    WhenRequired,
)
from repro.lang.pretty import pretty
from repro.naming import (
    abstract_class_name,
    action_method_name,
    camel_to_snake,
    class_name,
    context_handler_name,
    event_handler_name,
    periodic_handler_short_name,
    publishable_name,
    query_method_name,
)
from repro.sema.analyzer import AnalyzedSpec, analyze


def generate_framework(
    design: Union[str, AnalyzedSpec], name: str = "App"
) -> str:
    """Compile a design into the source of its programming framework."""
    if isinstance(design, str):
        design = analyze(design)
    generator = _FrameworkGenerator(design, name)
    return generator.generate()


def compile_design(
    design: Union[str, AnalyzedSpec],
    name: str = "App",
    module_name: Optional[str] = None,
) -> types.ModuleType:
    """Generate, compile and execute the framework; returns the module."""
    source = generate_framework(design, name)
    module_name = module_name or f"repro_generated_{camel_to_snake(name)}"
    module = types.ModuleType(module_name)
    module.__dict__["__file__"] = f"<generated:{name}>"
    try:
        code = compile(source, f"<generated:{name}>", "exec")
        exec(code, module.__dict__)
    except SyntaxError as exc:  # pragma: no cover - generator bug guard
        raise CodegenError(f"generated framework does not compile: {exc}")
    module.__dict__["__source__"] = source
    return module


class _FrameworkGenerator:
    """Stateful single-module generator."""

    def __init__(self, design: AnalyzedSpec, name: str):
        self.design = design
        self.name = class_name(name)
        self.emitter = Emitter()

    def generate(self) -> str:
        e = self.emitter
        e.line('"""Generated programming framework for design '
               f"'{self.name}'.")
        e.blank()
        e.line("Produced by the repro design compiler (ICDCS 2017 "
               "reproduction).")
        e.line("DO NOT EDIT: regenerate from the DiaSpec design instead.")
        e.line('"""')
        e.blank()
        e.line("from repro.api import (")
        e.line("    Application,")
        e.line("    BatchConfig,")
        e.line("    CacheConfig,")
        e.line("    Context,")
        e.line("    Controller,")
        e.line("    DeviceDriver,")
        e.line("    MapReduce,")
        e.line("    NetworkConfig,")
        e.line("    PlacementConfig,")
        e.line("    Publishable,")
        e.line("    RuntimeConfig,")
        e.line("    ShardConfig,")
        e.line("    SweepConfig,")
        e.line("    analyze,")
        e.line(")")
        e.blank(1)
        e.line('DESIGN_SOURCE = """\\')
        for line in pretty(self.design.spec).splitlines():
            e.line(line.replace("\\", "\\\\").replace('"""', '\\"\\"\\"'))
        e.line('"""')
        e.blank()
        e.line("DESIGN = analyze(DESIGN_SOURCE)")
        e.blank(1)
        self._emit_enumerations()
        self._emit_structures()
        self._emit_device_drivers()
        self._emit_contexts()
        self._emit_controllers()
        self._emit_framework_class()
        return e.render()

    # -- data types ---------------------------------------------------------

    def _emit_enumerations(self) -> None:
        e = self.emitter
        for enum_decl in self.design.spec.enumerations:
            e.line(f"class {class_name(enum_decl.name)}:")
            with e.indented():
                e.docstring(
                    f"Generated from 'enumeration {enum_decl.name}'."
                )
                e.blank()
                for member in enum_decl.members:
                    e.line(f'{member} = "{member}"')
                members = ", ".join(f'"{m}"' for m in enum_decl.members)
                comma = "," if len(enum_decl.members) == 1 else ""
                e.line(f"MEMBERS = ({members}{comma})")
            e.blank(1)

    def _emit_structures(self) -> None:
        e = self.emitter
        for struct_decl in self.design.spec.structures:
            fields = [(p.name, camel_to_snake(p.name)) for p in struct_decl.fields]
            e.line(f"class {class_name(struct_decl.name)}:")
            with e.indented():
                e.docstring(
                    f"Generated from 'structure {struct_decl.name}'.",
                    "Instances conform to the declared structure type when "
                    "published by a context.",
                )
                e.blank()
                slots = ", ".join(f'"{snake}"' for __, snake in fields)
                comma = "," if len(fields) == 1 else ""
                e.line(f"__slots__ = ({slots}{comma})")
                e.blank()
                args = ", ".join(snake for __, snake in fields)
                e.line(f"def __init__(self, {args}):")
                with e.indented():
                    for __, snake in fields:
                        e.line(f"self.{snake} = {snake}")
                e.blank()
                e.line("def as_dict(self):")
                with e.indented():
                    pairs = ", ".join(
                        f'"{name}": self.{snake}' for name, snake in fields
                    )
                    e.line(f"return {{{pairs}}}")
                e.blank()
                e.line("def __eq__(self, other):")
                with e.indented():
                    e.line(
                        "return isinstance(other, type(self)) and "
                        "other.as_dict() == self.as_dict()"
                    )
                e.blank()
                e.line("def __repr__(self):")
                with e.indented():
                    parts = ", ".join(
                        f"{snake}={{self.{snake}!r}}" for __, snake in fields
                    )
                    e.line(
                        f'return f"{class_name(struct_decl.name)}({parts})"'
                    )
            e.blank(1)

    # -- devices -------------------------------------------------------------

    def _emit_device_drivers(self) -> None:
        e = self.emitter
        emitted: Set[str] = set()

        def emit(device_name: str) -> None:
            if device_name in emitted:
                return
            info = self.design.devices[device_name]
            decl = info.decl
            if decl.extends:
                emit(decl.extends)
            base = (
                f"Abstract{class_name(decl.extends)}Driver"
                if decl.extends
                else "DeviceDriver"
            )
            e.line(f"class Abstract{class_name(device_name)}Driver({base}):")
            with e.indented():
                e.docstring(
                    f"Generated driver base for device '{device_name}'.",
                    "A concrete device must implement every source reader "
                    "and action\nhandler; event-driven delivery uses the "
                    "push_* helpers.  The runtime\nprovides the query-driven "
                    "and periodic modes on top of the readers,\nso "
                    "implementing this class satisfies all three delivery "
                    "models\n(Section III).",
                )
                e.blank()
                e.line(f'DEVICE_TYPE = "{device_name}"')
                body = False
                for source in decl.sources:
                    body = True
                    reader = f"read_{query_method_name(source.name)}"
                    e.blank()
                    e.line(f"def {reader}(self):")
                    with e.indented():
                        e.docstring(
                            f"Current value of source '{source.name}' "
                            f"(as {source.type_name})."
                        )
                        e.line(
                            "raise NotImplementedError("
                            f'"driver must implement {reader}()")'
                        )
                    e.blank()
                    push = f"push_{query_method_name(source.name)}"
                    if source.is_indexed:
                        index_arg = camel_to_snake(source.index_name)
                        e.line(f"def {push}(self, value, {index_arg}=None):")
                        with e.indented():
                            e.docstring(
                                f"Event-driven delivery of '{source.name}', "
                                f"indexed by {source.index_name}."
                            )
                            e.line(
                                f'self.push("{source.name}", value, '
                                f"index={index_arg})"
                            )
                    else:
                        e.line(f"def {push}(self, value):")
                        with e.indented():
                            e.docstring(
                                f"Event-driven delivery of '{source.name}'."
                            )
                            e.line(f'self.push("{source.name}", value)')
                for action in decl.actions:
                    body = True
                    handler = f"do_{action_method_name(action.name)}"
                    params = ", ".join(
                        camel_to_snake(p.name) for p in action.params
                    )
                    signature = f"self, {params}" if params else "self"
                    e.blank()
                    e.line(f"def {handler}({signature}):")
                    with e.indented():
                        e.docstring(
                            f"Perform action '{action.name}'."
                        )
                        e.line(
                            "raise NotImplementedError("
                            f'"driver must implement {handler}()")'
                        )
                if not body:
                    e.blank()
                    e.line("# facets are inherited unchanged")
            e.blank(1)
            emitted.add(device_name)

        for device in self.design.spec.devices:
            emit(device.name)

    # -- contexts --------------------------------------------------------------

    def _emit_contexts(self) -> None:
        e = self.emitter
        for context in self.design.spec.contexts:
            info = self.design.contexts[context.name]
            uses_mapreduce = any(
                isinstance(i, WhenPeriodic)
                and i.group is not None
                and i.group.uses_mapreduce
                for i in context.interactions
            )
            e.line(f"{publishable_name(context.name)} = Publishable")
            e.blank(1)
            bases = "Context, MapReduce" if uses_mapreduce else "Context"
            e.line(f"class {abstract_class_name(context.name)}({bases}):")
            with e.indented():
                e.docstring(
                    f"Generated base for context '{context.name}' "
                    f"(as {context.type_name}).",
                    "Subclass it and implement the callbacks; the runtime "
                    "invokes them\nas declared by the design (inversion of "
                    "control).",
                )
                e.blank()
                e.line(f'CONTEXT_NAME = "{context.name}"')
                e.line(f'RESULT_TYPE = "{context.type_name}"')
                emitted_names: Set[str] = {"CONTEXT_NAME", "RESULT_TYPE"}
                for interaction in context.interactions:
                    self._emit_context_interaction(
                        context, interaction, emitted_names
                    )
                if uses_mapreduce:
                    self._emit_mapreduce_methods(context, emitted_names)
                del info
            e.blank(1)

    def _emit_context_interaction(
        self, context, interaction, emitted: Set[str]
    ) -> None:
        e = self.emitter
        if isinstance(interaction, WhenRequired):
            if "when_required" not in emitted:
                emitted.add("when_required")
                e.blank()
                e.line("def when_required(self, discover):")
                with e.indented():
                    e.docstring(
                        "Serve a query-driven pull of this context "
                        "('when required')."
                    )
                    e.line(
                        "raise NotImplementedError("
                        '"implement when_required()")'
                    )
            return

        if isinstance(interaction, WhenProvidedSource):
            handler = event_handler_name(interaction.source, interaction.device)
            argument = camel_to_snake(
                f"{interaction.source}From{class_name(interaction.device)}"
            )
            description = (
                f"Callback for 'when provided {interaction.source} from "
                f"{interaction.device}' ({interaction.publish.value} "
                "publish)."
            )
            detail = (
                f"``{argument}`` is the SourceEvent: .value holds the "
                f"reading, .device\nthe publishing entity's proxy.  "
                + _publish_doc(interaction.publish, context.name)
            )
        elif isinstance(interaction, WhenPeriodic):
            # Figure 10 names the callback after the source alone
            # (onPeriodicPresence); the runtime also accepts the long
            # on_periodic_<source>_from_<device> spelling.
            handler = periodic_handler_short_name(interaction.source)
            argument, detail = _periodic_argument(interaction)
            description = (
                f"Callback for 'when periodic {interaction.source} from "
                f"{interaction.device} {interaction.period}' "
                f"({interaction.publish.value} publish)."
            )
            detail += "  " + _publish_doc(interaction.publish, context.name)
        elif isinstance(interaction, WhenProvidedContext):
            handler = context_handler_name(interaction.context)
            argument = camel_to_snake(interaction.context)
            description = (
                f"Callback for 'when provided {interaction.context}' "
                f"({interaction.publish.value} publish)."
            )
            detail = (
                f"``{argument}`` is the value published by the "
                f"{interaction.context} context.  "
                + _publish_doc(interaction.publish, context.name)
            )
        else:  # pragma: no cover - exhaustive
            raise CodegenError(f"unknown interaction {interaction!r}")

        if handler not in emitted:
            emitted.add(handler)
            e.blank()
            e.line(f"def {handler}(self, {argument}, discover):")
            with e.indented():
                e.docstring(description, detail)
                e.line(
                    f'raise NotImplementedError("implement {handler}()")'
                )
        self._emit_get_helpers(interaction.gets, emitted)

    def _emit_get_helpers(self, gets, emitted: Set[str]) -> None:
        e = self.emitter
        for get in gets:
            if isinstance(get, GetSource):
                helper = (
                    f"get_{camel_to_snake(get.source)}_from_"
                    f"{camel_to_snake(get.device)}"
                )
                if helper in emitted:
                    continue
                emitted.add(helper)
                e.blank()
                e.line(f"def {helper}(self, where=None):")
                with e.indented():
                    e.docstring(
                        f"Query-driven pull of '{get.source}' from bound "
                        f"{get.device} entities.",
                        "Returns the single value when exactly one entity "
                        "matches,\notherwise an {entity_id: value} mapping.",
                    )
                    e.line(f'targets = self.discover.devices("{get.device}")')
                    e.line("if where:")
                    with e.indented():
                        e.line("targets = targets.where(**where)")
                    e.line(
                        "values = {proxy.entity_id: proxy.query("
                        f'"{get.source}") for proxy in targets}}'
                    )
                    e.line("if len(values) == 1:")
                    with e.indented():
                        e.line("return next(iter(values.values()))")
                    e.line("return values")
            elif isinstance(get, GetContext):
                helper = f"get_{camel_to_snake(get.context)}"
                if helper in emitted:
                    continue
                emitted.add(helper)
                e.blank()
                e.line(f"def {helper}(self):")
                with e.indented():
                    e.docstring(
                        f"Query-driven pull of the {get.context} context "
                        "('when required')."
                    )
                    e.line(
                        "return self.discover.context_value("
                        f'"{get.context}")'
                    )

    def _emit_mapreduce_methods(self, context, emitted: Set[str]) -> None:
        e = self.emitter
        declaration = next(
            i
            for i in context.interactions
            if isinstance(i, WhenPeriodic)
            and i.group is not None
            and i.group.uses_mapreduce
        )
        group = declaration.group
        if "map" not in emitted:
            emitted.add("map")
            e.blank()
            e.line("def map(self, key, value, collector):")
            with e.indented():
                e.docstring(
                    f"Map phase: emits {group.map_type_name} values "
                    f"(design: 'with map as {group.map_type_name}').",
                    f"``key`` is the grouping attribute "
                    f"({group.attribute}); ``value`` one raw\nreading of "
                    f"'{declaration.source}'.  Emit with "
                    "collector.emit_map(key, value).",
                )
                e.line('raise NotImplementedError("implement map()")')
        if "reduce" not in emitted:
            emitted.add("reduce")
            e.blank()
            e.line("def reduce(self, key, values, collector):")
            with e.indented():
                e.docstring(
                    f"Reduce phase: produces the {group.reduce_type_name} "
                    f"result per key (design: 'reduce as "
                    f"{group.reduce_type_name}').",
                    "``values`` is the list of Map-phase emissions for "
                    "``key``.  Emit with\ncollector.emit_reduce(key, value).",
                )
                e.line('raise NotImplementedError("implement reduce()")')
        if "combine" not in emitted:
            emitted.add("combine")
            e.blank()
            e.line("# Optional streaming fast path: define")
            e.line("#     def combine(self, key, values, collector): ...")
            e.line("# (associative, emitting via collector.emit_combine) to")
            e.line("# collapse intermediate pairs per map chunk before the")
            e.line("# shuffle and to fold `every <window>` deliveries")
            e.line("# incrementally instead of buffering them.")

    # -- controllers --------------------------------------------------------------

    def _emit_controllers(self) -> None:
        e = self.emitter
        for controller in self.design.spec.controllers:
            e.line(f"class {abstract_class_name(controller.name)}(Controller):")
            with e.indented():
                e.docstring(
                    f"Generated base for controller '{controller.name}'.",
                    "Controllers receive context values and actuate devices "
                    "through the\ngenerated do_* helpers (Figure 11).",
                )
                e.blank()
                e.line(f'CONTROLLER_NAME = "{controller.name}"')
                emitted: Set[str] = set()
                for reaction in controller.reactions:
                    handler = context_handler_name(reaction.context)
                    if handler not in emitted:
                        emitted.add(handler)
                        argument = camel_to_snake(reaction.context)
                        e.blank()
                        e.line(f"def {handler}(self, {argument}, discover):")
                        with e.indented():
                            e.docstring(
                                f"Callback for 'when provided "
                                f"{reaction.context}'."
                            )
                            e.line(
                                "raise NotImplementedError("
                                f'"implement {handler}()")'
                            )
                    for do in reaction.dos:
                        self._emit_do_helper(do, emitted)
            e.blank(1)

    def _emit_do_helper(self, do, emitted: Set[str]) -> None:
        e = self.emitter
        helper = (
            f"do_{action_method_name(do.action)}_on_"
            f"{camel_to_snake(do.device)}"
        )
        if helper in emitted:
            return
        emitted.add(helper)
        action_info = self.design.devices[do.device].actions[do.action]
        param_names = [camel_to_snake(p) for p, __ in action_info.params]
        params = "".join(f", {p}" for p in param_names)
        e.blank()
        e.line(f"def {helper}(self{params}, where=None):")
        with e.indented():
            e.docstring(
                f"Issue action '{do.action}' on discovered {do.device} "
                "entities.",
                "``where`` narrows the target set by attribute values, "
                "e.g.\nwhere={'location': lot}.  Returns {entity_id: "
                "result}.",
            )
            e.line(f'targets = self.discover.devices("{do.device}")')
            e.line("if where:")
            with e.indented():
                e.line("targets = targets.where(**where)")
            call_params = ", ".join(
                f"{name}={snake}"
                for (name, __), snake in zip(action_info.params, param_names)
            )
            if call_params:
                e.line(f'return targets.act("{do.action}", {call_params})')
            else:
                e.line(f'return targets.act("{do.action}")')

    # -- framework --------------------------------------------------------------

    def _emit_framework_class(self) -> None:
        e = self.emitter
        e.line(f"class {self.name}Framework:")
        with e.indented():
            e.docstring(
                f"Customized programming framework for design '{self.name}'.",
                "Install implementations (which must subclass the generated "
                "abstract\nclasses), bind devices, then start() — the "
                "runtime calls the\nimplementations as the design "
                "prescribes.",
            )
            e.blank()
            e.line("ABSTRACTS = {")
            with e.indented():
                for context in self.design.spec.contexts:
                    e.line(
                        f'"{context.name}": '
                        f"{abstract_class_name(context.name)},"
                    )
                for controller in self.design.spec.controllers:
                    e.line(
                        f'"{controller.name}": '
                        f"{abstract_class_name(controller.name)},"
                    )
            e.line("}")
            e.blank()
            e.line("def __init__(self, clock=None, mapreduce_executor=None,")
            e.line("             streaming_windows=True, sweep=None,")
            e.line("             cache=None, batch=None, shard=None,")
            e.line("             network=None, placement=None,")
            e.line("             config=None):")
            with e.indented():
                e.line("self.design = DESIGN")
                e.line("if config is None:")
                e.line("    config = RuntimeConfig(")
                e.line("        clock=clock,")
                e.line("        mapreduce_executor=mapreduce_executor,")
                e.line(f'        name="{self.name}",')
                e.line("        streaming_windows=streaming_windows,")
                e.line("        sweep=sweep if sweep is not None"
                       " else SweepConfig(),")
                e.line("        cache=cache if cache is not None"
                       " else CacheConfig(),")
                e.line("        batch=batch if batch is not None"
                       " else BatchConfig(),")
                e.line("        shard=shard if shard is not None"
                       " else ShardConfig(),")
                e.line("        network=network if network is not None"
                       " else NetworkConfig(),")
                e.line("        placement=placement if placement is not None"
                       " else PlacementConfig(),")
                e.line("    )")
                e.line("self.application = Application(DESIGN, config)")
            e.blank()
            e.line("def implement(self, name, implementation):")
            with e.indented():
                e.docstring(
                    "Install an implementation; enforces design conformance."
                )
                e.line("expected = self.ABSTRACTS.get(name)")
                e.line("if expected is None:")
                with e.indented():
                    e.line(
                        "raise TypeError("
                        "f\"'{name}' is not a context or controller of "
                        'this design")'
                    )
                e.line("cls = (")
                e.line("    implementation")
                e.line("    if isinstance(implementation, type)")
                e.line("    else type(implementation)")
                e.line(")")
                e.line("if not issubclass(cls, expected):")
                with e.indented():
                    e.line(
                        "raise TypeError("
                        "f\"implementation of '{name}' must subclass "
                        '{expected.__name__}")'
                    )
                e.line(
                    "return self.application.implement(name, implementation)"
                )
            for context in self.design.spec.contexts:
                snake = camel_to_snake(context.name)
                e.blank()
                e.line(f"def implement_{snake}(self, implementation):")
                with e.indented():
                    e.line(
                        f'return self.implement("{context.name}", '
                        "implementation)"
                    )
            for controller in self.design.spec.controllers:
                snake = camel_to_snake(controller.name)
                e.blank()
                e.line(f"def implement_{snake}(self, implementation):")
                with e.indented():
                    e.line(
                        f'return self.implement("{controller.name}", '
                        "implementation)"
                    )
            for device in self.design.spec.devices:
                self._emit_device_factory(device)
            for context in self.design.spec.contexts:
                if context.is_queryable:
                    snake = camel_to_snake(context.name)
                    e.blank()
                    e.line(f"def query_{snake}(self):")
                    with e.indented():
                        e.docstring(
                            f"Query-driven pull of the {context.name} "
                            "context."
                        )
                        e.line(
                            "return self.application.query_context("
                            f'"{context.name}")'
                        )
            e.blank()
            e.line("def start(self):")
            with e.indented():
                e.line("self.application.start()")
                e.line("return self")
            e.blank()
            e.line("def stop(self):")
            with e.indented():
                e.line("self.application.stop()")
            e.blank()
            e.line("def advance(self, seconds):")
            with e.indented():
                e.docstring("Drive the (simulation) clock forward.")
                e.line("return self.application.advance(seconds)")
            e.blank()
            e.line("@property")
            e.line("def discover(self):")
            with e.indented():
                e.line("return self.application.discover")
            e.blank()
            e.line("@property")
            e.line("def stats(self):")
            with e.indented():
                e.line("return self.application.stats")

    def _emit_device_factory(self, device) -> None:
        e = self.emitter
        info = self.design.devices[device.name]
        snake = camel_to_snake(device.name)
        attribute_names = sorted(info.attributes)
        params = "".join(
            f", {camel_to_snake(name)}" for name in attribute_names
        )
        e.blank()
        e.line(f"def create_{snake}(self, entity_id, driver{params}):")
        with e.indented():
            e.docstring(
                f"Bind a {device.name} entity (registering its attribute "
                "values)."
            )
            e.line("return self.application.create_device(")
            e.line(f'    "{device.name}",')
            e.line("    entity_id,")
            e.line("    driver,")
            for name in attribute_names:
                e.line(f"    {name}={camel_to_snake(name)},")
            e.line(")")


def _publish_doc(publish, context_name: str) -> str:
    wrapper = publishable_name(context_name)
    from repro.lang.ast_nodes import Publish

    if publish is Publish.ALWAYS:
        return (
            f"Must return the value to publish (optionally wrapped in "
            f"{wrapper})."
        )
    if publish is Publish.MAYBE:
        return (
            f"Return the value to publish (optionally wrapped in {wrapper}) "
            "or None to stay silent."
        )
    return "The return value is ignored ('no publish')."


def _periodic_argument(interaction) -> "tuple[str, str]":
    group = interaction.group
    source_snake = camel_to_snake(interaction.source)
    if group is None:
        argument = f"{source_snake}_readings"
        detail = (
            "``%s`` is a list of GatherReading(device, value) collected "
            "from every\nbound device in this sweep." % argument
        )
        return argument, detail
    attr_snake = camel_to_snake(group.attribute)
    argument = f"{source_snake}_by_{attr_snake}"
    if group.uses_mapreduce and group.window is not None:
        detail = (
            "``%s`` maps each %s to the per-sweep reduced values folded\n"
            "incrementally over the %s window through combine/reduce\n"
            "(streaming mode, the default), or to their buffered list "
            "when the\napplication is built with streaming_windows=False."
            % (argument, group.attribute, group.window)
        )
    elif group.uses_mapreduce:
        detail = (
            "``%s`` maps each %s to the Reduce-phase result for this "
            "sweep\n(Figure 10's onPeriodicPresence)." % (argument,
                                                          group.attribute)
        )
    elif group.window is not None:
        detail = (
            "``%s`` maps each %s to every raw reading gathered during "
            "the\n%s window." % (argument, group.attribute, group.window)
        )
    else:
        detail = (
            "``%s`` maps each %s to the raw readings of this sweep."
            % (argument, group.attribute)
        )
    return argument, detail
