"""The design compiler: DiaSpec designs to customized Python frameworks.

"An IoT design is processed by a compiler that produces a customized
programming framework in a host (mainstream) programming language"
(Section I).  The paper's host is Java; ours is Python — the approach
"can be applied to any mainstream programming language" (Section V).

For every declared component, :func:`generate_framework` emits:

* enumeration namespaces and frozen structure classes (Figure 8 bottom);
* one abstract class per context (Figure 9) and controller (Figure 11)
  with the callback the developer must implement, ``get``-clause helper
  methods, ``do``-clause action helpers, and per-context ``Publishable``
  aliases;
* one abstract driver class per device (Section III: "implementing a
  device driver");
* a ``Framework`` class that enforces design conformance: implementations
  must subclass the generated abstract classes to be installed.

:func:`generate_stubs` emits the developer-side skeleton (the white-
background code of Figures 9-10, with ``TODO`` bodies), and
:mod:`repro.codegen.report` measures generated vs. handwritten code for
the paper's 80 %-generated-code claim.
"""

from repro.codegen.framework_gen import compile_design, generate_framework
from repro.codegen.report import GenerationReport, measure_generation
from repro.codegen.stub_gen import generate_stubs

__all__ = [
    "GenerationReport",
    "compile_design",
    "generate_framework",
    "generate_stubs",
    "measure_generation",
]
