"""Generated-code accounting for the paper's productivity claim.

Section V: "this generative approach greatly improves productivity as the
amount of generated code may represent up to 80% of the resulting
application code".  :func:`measure_generation` compares the generated
framework against the developer-supplied implementation code and reports
the ratio; the ``bench_generated_ratio`` benchmark prints it for every
bundled application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.codegen.framework_gen import generate_framework
from repro.metrics.loc import count_loc
from repro.sema.analyzer import AnalyzedSpec, analyze


@dataclass(frozen=True)
class GenerationReport:
    """LoC accounting for one application."""

    design_loc: int
    generated_loc: int
    handwritten_loc: int

    @property
    def total_application_loc(self) -> int:
        return self.generated_loc + self.handwritten_loc

    @property
    def generated_ratio(self) -> float:
        """Fraction of the application that the compiler produced."""
        total = self.total_application_loc
        return self.generated_loc / total if total else 0.0

    @property
    def leverage(self) -> float:
        """Generated LoC obtained per line of design."""
        return self.generated_loc / self.design_loc if self.design_loc else 0.0

    def row(self, name: str) -> str:
        return (
            f"{name:<24} {self.design_loc:>7} {self.generated_loc:>10} "
            f"{self.handwritten_loc:>12} {self.generated_ratio:>8.1%}"
        )


def measure_generation(
    design: Union[str, AnalyzedSpec],
    handwritten_source: str,
    design_source: str = "",
    name: str = "App",
) -> GenerationReport:
    """Measure generated vs handwritten code for one application.

    ``handwritten_source`` is the developer implementation (context and
    controller subclasses plus wiring); ``design_source`` the DiaSpec text
    (re-derived from the AST when omitted).
    """
    if isinstance(design, str):
        design_source = design_source or design
        design = analyze(design)
    if not design_source:
        from repro.lang.pretty import pretty

        design_source = pretty(design.spec)
    generated = generate_framework(design, name)
    return GenerationReport(
        design_loc=count_loc(design_source),
        generated_loc=count_loc(generated),
        handwritten_loc=count_loc(handwritten_source),
    )
