"""Design documentation generator.

Renders an analyzed design as Markdown: the device taxonomy with its
facets, context and controller contracts, data types, and the functional
chains of the graphical views (Figures 3-4).  Available on the command
line as ``python -m repro doc design.diaspec``.
"""

from __future__ import annotations

from typing import List, Union

from repro.lang.ast_nodes import (
    GetContext,
    GetSource,
    WhenPeriodic,
    WhenProvidedSource,
    WhenRequired,
)
from repro.sema.analyzer import AnalyzedSpec, analyze


def generate_docs(design: Union[str, AnalyzedSpec], title: str = "Design") -> str:
    """Render Markdown documentation for a design."""
    if isinstance(design, str):
        design = analyze(design)
    lines: List[str] = [f"# {title}", ""]
    _summary(design, lines)
    _devices(design, lines)
    _data_types(design, lines)
    _contexts(design, lines)
    _controllers(design, lines)
    _chains(design, lines)
    _warnings(design, lines)
    return "\n".join(lines).rstrip() + "\n"


def _summary(design: AnalyzedSpec, lines: List[str]) -> None:
    lines.append(
        f"{len(design.devices)} device type(s), "
        f"{len(design.contexts)} context(s), "
        f"{len(design.controllers)} controller(s); dataflow depth "
        f"{max(design.graph.layers.values(), default=0)}."
    )
    lines.append("")


def _devices(design: AnalyzedSpec, lines: List[str]) -> None:
    lines.append("## Devices")
    lines.append("")
    for name in sorted(design.devices):
        info = design.devices[name]
        heading = f"### {name}"
        if info.decl.extends:
            heading += f" *(extends {info.decl.extends})*"
        lines.append(heading)
        lines.append("")
        if info.attributes:
            lines.append("Attributes:")
            for attr_name in sorted(info.attributes):
                attr = info.attributes[attr_name]
                origin = (
                    "" if attr.declared_by == name
                    else f" *(from {attr.declared_by})*"
                )
                lines.append(
                    f"- `{attr_name}` : {attr.dia_type.name}{origin}"
                )
            lines.append("")
        if info.sources:
            lines.append("Sources:")
            for source_name in sorted(info.sources):
                source = info.sources[source_name]
                entry = f"- `{source_name}` : {source.dia_type.name}"
                if source.is_indexed:
                    entry += (
                        f", indexed by `{source.index_name}` : "
                        f"{source.index_type.name}"
                    )
                if source.retries or source.timeout_seconds:
                    policy = []
                    if source.timeout_seconds:
                        policy.append(f"timeout {source.timeout_seconds}s")
                    if source.retries:
                        policy.append(f"retry {source.retries}")
                    entry += f" *(expect {', '.join(policy)})*"
                if source.declared_by != name:
                    entry += f" *(from {source.declared_by})*"
                lines.append(entry)
            lines.append("")
        if info.actions:
            lines.append("Actions:")
            for action_name in sorted(info.actions):
                action = info.actions[action_name]
                params = ", ".join(
                    f"{param}: {dia_type.name}"
                    for param, dia_type in action.params
                )
                origin = (
                    "" if action.declared_by == name
                    else f" *(from {action.declared_by})*"
                )
                lines.append(f"- `{action_name}({params})`{origin}")
            lines.append("")


def _data_types(design: AnalyzedSpec, lines: List[str]) -> None:
    enums = design.spec.enumerations
    structs = design.spec.structures
    if not enums and not structs:
        return
    lines.append("## Data types")
    lines.append("")
    for enum_decl in enums:
        lines.append(
            f"- enumeration `{enum_decl.name}`: "
            + ", ".join(enum_decl.members)
        )
    for struct_decl in structs:
        fields = ", ".join(
            f"{field.name}: {field.type_name}"
            for field in struct_decl.fields
        )
        lines.append(f"- structure `{struct_decl.name}` {{ {fields} }}")
    lines.append("")


def _interaction_line(interaction) -> str:
    if isinstance(interaction, WhenRequired):
        return "serves query-driven pulls (`when required`)"
    if isinstance(interaction, WhenProvidedSource):
        text = (
            f"event-driven on `{interaction.source}` from "
            f"`{interaction.device}`"
        )
    elif isinstance(interaction, WhenPeriodic):
        text = (
            f"gathers `{interaction.source}` from `{interaction.device}` "
            f"every {interaction.period}"
        )
        group = interaction.group
        if group is not None:
            text += f", grouped by `{group.attribute}`"
            if group.uses_mapreduce:
                text += (
                    f" via MapReduce ({group.map_type_name} → "
                    f"{group.reduce_type_name})"
                )
            if group.window is not None:
                text += f", accumulated over {group.window}"
    else:
        text = f"subscribes to `{interaction.context}`"
    for get in interaction.gets:
        if isinstance(get, GetSource):
            text += f"; queries `{get.source}` from `{get.device}`"
        elif isinstance(get, GetContext):
            text += f"; queries context `{get.context}`"
    text += f" — {interaction.publish.value} publish"
    return text


def _contexts(design: AnalyzedSpec, lines: List[str]) -> None:
    if not design.contexts:
        return
    lines.append("## Contexts")
    lines.append("")
    for name in design.graph.context_order():
        info = design.contexts[name]
        lines.append(
            f"### {name} → {info.result_type.name} "
            f"*(layer {design.graph.layers[name]})*"
        )
        lines.append("")
        if info.decl.deadline is not None:
            lines.append(f"QoS deadline: {info.decl.deadline}.")
            lines.append("")
        for interaction in info.decl.interactions:
            lines.append(f"- {_interaction_line(interaction)}")
        lines.append("")


def _controllers(design: AnalyzedSpec, lines: List[str]) -> None:
    if not design.controllers:
        return
    lines.append("## Controllers")
    lines.append("")
    for name in sorted(design.controllers):
        info = design.controllers[name]
        lines.append(f"### {name}")
        lines.append("")
        if info.decl.deadline is not None:
            lines.append(f"QoS deadline: {info.decl.deadline}.")
            lines.append("")
        for reaction in info.decl.reactions:
            actions = ", ".join(
                f"`{do.action}` on `{do.device}`" for do in reaction.dos
            )
            lines.append(f"- on `{reaction.context}` → {actions}")
        lines.append("")


def _chains(design: AnalyzedSpec, lines: List[str]) -> None:
    chains = design.graph.functional_chains()
    if not chains:
        return
    lines.append("## Functional chains")
    lines.append("")
    for chain in chains:
        lines.append("- " + " → ".join(chain))
    lines.append("")


def _warnings(design: AnalyzedSpec, lines: List[str]) -> None:
    if not design.report.warnings:
        return
    lines.append("## Warnings")
    lines.append("")
    for warning in design.report.warnings:
        lines.append(f"- {warning}")
    lines.append("")
