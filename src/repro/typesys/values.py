"""Runtime value conformance for DiaSpec types.

The generated frameworks of the paper are statically typed (Java).  In the
Python host we enforce the same guarantees dynamically: every value that
crosses a component boundary (a source reading, a published context value,
an action argument) is checked against its declared type before delivery.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import ValueConformanceError
from repro.typesys.core import (
    ArrayType,
    DiaType,
    EnumerationType,
    PrimitiveType,
    StructureType,
)


class StructureValue:
    """A runtime instance of a declared ``structure`` type.

    Behaves like a lightweight record: fields are attributes, equality is
    structural, and construction validates field values against the
    structure's declared field types.

    >>> availability = StructureValue(availability_type, parkingLot="A22", count=3)
    >>> availability.count
    3
    """

    __slots__ = ("_type", "_values")

    def __init__(self, structure_type: StructureType, **field_values: Any):
        declared = set(structure_type.field_names)
        supplied = set(field_values)
        if declared != supplied:
            missing = sorted(declared - supplied)
            extra = sorted(supplied - declared)
            parts = []
            if missing:
                parts.append(f"missing fields {missing}")
            if extra:
                parts.append(f"unknown fields {extra}")
            raise ValueConformanceError(
                f"structure {structure_type.name}: " + ", ".join(parts)
            )
        checked = {}
        for name, dia_type in structure_type.fields:
            checked[name] = check_value(dia_type, field_values[name])
        object.__setattr__(self, "_type", structure_type)
        object.__setattr__(self, "_values", checked)

    @property
    def structure_type(self) -> StructureType:
        return self._type

    def __getattr__(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("StructureValue instances are immutable")

    def as_dict(self) -> Mapping[str, Any]:
        return dict(self._values)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StructureValue)
            and self._type == other._type
            and self._values == other._values
        )

    def __hash__(self) -> int:
        return hash((self._type.name, tuple(sorted(self._values.items()))))

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"{self._type.name}({fields})"


def check_value(dia_type: DiaType, value: Any) -> Any:
    """Validate ``value`` against ``dia_type`` and return it unchanged.

    Raises :class:`ValueConformanceError` on mismatch.  Lists and tuples are
    both accepted for array types; tuples are returned as-is (no copying).
    """
    if isinstance(dia_type, PrimitiveType):
        _check_primitive(dia_type, value)
        return value
    if isinstance(dia_type, EnumerationType):
        if value not in dia_type:
            raise ValueConformanceError(
                f"{value!r} is not a member of enumeration {dia_type.name}"
            )
        return value
    if isinstance(dia_type, StructureType):
        if isinstance(value, StructureValue) and value.structure_type == dia_type:
            return value
        if isinstance(value, Mapping):
            return StructureValue(dia_type, **value)
        as_dict = getattr(value, "as_dict", None)
        if callable(as_dict):
            # Generated structure classes expose their fields via as_dict().
            return StructureValue(dia_type, **as_dict())
        raise ValueConformanceError(
            f"{value!r} is not a value of structure {dia_type.name}"
        )
    if isinstance(dia_type, ArrayType):
        if not isinstance(value, (list, tuple)):
            raise ValueConformanceError(
                f"{value!r} is not an array of {dia_type.element.name}"
            )
        return [check_value(dia_type.element, item) for item in value]
    raise ValueConformanceError(f"unsupported type {dia_type!r}")


def coerce_value(dia_type: DiaType, value: Any) -> Any:
    """Like :func:`check_value`, but applies safe numeric widening.

    ``Integer`` readings are widened to float for a ``Float`` position;
    mappings are promoted to structure values.  Used at the device boundary
    where drivers may produce plain Python data.
    """
    if isinstance(dia_type, PrimitiveType) and dia_type.name == "Float":
        if isinstance(value, bool):
            raise ValueConformanceError("Boolean is not a Float")
        if isinstance(value, int):
            return float(value)
    return check_value(dia_type, value)


def _check_primitive(dia_type: PrimitiveType, value: Any) -> None:
    name = dia_type.name
    if name == "Boolean":
        if not isinstance(value, bool):
            raise ValueConformanceError(f"{value!r} is not a Boolean")
        return
    if name == "Integer":
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueConformanceError(f"{value!r} is not an Integer")
        return
    if name == "Float":
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueConformanceError(f"{value!r} is not a Float")
        return
    if name == "String":
        if not isinstance(value, str):
            raise ValueConformanceError(f"{value!r} is not a String")
        return
    raise ValueConformanceError(f"unknown primitive {name}")
