"""DiaSpec type system.

Types appear everywhere in a DiaSpec design: source and attribute
declarations (``source presence as Boolean``), context result types
(``context ParkingAvailability as Availability[]``), action parameters
(``action update(status as String)``), indexed sources, and the Map/Reduce
phase types of the ``grouped by … with map … reduce …`` construct.

This package models those types (:mod:`repro.typesys.core`) and checks that
runtime Python values conform to them (:mod:`repro.typesys.values`).
"""

from repro.typesys.core import (
    ArrayType,
    BOOLEAN,
    DiaType,
    EnumerationType,
    FLOAT,
    INTEGER,
    PRIMITIVES,
    PrimitiveType,
    STRING,
    StructureType,
    TypeEnvironment,
    parse_type_name,
)
from repro.typesys.values import StructureValue, check_value, coerce_value

__all__ = [
    "ArrayType",
    "BOOLEAN",
    "DiaType",
    "EnumerationType",
    "FLOAT",
    "INTEGER",
    "PRIMITIVES",
    "PrimitiveType",
    "STRING",
    "StructureType",
    "StructureValue",
    "TypeEnvironment",
    "check_value",
    "coerce_value",
    "parse_type_name",
]
