"""Core model of DiaSpec types.

DiaSpec has four primitive types (``Integer``, ``Float``, ``Boolean``,
``String``), user-declared ``enumeration`` and ``structure`` types, and
array types written ``T[]`` (e.g. the ``Availability[]`` result type of the
``ParkingAvailability`` context in Figure 8 of the paper).

Type objects are immutable and compare structurally, so two independently
parsed designs that declare the same types produce equal type objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import DuplicateDeclarationError, UnknownNameError


class DiaType:
    """Base class of every DiaSpec type."""

    name: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class PrimitiveType(DiaType):
    """One of the four built-in scalar types."""

    name: str

    def python_types(self) -> Tuple[type, ...]:
        """Python types accepted as runtime representations."""
        return _PY_TYPES[self.name]


INTEGER = PrimitiveType("Integer")
FLOAT = PrimitiveType("Float")
BOOLEAN = PrimitiveType("Boolean")
STRING = PrimitiveType("String")

PRIMITIVES: Dict[str, PrimitiveType] = {
    t.name: t for t in (INTEGER, FLOAT, BOOLEAN, STRING)
}

# bool is a subclass of int, so Boolean must be checked before Integer and
# Integer must explicitly exclude bool (done in values.check_value).
_PY_TYPES: Dict[str, Tuple[type, ...]] = {
    "Integer": (int,),
    "Float": (float, int),
    "Boolean": (bool,),
    "String": (str,),
}


@dataclass(frozen=True)
class EnumerationType(DiaType):
    """A declared ``enumeration``, e.g. ``ParkingLotEnum { A22, B16, D6 }``.

    Runtime values of an enumeration type are its member names (strings),
    mirroring how deployed infrastructures register attribute values.
    """

    name: str
    members: Tuple[str, ...]

    def __post_init__(self):
        seen = set()
        for member in self.members:
            if member in seen:
                raise DuplicateDeclarationError(
                    f"duplicate member '{member}'", declaration=self.name
                )
            seen.add(member)

    def __contains__(self, value: object) -> bool:
        return value in self.members


@dataclass(frozen=True)
class StructureType(DiaType):
    """A declared ``structure``, e.g. ``Availability { parkingLot …; count …; }``.

    Fields are ordered, as in the paper's declarations.
    """

    name: str
    fields: Tuple[Tuple[str, "DiaType"], ...]

    def __post_init__(self):
        seen = set()
        for field_name, __ in self.fields:
            if field_name in seen:
                raise DuplicateDeclarationError(
                    f"duplicate field '{field_name}'", declaration=self.name
                )
            seen.add(field_name)

    def field_type(self, field_name: str) -> "DiaType":
        for name, dia_type in self.fields:
            if name == field_name:
                return dia_type
        raise UnknownNameError(
            f"no field '{field_name}'", declaration=self.name
        )

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(name for name, __ in self.fields)


@dataclass(frozen=True)
class ArrayType(DiaType):
    """An array type ``T[]``; element may itself be any non-array type."""

    element: DiaType
    name: str = field(init=False)

    def __post_init__(self):
        object.__setattr__(self, "name", f"{self.element.name}[]")


class TypeEnvironment:
    """Registry of the named types visible to a design.

    Primitives are always present; ``enumeration`` and ``structure``
    declarations add names as the analyzer processes a design.
    """

    def __init__(self):
        self._types: Dict[str, DiaType] = dict(PRIMITIVES)

    def declare(self, dia_type: DiaType) -> None:
        """Register a named type, rejecting redeclarations."""
        if dia_type.name in self._types:
            raise DuplicateDeclarationError(
                f"type '{dia_type.name}' is already declared"
            )
        self._types[dia_type.name] = dia_type

    def lookup(self, name: str) -> DiaType:
        """Resolve a type name, handling the ``T[]`` array suffix."""
        if name.endswith("[]"):
            return ArrayType(self.lookup(name[:-2]))
        try:
            return self._types[name]
        except KeyError:
            raise UnknownNameError(f"unknown type '{name}'") from None

    def get(self, name: str) -> Optional[DiaType]:
        try:
            return self.lookup(name)
        except UnknownNameError:
            return None

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._types))


def parse_type_name(name: str) -> Tuple[str, int]:
    """Split a written type into its base name and array depth.

    ``"Availability[]"`` → ``("Availability", 1)``.
    """
    depth = 0
    while name.endswith("[]"):
        name = name[:-2]
        depth += 1
    return name, depth
