"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single type at their outermost layer.  Errors are
split along the tool-chain stages described in the paper: parsing a DiaSpec
design, semantically analyzing it, generating a framework from it, and
running the orchestrating application.
"""

from __future__ import annotations

from typing import NamedTuple, Optional


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class DiaSpecError(ReproError):
    """Base class for errors in a DiaSpec design (syntax or semantics)."""


class DiaSpecSyntaxError(DiaSpecError):
    """A DiaSpec design could not be tokenized or parsed.

    Carries the source position so tooling can point at the offending text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class SemanticError(DiaSpecError):
    """A DiaSpec design parsed but violates a semantic rule."""

    def __init__(self, message: str, declaration: str = ""):
        self.declaration = declaration
        if declaration:
            message = f"in declaration '{declaration}': {message}"
        super().__init__(message)


class SccViolationError(SemanticError):
    """A design violates the Sense-Compute-Control paradigm.

    Examples: a controller publishing a value, a controller feeding a
    context, a context issuing device actions, or a cycle among contexts.
    """


class DuplicateDeclarationError(SemanticError):
    """Two top-level declarations (or two facets) share a name."""


class UnknownNameError(SemanticError):
    """A declaration references a name that is not declared anywhere."""


class TypeMismatchError(SemanticError):
    """Two typed positions that must agree do not."""


class CodegenError(ReproError):
    """Framework generation failed for an analyzed design."""


class RuntimeOrchestrationError(ReproError):
    """Base class for errors during application execution."""


class BindingError(RuntimeOrchestrationError):
    """Entity binding failed (missing implementation, bad attributes...)."""


class DiscoveryError(RuntimeOrchestrationError):
    """A discovery request matched no entity when one was required."""


class DeliveryError(RuntimeOrchestrationError):
    """A data-delivery request could not be satisfied."""


class DeviceUnavailableError(DeliveryError):
    """A specific entity cannot serve reads right now.

    Raised when a device has failed, exhausted its supervised retry
    budget, or is quarantined.  Carries the originating ``entity_id`` so
    supervision layers (and ``app.component_errors``) can attribute the
    failure.  Subclasses :class:`DeliveryError` so pre-supervision code
    that catches the broad type keeps working.
    """

    def __init__(self, message: str, entity_id: Optional[str] = None):
        self.entity_id = entity_id
        super().__init__(message)


class CircuitOpenError(DeviceUnavailableError):
    """An entity's circuit breaker is open; the call was not attempted.

    Distinct from :class:`DeviceUnavailableError` proper: the runtime
    *chose* not to touch the device (fail-fast), rather than trying and
    failing.  Degraded-delivery policies treat both the same way.
    """


class ContextNotQueryableError(DeliveryError):
    """A query-driven pull targeted a context without ``when required``.

    Carries the ``context`` name so callers building query surfaces
    over many contexts can report exactly which one was misused.
    Subclasses :class:`DeliveryError` so existing broad handlers keep
    working.
    """

    def __init__(self, message: str, context: Optional[str] = None):
        self.context = context
        super().__init__(message)


class ShardError(RuntimeOrchestrationError):
    """A sharded-runtime worker failed or the coordinator lost it.

    Raised by :class:`repro.runtime.shard.ShardedRuntime` when a worker
    process dies, returns a malformed reply, or reports an exception
    while executing a shard command.  Carries the ``shard`` index so
    operators can correlate with the ``shard_*`` metric families.
    """

    def __init__(self, message: str, shard: Optional[int] = None):
        self.shard = shard
        if shard is not None:
            message = f"shard {shard}: {message}"
        super().__init__(message)


class PlacementError(RuntimeOrchestrationError):
    """The edge/cloud placement tier was misconfigured or misused.

    Raised when an entity cannot be assigned to an edge node (missing
    edge attribute, attribute value owned by no declared node, unknown
    node id in a deployment descriptor) or when a placement tier name
    is not one of the continuum tiers.  Carries the offending
    ``entity_id`` and/or ``node`` when the failure identified them.
    """

    def __init__(
        self,
        message: str,
        entity_id: Optional[str] = None,
        node: Optional[str] = None,
    ):
        self.entity_id = entity_id
        self.node = node
        super().__init__(message)


class TuningError(RuntimeOrchestrationError):
    """The live-tuning layer was misconfigured or misused.

    Raised for unknown knob names, config sections that do not speak
    the :class:`~repro.runtime.configbase.ConfigBase` protocol, a
    ``custom`` objective with no callable installed, or an attempt to
    change a structural (non-live) config field on a running
    application via ``Application.apply_config``.
    """


class ActuationError(RuntimeOrchestrationError):
    """An action could not be issued to a device."""


class DeviceFailureError(RuntimeOrchestrationError):
    """A simulated device failure surfaced to the application layer."""


class ValueConformanceError(RuntimeOrchestrationError):
    """A runtime value does not conform to its declared DiaSpec type."""


class ComponentError(NamedTuple):
    """One contained component failure (``error_policy='isolate'``).

    ``entity_id`` is the originating entity when the failure carried one
    (a :class:`DeviceUnavailableError` raised mid-gather, say); ``None``
    for pure component-logic failures.
    """

    component: str
    error: Exception
    entity_id: Optional[str] = None
