"""Cooker monitoring: the paper's small-scale application (Figures 3, 5, 7, 9)."""

from repro.apps.cooker.app import CookerApp, build_cooker_app
from repro.apps.cooker.design import DESIGN_SOURCE, get_design
from repro.apps.cooker.devices import CookerDriver, TVPrompterDriver
from repro.apps.cooker.logic import (
    AlertContext,
    NotifyController,
    RemoteTurnOffContext,
    TurnOffController,
)

__all__ = [
    "AlertContext",
    "CookerApp",
    "CookerDriver",
    "DESIGN_SOURCE",
    "NotifyController",
    "RemoteTurnOffContext",
    "TVPrompterDriver",
    "TurnOffController",
    "build_cooker_app",
    "get_design",
]
