"""Assembly of the cooker monitoring application."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.cooker.design import DESIGN_SOURCE, get_design
from repro.apps.cooker.devices import CookerDriver, TVPrompterDriver
from repro.apps.cooker.logic import (
    AlertContext,
    NotifyController,
    RemoteTurnOffContext,
    TurnOffController,
)
from repro.api import Application, RuntimeConfig, SimulationClock
from repro.simulation.environment import HomeEnvironment
from repro.simulation.sensors import ClockDeviceDriver


@dataclass
class CookerApp:
    """A runnable cooker-monitoring deployment with its handles."""

    application: Application
    environment: HomeEnvironment
    cooker_driver: CookerDriver
    prompter_driver: TVPrompterDriver
    clock_driver: ClockDeviceDriver
    alert: AlertContext
    notify: NotifyController
    remote_turn_off: RemoteTurnOffContext
    turn_off: TurnOffController

    def advance(self, seconds: float) -> int:
        return self.application.advance(seconds)

    @property
    def cooker_on(self) -> bool:
        return self.environment.consumption() > 0


def build_cooker_app(
    clock: Optional[SimulationClock] = None,
    environment: Optional[HomeEnvironment] = None,
    threshold_seconds: int = 1200,
    renotify_seconds: int = 600,
    start: bool = True,
) -> CookerApp:
    """Build (and by default start) the cooker monitoring application.

    The home environment is attached to the same clock, so advancing the
    application advances the simulated home too.
    """
    clock = clock or SimulationClock()
    environment = environment or HomeEnvironment(step_seconds=60.0)
    application = Application(
        get_design(), RuntimeConfig(clock=clock, name="CookerMonitoring")
    )

    alert = AlertContext(threshold_seconds, renotify_seconds)
    notify = NotifyController()
    remote = RemoteTurnOffContext()
    turn_off = TurnOffController()
    application.implement("Alert", alert)
    application.implement("Notify", notify)
    application.implement("RemoteTurnOff", remote)
    application.implement("TurnOff", turn_off)

    cooker_driver = CookerDriver(environment)
    prompter_driver = TVPrompterDriver()
    clock_driver = ClockDeviceDriver()
    application.create_device("Cooker", "cooker-kitchen", cooker_driver)
    application.create_device("TVPrompter", "tv-living-room", prompter_driver)
    application.create_device("Clock", "wall-clock", clock_driver)

    environment.attach(clock)
    clock_driver.start(clock)
    if start:
        application.start()
    return CookerApp(
        application=application,
        environment=environment,
        cooker_driver=cooker_driver,
        prompter_driver=prompter_driver,
        clock_driver=clock_driver,
        alert=alert,
        notify=notify,
        remote_turn_off=remote,
        turn_off=turn_off,
    )


__all__ = ["CookerApp", "DESIGN_SOURCE", "build_cooker_app"]
