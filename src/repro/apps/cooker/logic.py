"""Context and controller implementations of the cooker monitoring app.

These are the developer-written components of Figure 9: the runtime calls
them through the callbacks the design declares.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.api import Context, Controller


class AlertContext(Context):
    """Detects that the cooker has stayed on beyond a time threshold.

    Implements ``when provided tickSecond from Clock`` with the
    query-driven ``get consumption from Cooker``: each second it samples
    the cooker; after ``threshold_seconds`` of uninterrupted drawing it
    publishes the overrun duration (an Integer, per the design) and
    re-arms after ``renotify_seconds`` so the user is not spammed.
    """

    def __init__(self, threshold_seconds: int = 1200,
                 renotify_seconds: int = 600):
        super().__init__()
        self.threshold_seconds = threshold_seconds
        self.renotify_seconds = renotify_seconds
        self.on_seconds = 0
        self._since_alert: Optional[int] = None

    def on_tick_second_from_clock(self, tick, discover) -> Optional[int]:
        cooker = discover.devices("Cooker").one()
        if cooker.consumption() <= 0:
            self.on_seconds = 0
            self._since_alert = None
            return None
        self.on_seconds += 1
        if self._since_alert is not None:
            self._since_alert += 1
            if self._since_alert < self.renotify_seconds:
                return None
            self._since_alert = 0
            return self.on_seconds
        if self.on_seconds >= self.threshold_seconds:
            self._since_alert = 0
            return self.on_seconds
        return None


class NotifyController(Controller):
    """Turns an alert into a question on the TV prompter."""

    QUESTION = (
        "The cooker has been on for {minutes} minutes. Turn it off?"
    )

    def __init__(self):
        super().__init__()
        self._question_ids = itertools.count(1)
        self.asked: List[str] = []

    def on_alert(self, on_seconds: int, discover) -> None:
        question_id = f"q{next(self._question_ids)}"
        question = self.QUESTION.format(minutes=on_seconds // 60)
        self.asked.append(question_id)
        discover.devices("TVPrompter").act(
            "askQuestion", question=question, questionId=question_id
        )


class RemoteTurnOffContext(Context):
    """Interprets the user's answer; publishes True when the cooker must
    be turned off.

    Per the paper: "queries the current consumption level from the Cooker
    to ensure that the cooker is still on before turning it off, if the
    user's response instructed such action".
    """

    YES_ANSWERS = frozenset({"yes", "y", "ok", "turn off", "off"})

    def on_answer_from_tv_prompter(self, event, discover) -> Optional[bool]:
        if event.value.strip().lower() not in self.YES_ANSWERS:
            return None
        cooker = discover.devices("Cooker").one()
        if cooker.consumption() <= 0:
            return None  # already off; nothing to do
        return True


class TurnOffController(Controller):
    """Issues the ``off`` action on the cooker."""

    def __init__(self):
        super().__init__()
        self.turn_offs = 0

    def on_remote_turn_off(self, confirmed: bool, discover) -> None:
        if confirmed:
            self.turn_offs += 1
            discover.devices("Cooker").act("Off")
