"""DiaSpec design of the cooker monitoring application (Figures 3, 5, 7).

The application "ensures the home safety for older adults by detecting
when the cooker stays on beyond a time threshold and notifies the user.
If this situation occurs, the user may decide to turn off the cooker
remotely through a dedicated TV prompter" (Section II).

Two functional chains:

1. ``Clock.tickSecond`` → ``Alert`` (queries ``Cooker.consumption``) →
   ``Notify`` → ``TVPrompter.askQuestion``;
2. ``TVPrompter.answer`` → ``RemoteTurnOff`` (queries the cooker again) →
   ``TurnOff`` → ``Cooker.off``.
"""

from __future__ import annotations

from repro.sema.analyzer import AnalyzedSpec, analyze

DESIGN_SOURCE = """\
device Clock {
    source tickSecond as Integer;
    source tickMinute as Integer;
    source tickHour as Integer;
}

device Cooker {
    source consumption as Float;
    action On;
    action Off;
}

device TVPrompter {
    source answer as String indexed by questionId as String;
    action askQuestion(question as String, questionId as String);
}

context Alert as Integer {
    when provided tickSecond from Clock
    get consumption from Cooker
    maybe publish;
}

controller Notify {
    when provided Alert
    do askQuestion on TVPrompter;
}

context RemoteTurnOff as Boolean {
    when provided answer from TVPrompter
    get consumption from Cooker
    maybe publish;
}

controller TurnOff {
    when provided RemoteTurnOff
    do Off on Cooker;
}
"""

_DESIGN: AnalyzedSpec = None


def get_design() -> AnalyzedSpec:
    """Analyzed design, cached per process."""
    global _DESIGN
    if _DESIGN is None:
        _DESIGN = analyze(DESIGN_SOURCE)
    return _DESIGN
