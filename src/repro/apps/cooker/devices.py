"""Simulated devices of the cooker monitoring application.

The cooker senses/acts on a :class:`~repro.simulation.environment.HomeEnvironment`;
the TV prompter records questions and lets a (simulated or scripted) user
answer them, pushing the indexed ``answer`` source of Figure 5.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from repro.api import DeviceDriver
from repro.simulation.environment import HomeEnvironment


class CookerDriver(DeviceDriver):
    """Driver for the ``Cooker`` device over the home environment."""

    def __init__(self, environment: HomeEnvironment):
        self.environment = environment

    def read_consumption(self) -> float:
        return self.environment.consumption()

    def do_on(self) -> None:
        self.environment.set_cooker(True)

    def do_off(self) -> None:
        self.environment.set_cooker(False)


class TVPrompterDriver(DeviceDriver):
    """Driver for the ``TVPrompter`` device.

    ``askQuestion`` displays a prompt; :meth:`answer` is how the (human or
    scripted) user responds, producing an event on the indexed ``answer``
    source, matched to its question by ``questionId`` (Section III).
    """

    def __init__(self):
        self.displayed: List[Tuple[str, str]] = []  # (questionId, text)
        self._answers: List[Tuple[str, str]] = []
        self._counter = itertools.count(1)

    # -- facets ------------------------------------------------------------

    def do_ask_question(self, question: str, question_id: str) -> None:
        self.displayed.append((question_id, question))

    def read_answer(self) -> str:
        """Query-driven access returns the most recent answer."""
        return self._answers[-1][1] if self._answers else ""

    # -- user side -----------------------------------------------------------

    def answer(self, text: str, question_id: Optional[str] = None) -> None:
        """Simulate the user answering the (latest) displayed question."""
        if question_id is None:
            if not self.displayed:
                raise ValueError("no question is displayed")
            question_id = self.displayed[-1][0]
        self._answers.append((question_id, text))
        self.push("answer", text, index=question_id)

    @property
    def pending_questions(self) -> List[Tuple[str, str]]:
        answered = {question_id for question_id, __ in self._answers}
        return [
            (question_id, text)
            for question_id, text in self.displayed
            if question_id not in answered
        ]

    def next_question_id(self) -> str:
        return f"q{next(self._counter)}"
