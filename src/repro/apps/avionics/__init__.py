"""Automated pilot: the avionics case study the paper cites as [9]."""

from repro.apps.avionics.app import AvionicsApp, build_avionics_app
from repro.apps.avionics.design import DESIGN_SOURCE, get_design
from repro.apps.avionics.devices import (
    AileronDriver,
    AirspeedSensorDriver,
    AltimeterDriver,
    AnnunciatorDriver,
    ElevatorDriver,
    FlightControlPanelDriver,
    HeadingSensorDriver,
    ThrottleDriver,
)
from repro.apps.avionics.logic import (
    PID,
    AileronControllerImpl,
    AirspeedHoldContext,
    AlarmControllerImpl,
    AltitudeHoldContext,
    ElevatorControllerImpl,
    EnvelopeProtectionContext,
    HeadingHoldContext,
    ThrottleControllerImpl,
)

__all__ = [
    "AileronControllerImpl",
    "AileronDriver",
    "AirspeedHoldContext",
    "AirspeedSensorDriver",
    "AlarmControllerImpl",
    "AltimeterDriver",
    "AltitudeHoldContext",
    "AnnunciatorDriver",
    "AvionicsApp",
    "DESIGN_SOURCE",
    "ElevatorControllerImpl",
    "ElevatorDriver",
    "EnvelopeProtectionContext",
    "FlightControlPanelDriver",
    "HeadingHoldContext",
    "HeadingSensorDriver",
    "PID",
    "ThrottleControllerImpl",
    "ThrottleDriver",
    "build_avionics_app",
    "get_design",
]
