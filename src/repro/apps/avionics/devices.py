"""Simulated avionics devices over the flight-dynamics environment."""

from __future__ import annotations

from typing import List

from repro.api import DeviceDriver
from repro.simulation.environment import FlightEnvironment


class AltimeterDriver(DeviceDriver):
    def __init__(self, environment: FlightEnvironment):
        self.environment = environment

    def read_altitude(self) -> float:
        return self.environment.altitude


class AirspeedSensorDriver(DeviceDriver):
    def __init__(self, environment: FlightEnvironment):
        self.environment = environment

    def read_airspeed(self) -> float:
        return self.environment.airspeed


class HeadingSensorDriver(DeviceDriver):
    def __init__(self, environment: FlightEnvironment):
        self.environment = environment

    def read_heading(self) -> float:
        return self.environment.heading


class FlightControlPanelDriver(DeviceDriver):
    """The pilot's target selections; mutate to command the autopilot."""

    def __init__(
        self,
        target_altitude: float = 1000.0,
        target_heading: float = 0.0,
        target_airspeed: float = 120.0,
    ):
        self.target_altitude = target_altitude
        self.target_heading = target_heading
        self.target_airspeed = target_airspeed

    def read_target_altitude(self) -> float:
        return self.target_altitude

    def read_target_heading(self) -> float:
        return self.target_heading

    def read_target_airspeed(self) -> float:
        return self.target_airspeed


class ElevatorDriver(DeviceDriver):
    def __init__(self, environment: FlightEnvironment):
        self.environment = environment

    def do_set_position(self, value: float) -> None:
        self.environment.set_elevator(value)


class AileronDriver(DeviceDriver):
    def __init__(self, environment: FlightEnvironment):
        self.environment = environment

    def do_set_position(self, value: float) -> None:
        self.environment.set_aileron(value)


class ThrottleDriver(DeviceDriver):
    def __init__(self, environment: FlightEnvironment):
        self.environment = environment

    def do_set_level(self, value: float) -> None:
        self.environment.set_throttle(value)


class AnnunciatorDriver(DeviceDriver):
    """Cockpit warning display; records the warning history."""

    def __init__(self):
        self.warnings: List[str] = []

    def do_warn(self, message: str) -> None:
        self.warnings.append(message)
