"""Assembly of the automated-pilot application."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.apps.avionics.design import DESIGN_SOURCE, get_design
from repro.apps.avionics.devices import (
    AileronDriver,
    AirspeedSensorDriver,
    AltimeterDriver,
    AnnunciatorDriver,
    ElevatorDriver,
    FlightControlPanelDriver,
    HeadingSensorDriver,
    ThrottleDriver,
)
from repro.apps.avionics.logic import (
    AirspeedHoldContext,
    AlarmControllerImpl,
    AileronControllerImpl,
    AltitudeHoldContext,
    ElevatorControllerImpl,
    EnvelopeProtectionContext,
    HeadingHoldContext,
    ThrottleControllerImpl,
)
from repro.api import Application, RuntimeConfig, SimulationClock
from repro.simulation.environment import FlightEnvironment


@dataclass
class AvionicsApp:
    """A runnable autopilot with its simulated aircraft."""

    application: Application
    environment: FlightEnvironment
    panel: FlightControlPanelDriver
    annunciator: AnnunciatorDriver
    altitude_hold: AltitudeHoldContext
    heading_hold: HeadingHoldContext
    airspeed_hold: AirspeedHoldContext
    envelope: EnvelopeProtectionContext
    alarms: AlarmControllerImpl

    def advance(self, seconds: float) -> int:
        return self.application.advance(seconds)

    def command(
        self,
        altitude: Optional[float] = None,
        heading: Optional[float] = None,
        airspeed: Optional[float] = None,
    ) -> None:
        """Dial new targets into the flight control panel."""
        if altitude is not None:
            self.panel.target_altitude = altitude
        if heading is not None:
            self.panel.target_heading = heading
        if airspeed is not None:
            self.panel.target_airspeed = airspeed


def build_avionics_app(
    clock: Optional[SimulationClock] = None,
    environment: Optional[FlightEnvironment] = None,
    start: bool = True,
) -> AvionicsApp:
    """Build (and by default start) the automated pilot."""
    clock = clock or SimulationClock()
    environment = environment or FlightEnvironment(step_seconds=1.0)
    application = Application(
        get_design(), RuntimeConfig(clock=clock, name="AutomatedPilot")
    )

    altitude_hold = AltitudeHoldContext()
    heading_hold = HeadingHoldContext()
    airspeed_hold = AirspeedHoldContext()
    envelope = EnvelopeProtectionContext()
    alarms = AlarmControllerImpl()
    application.implement("AltitudeHold", altitude_hold)
    application.implement("HeadingHold", heading_hold)
    application.implement("AirspeedHold", airspeed_hold)
    application.implement("EnvelopeProtection", envelope)
    application.implement("ElevatorController", ElevatorControllerImpl())
    application.implement("AileronController", AileronControllerImpl())
    application.implement("ThrottleController", ThrottleControllerImpl())
    application.implement("AlarmController", alarms)

    panel = FlightControlPanelDriver(
        target_altitude=environment.altitude,
        target_heading=environment.heading,
        target_airspeed=environment.airspeed,
    )
    annunciator = AnnunciatorDriver()
    application.create_device("Altimeter", "alt-1", AltimeterDriver(environment))
    application.create_device(
        "AirspeedSensor", "ias-1", AirspeedSensorDriver(environment)
    )
    application.create_device(
        "HeadingSensor", "hdg-1", HeadingSensorDriver(environment)
    )
    application.create_device("FlightControlPanel", "fcp-1", panel)
    application.create_device("Elevator", "elev-1", ElevatorDriver(environment))
    application.create_device("Aileron", "ail-1", AileronDriver(environment))
    application.create_device("Throttle", "thr-1", ThrottleDriver(environment))
    application.create_device("Annunciator", "ann-1", annunciator)

    environment.attach(clock)
    if start:
        application.start()
    return AvionicsApp(
        application=application,
        environment=environment,
        panel=panel,
        annunciator=annunciator,
        altitude_hold=altitude_hold,
        heading_hold=heading_hold,
        airspeed_hold=airspeed_hold,
        envelope=envelope,
        alarms=alarms,
    )


__all__ = ["AvionicsApp", "DESIGN_SOURCE", "build_avionics_app"]
