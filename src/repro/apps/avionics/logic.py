"""Autopilot contexts and controllers.

The hold contexts are classical PID loops closed through the SCC chain:
sensor → context (compute the command) → controller (actuate the surface).
"""

from __future__ import annotations

from typing import List, Optional

from repro.api import Context, Controller


class PID:
    """Textbook PID with output clamping and anti-windup."""

    def __init__(
        self,
        kp: float,
        ki: float = 0.0,
        kd: float = 0.0,
        output_limit: float = 1.0,
        dt: float = 1.0,
    ):
        if output_limit <= 0:
            raise ValueError("output_limit must be > 0")
        self.kp, self.ki, self.kd = kp, ki, kd
        self.output_limit = output_limit
        self.dt = dt
        self._integral = 0.0
        self._previous_error: Optional[float] = None

    def step(self, error: float) -> float:
        derivative = 0.0
        if self._previous_error is not None:
            derivative = (error - self._previous_error) / self.dt
        self._previous_error = error
        candidate = (
            self.kp * error + self.ki * self._integral + self.kd * derivative
        )
        if abs(candidate) < self.output_limit:
            # Anti-windup: only integrate while unsaturated.
            self._integral += error * self.dt
        output = (
            self.kp * error + self.ki * self._integral + self.kd * derivative
        )
        return max(-self.output_limit, min(self.output_limit, output))

    def reset(self) -> None:
        self._integral = 0.0
        self._previous_error = None


def _mean_reading(readings: List) -> Optional[float]:
    """Average the sweep's sensor values (replicated sensors vote)."""
    if not readings:
        return None
    return sum(reading.value for reading in readings) / len(readings)


class AltitudeHoldContext(Context):
    """Publishes the elevator command holding the target altitude."""

    def __init__(self, kp=0.02, ki=0.0005, kd=0.08):
        super().__init__()
        self.pid = PID(kp, ki, kd, output_limit=1.0)

    def on_periodic_altitude(self, altitude_readings, discover):
        altitude = _mean_reading(altitude_readings)
        if altitude is None:
            return 0.0
        panel = discover.devices("FlightControlPanel").one()
        error = panel.target_altitude() - altitude
        return self.pid.step(error)


class HeadingHoldContext(Context):
    """Publishes the aileron command holding the target heading."""

    def __init__(self, kp=0.05, ki=0.0, kd=0.1):
        super().__init__()
        self.pid = PID(kp, ki, kd, output_limit=1.0)

    def on_periodic_heading(self, heading_readings, discover):
        heading = _mean_reading(heading_readings)
        if heading is None:
            return 0.0
        panel = discover.devices("FlightControlPanel").one()
        error = (panel.target_heading() - heading + 180.0) % 360.0 - 180.0
        return self.pid.step(error)


class AirspeedHoldContext(Context):
    """Publishes the throttle level holding the target airspeed."""

    def __init__(self, kp=0.01, ki=0.002, kd=0.0):
        super().__init__()
        self.pid = PID(kp, ki, kd, output_limit=0.5)

    def on_periodic_airspeed(self, airspeed_readings, discover):
        airspeed = _mean_reading(airspeed_readings)
        if airspeed is None:
            return 0.5
        panel = discover.devices("FlightControlPanel").one()
        error = panel.target_airspeed() - airspeed
        # Command around a 0.5 cruise setting.
        return max(0.0, min(1.0, 0.5 + self.pid.step(error)))


class EnvelopeProtectionContext(Context):
    """Warns when the aircraft leaves the safe flight envelope."""

    def __init__(
        self,
        stall_speed: float = 60.0,
        overspeed: float = 240.0,
        ceiling: float = 12000.0,
        floor: float = 150.0,
    ):
        super().__init__()
        self.stall_speed = stall_speed
        self.overspeed = overspeed
        self.ceiling = ceiling
        self.floor = floor
        self._active: Optional[str] = None

    def on_periodic_airspeed(self, airspeed_readings, discover):
        airspeed = _mean_reading(airspeed_readings)
        if airspeed is None:
            return None
        # Average across replicated altimeters (sensor voting).
        altitudes = [
            proxy.altitude() for proxy in discover.devices("Altimeter")
        ]
        if not altitudes:
            return None
        altitude = sum(altitudes) / len(altitudes)
        condition = self._classify(airspeed, altitude)
        if condition == self._active:
            return None  # edge-triggered: one warning per condition episode
        self._active = condition
        if condition is None:
            return None
        return (
            f"{condition}: airspeed {airspeed:.0f} m/s, "
            f"altitude {altitude:.0f} m"
        )

    def _classify(self, airspeed: float, altitude: float) -> Optional[str]:
        if airspeed < self.stall_speed:
            return "STALL"
        if airspeed > self.overspeed:
            return "OVERSPEED"
        if altitude > self.ceiling:
            return "CEILING"
        if altitude < self.floor:
            return "TERRAIN"
        return None


class ElevatorControllerImpl(Controller):
    def on_altitude_hold(self, command: float, discover) -> None:
        discover.devices("Elevator").act("setPosition", value=command)


class AileronControllerImpl(Controller):
    def on_heading_hold(self, command: float, discover) -> None:
        discover.devices("Aileron").act("setPosition", value=command)


class ThrottleControllerImpl(Controller):
    def on_airspeed_hold(self, level: float, discover) -> None:
        discover.devices("Throttle").act("setLevel", value=level)


class AlarmControllerImpl(Controller):
    def __init__(self):
        super().__init__()
        self.warnings: List[str] = []

    def on_envelope_protection(self, message: str, discover) -> None:
        self.warnings.append(message)
        discover.devices("Annunciator").act("warn", message=message)
