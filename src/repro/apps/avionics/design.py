"""DiaSpec design of the automated-pilot case study.

The paper cites an "automated pilot in avionics" [9] as one end of the
scale spectrum; this design reconstructs it as an SCC application: flight
sensors feed hold contexts (altitude, heading, airspeed) whose outputs
drive the control surfaces, plus an envelope-protection context that
raises annunciator warnings.  A small number of entities, tight periods —
small-scale orchestration with hard structure, the opposite corner of the
continuum from the parking system.
"""

from __future__ import annotations

from repro.sema.analyzer import AnalyzedSpec, analyze

DESIGN_SOURCE = """\
device Altimeter {
    source altitude as Float;
}

device AirspeedSensor {
    source airspeed as Float;
}

device HeadingSensor {
    source heading as Float;
}

device FlightControlPanel {
    source targetAltitude as Float;
    source targetHeading as Float;
    source targetAirspeed as Float;
}

device Elevator {
    action setPosition(value as Float);
}

device Aileron {
    action setPosition(value as Float);
}

device Throttle {
    action setLevel(value as Float);
}

device Annunciator {
    action warn(message as String);
}

context AltitudeHold as Float {
    when periodic altitude from Altimeter <1 s>
    get targetAltitude from FlightControlPanel
    always publish;
}

context HeadingHold as Float {
    when periodic heading from HeadingSensor <1 s>
    get targetHeading from FlightControlPanel
    always publish;
}

context AirspeedHold as Float {
    when periodic airspeed from AirspeedSensor <1 s>
    get targetAirspeed from FlightControlPanel
    always publish;
}

context EnvelopeProtection as String {
    when periodic airspeed from AirspeedSensor <1 s>
    get altitude from Altimeter
    maybe publish;
}

controller ElevatorController {
    when provided AltitudeHold
    do setPosition on Elevator;
}

controller AileronController {
    when provided HeadingHold
    do setPosition on Aileron;
}

controller ThrottleController {
    when provided AirspeedHold
    do setLevel on Throttle;
}

controller AlarmController {
    when provided EnvelopeProtection
    do warn on Annunciator;
}
"""

_DESIGN: AnalyzedSpec = None


def get_design() -> AnalyzedSpec:
    """Analyzed design, cached per process."""
    global _DESIGN
    if _DESIGN is None:
        _DESIGN = analyze(DESIGN_SOURCE)
    return _DESIGN
