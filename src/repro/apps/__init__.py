"""Case-study applications across the orchestration scale continuum.

The paper grounds its approach in applications "ranging from an automated
pilot in avionics, to an assisted living platform for the home of seniors,
to a parking management system in a smart city" (Section I), and works
through two of them in detail.  Each subpackage bundles the DiaSpec
design, the context/controller implementations written against the
runtime, the simulated devices, and a builder that assembles a runnable
application:

* :mod:`repro.apps.cooker` — cooker monitoring (small scale; Figures 3, 5,
  7, 9);
* :mod:`repro.apps.parking` — city parking management (large scale;
  Figures 4, 6, 8, 10, 11);
* :mod:`repro.apps.avionics` — automated pilot (cited case study [9]);
* :mod:`repro.apps.homeassist` — assisted living (cited case study [10]).
"""

__all__ = ["avionics", "cooker", "homeassist", "parking"]
