"""Parking management: the paper's large-scale application (Figures 4, 6, 8, 10, 11)."""

from repro.apps.parking.app import (
    PAPER_CAPACITIES,
    ParkingApp,
    build_parking_app,
)
from repro.apps.parking.design import (
    DESIGN_SOURCE,
    PAPER_ENTRANCES,
    PAPER_LOTS,
    get_design,
    make_design_source,
)
from repro.apps.parking.devices import (
    DisplayPanelDriver,
    MessengerDriver,
    PresenceSensorDriver,
    deploy_sensors,
)
from repro.apps.parking.logic import (
    AverageOccupancyContext,
    CityEntrancePanelController,
    MessengerController,
    ParkingAvailabilityContext,
    ParkingEntrancePanelController,
    ParkingSuggestionContext,
    ParkingUsagePatternContext,
    default_implementations,
)

__all__ = [
    "AverageOccupancyContext",
    "CityEntrancePanelController",
    "DESIGN_SOURCE",
    "DisplayPanelDriver",
    "MessengerController",
    "MessengerDriver",
    "PAPER_CAPACITIES",
    "PAPER_ENTRANCES",
    "PAPER_LOTS",
    "ParkingApp",
    "ParkingAvailabilityContext",
    "ParkingEntrancePanelController",
    "ParkingSuggestionContext",
    "ParkingUsagePatternContext",
    "PresenceSensorDriver",
    "build_parking_app",
    "default_implementations",
    "deploy_sensors",
    "get_design",
    "make_design_source",
]
