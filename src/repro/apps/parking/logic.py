"""Context and controller implementations of the parking management app.

``ParkingAvailabilityContext`` is the Figure 10 component: its Map phase
emits a pair per *free* space, its Reduce phase sums them, and its
periodic callback wraps the per-lot counts into ``Availability`` records.
``ParkingEntrancePanelController`` is Figure 11, filtering discovered
panels by their ``location`` attribute.
"""

from __future__ import annotations

from typing import Dict, List

from repro.api import Context, Controller, MapReduce


class ParkingAvailabilityContext(Context, MapReduce):
    """Tracks the number of available spaces per lot (Figures 8 and 10).

    Counting is written in combinable form — map emits ``1`` per free
    space and both combine and reduce sum — so the executors collapse
    each map chunk to one partial count per lot before the shuffle.
    At city scale that moves O(lots) pairs instead of O(sensors).
    """

    def map(self, parking_lot, presence, collector) -> None:
        if not presence:
            collector.emit_map(parking_lot, 1)

    def combine(self, parking_lot, counts, collector) -> None:
        collector.emit_combine(parking_lot, sum(counts))

    def reduce(self, parking_lot, counts, collector) -> None:
        collector.emit_reduce(parking_lot, sum(counts))

    def on_periodic_presence(self, free_by_lot: Dict[str, int], discover):
        # A fully occupied lot emits no Map pairs at all (Figure 10's map
        # only emits for free spaces), so it is absent from the reduced
        # dict; enumerate deployed lots through discovery and report zero.
        deployed_lots = {
            proxy.parking_lot
            for proxy in discover.devices("PresenceSensor")
        }
        return [
            {"parkingLot": lot, "count": free_by_lot.get(lot, 0)}
            for lot in sorted(deployed_lots)
        ]


class ParkingUsagePatternContext(Context):
    """Maintains usage patterns per lot; served on demand (``when required``).

    The hourly ``no publish`` interaction refreshes an exponentially
    weighted occupancy average per lot; queries classify it into
    HIGH / MODERATE / LOW.
    """

    HIGH_THRESHOLD = 0.7
    MODERATE_THRESHOLD = 0.4

    def __init__(self, smoothing: float = 0.3):
        super().__init__()
        if not 0 < smoothing <= 1:
            raise ValueError("smoothing must be within (0, 1]")
        self.smoothing = smoothing
        self.average_occupancy: Dict[str, float] = {}

    def on_periodic_presence(self, presence_by_lot, discover) -> None:
        for lot, readings in presence_by_lot.items():
            if not readings:
                continue
            occupancy = sum(1 for taken in readings if taken) / len(readings)
            previous = self.average_occupancy.get(lot)
            if previous is None:
                self.average_occupancy[lot] = occupancy
            else:
                self.average_occupancy[lot] = (
                    self.smoothing * occupancy
                    + (1 - self.smoothing) * previous
                )
        return None

    def when_required(self, discover) -> List[dict]:
        return [
            {"parkingLot": lot, "level": self.classify(average)}
            for lot, average in sorted(self.average_occupancy.items())
        ]

    def classify(self, average: float) -> str:
        if average >= self.HIGH_THRESHOLD:
            return "HIGH"
        if average >= self.MODERATE_THRESHOLD:
            return "MODERATE"
        return "LOW"


class AverageOccupancyContext(Context):
    """Publishes per-lot occupancy averaged over the 24-hour window."""

    def on_periodic_presence(self, window_by_lot, discover):
        occupancies = []
        for lot, readings in sorted(window_by_lot.items()):
            if not readings:
                continue
            occupancy = sum(1 for taken in readings if taken) / len(readings)
            occupancies.append({"parkingLot": lot, "occupancy": occupancy})
        return occupancies


class ParkingSuggestionContext(Context):
    """Combines availability with usage patterns into ranked suggestions.

    Preference order: most free spaces first, with low-usage lots favored
    over chronically crowded ones (the paper: availability "combined"
    with "usage patterns of parking lots").
    """

    LEVEL_PENALTY = {"LOW": 0, "MODERATE": 8, "HIGH": 20}

    def __init__(self, max_suggestions: int = 3):
        super().__init__()
        self.max_suggestions = max_suggestions

    def on_parking_availability(self, availabilities, discover):
        patterns = {
            pattern.parkingLot: pattern.level
            for pattern in discover.context_value("ParkingUsagePattern")
        }
        scored = []
        for availability in availabilities:
            if availability.count <= 0:
                continue
            penalty = self.LEVEL_PENALTY.get(
                patterns.get(availability.parkingLot, "LOW"), 0
            )
            scored.append(
                (availability.count - penalty, availability.parkingLot)
            )
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [lot for __, lot in scored[: self.max_suggestions]]


class ParkingEntrancePanelController(Controller):
    """Refreshes each lot's entrance panel (Figure 11)."""

    @staticmethod
    def format_status(count: int) -> str:
        return f"FREE: {count}" if count > 0 else "FULL"

    def on_parking_availability(self, availabilities, discover) -> None:
        for availability in availabilities:
            panels = discover.devices("ParkingEntrancePanel").where(
                location=availability.parkingLot
            )
            panels.act(
                "update", status=self.format_status(availability.count)
            )


class CityEntrancePanelController(Controller):
    """Displays ranked suggestions on the city-entrance panels."""

    def on_parking_suggestion(self, suggested_lots, discover) -> None:
        status = (
            "Parking: " + " > ".join(suggested_lots)
            if suggested_lots
            else "Parking: none available"
        )
        discover.devices("CityEntrancePanel").act("update", status=status)


class MessengerController(Controller):
    """Sends the daily occupancy report to management."""

    def on_average_occupancy(self, occupancies, discover) -> None:
        report = "; ".join(
            f"{occupancy.parkingLot}={occupancy.occupancy:.1%}"
            for occupancy in occupancies
        )
        discover.devices("Messenger").act(
            "sendMessage", message=f"24h occupancy: {report}"
        )


def default_implementations() -> Dict[str, object]:
    """Fresh instances of every component, keyed by declaration name."""
    return {
        "ParkingAvailability": ParkingAvailabilityContext(),
        "ParkingUsagePattern": ParkingUsagePatternContext(),
        "AverageOccupancy": AverageOccupancyContext(),
        "ParkingSuggestion": ParkingSuggestionContext(),
        "ParkingEntrancePanelController": ParkingEntrancePanelController(),
        "CityEntrancePanelController": CityEntrancePanelController(),
        "MessengerController": MessengerController(),
    }
