"""Simulated devices of the parking management application."""

from __future__ import annotations

from typing import List, Tuple

from repro.api import DeviceDriver
from repro.simulation.environment import ParkingLotEnvironment


class PresenceSensorDriver(DeviceDriver):
    """One in-ground presence sensor: a (lot, space) probe into the city."""

    def __init__(self, environment: ParkingLotEnvironment, lot: str,
                 space: int):
        self.environment = environment
        self.lot = lot
        self.space = space

    def read_presence(self) -> bool:
        return self.environment.is_occupied(self.lot, self.space)


class DisplayPanelDriver(DeviceDriver):
    """A display panel (parking-entrance or city-entrance variant).

    Remembers the update history so experiments can assert on what
    drivers actually saw.
    """

    def __init__(self):
        self.status: str = ""
        self.history: List[str] = []

    def do_update(self, status: str) -> None:
        self.status = status
        self.history.append(status)


class MessengerDriver(DeviceDriver):
    """Management messaging endpoint (daily occupancy reports)."""

    def __init__(self):
        self.messages: List[str] = []

    def do_send_message(self, message: str) -> None:
        self.messages.append(message)


def deploy_sensors(
    application,
    environment: ParkingLotEnvironment,
) -> List[Tuple[str, PresenceSensorDriver]]:
    """Bind one presence sensor per space of every lot.

    Returns ``(entity_id, driver)`` pairs in deployment order.
    """
    deployed = []
    for lot, capacity in sorted(environment.lots.items()):
        for space in range(capacity):
            driver = PresenceSensorDriver(environment, lot, space)
            entity_id = f"sensor-{lot}-{space:04d}"
            application.create_device(
                "PresenceSensor", entity_id, driver, parkingLot=lot
            )
            deployed.append((entity_id, driver))
    return deployed
