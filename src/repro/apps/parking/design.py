"""DiaSpec design of the parking management application (Figures 4, 6, 8).

The design is parametric in the city's layout: the paper's enumeration
``ParkingLotEnum { A22, B16, D6, ... }`` is generated from the deployed
lots, and gathering periods can be scaled for experiments (the paper's
values — 10 minutes, 1 hour, 24 hours — are the defaults).  Everything
else follows Figure 8 line by line.
"""

from __future__ import annotations

import functools
from typing import Sequence, Tuple

from repro.sema.analyzer import AnalyzedSpec, analyze

PAPER_LOTS: Tuple[str, ...] = ("A22", "B16", "D6")
PAPER_ENTRANCES: Tuple[str, ...] = ("NORTH_EAST_14Y", "SOUTH_EAST_1A")

_TEMPLATE = """\
device PresenceSensor {{
    attribute parkingLot as ParkingLotEnum;
    source presence as Boolean;
}}

device DisplayPanel {{
    action update(status as String);
}}

device ParkingEntrancePanel extends DisplayPanel {{
    attribute location as ParkingLotEnum;
}}

device CityEntrancePanel extends DisplayPanel {{
    attribute location as CityEntranceEnum;
}}

device Messenger {{
    action sendMessage(message as String);
}}

enumeration ParkingLotEnum {{ {lots} }}

enumeration CityEntranceEnum {{ {entrances} }}

context ParkingAvailability as Availability[] {{
    when periodic presence from PresenceSensor <{availability_period}>
    grouped by parkingLot
    with map as Boolean reduce as Integer
    always publish;
}}

context ParkingUsagePattern as UsagePattern[] {{
    when periodic presence from PresenceSensor <{usage_period}>
    grouped by parkingLot
    no publish;

    when required;
}}

context AverageOccupancy as ParkingOccupancy[] {{
    when periodic presence from PresenceSensor <{availability_period}>
    grouped by parkingLot every <{occupancy_window}>
    always publish;
}}

context ParkingSuggestion as ParkingLotEnum[] {{
    when provided ParkingAvailability
    get ParkingUsagePattern
    always publish;
}}

controller ParkingEntrancePanelController {{
    when provided ParkingAvailability
    do update on ParkingEntrancePanel;
}}

controller CityEntrancePanelController {{
    when provided ParkingSuggestion
    do update on CityEntrancePanel;
}}

controller MessengerController {{
    when provided AverageOccupancy
    do sendMessage on Messenger;
}}

structure Availability {{
    parkingLot as ParkingLotEnum;
    count as Integer;
}}

structure UsagePattern {{
    parkingLot as ParkingLotEnum;
    level as UsagePatternEnum;
}}

structure ParkingOccupancy {{
    parkingLot as ParkingLotEnum;
    occupancy as Float;
}}

enumeration UsagePatternEnum {{ HIGH, MODERATE, LOW }}
"""


def make_design_source(
    lots: Sequence[str] = PAPER_LOTS,
    entrances: Sequence[str] = PAPER_ENTRANCES,
    availability_period: str = "10 min",
    usage_period: str = "1 hr",
    occupancy_window: str = "24 hr",
) -> str:
    """Render the DiaSpec text for a given city layout."""
    if not lots:
        raise ValueError("at least one parking lot is required")
    return _TEMPLATE.format(
        lots=", ".join(lots),
        entrances=", ".join(entrances),
        availability_period=availability_period,
        usage_period=usage_period,
        occupancy_window=occupancy_window,
    )


DESIGN_SOURCE = make_design_source()


@functools.lru_cache(maxsize=32)
def _analyze_cached(source: str) -> AnalyzedSpec:
    return analyze(source)


def get_design(
    lots: Sequence[str] = PAPER_LOTS,
    entrances: Sequence[str] = PAPER_ENTRANCES,
    availability_period: str = "10 min",
    usage_period: str = "1 hr",
    occupancy_window: str = "24 hr",
) -> AnalyzedSpec:
    """Analyzed design for a city layout (cached by rendered source)."""
    source = make_design_source(
        tuple(lots),
        tuple(entrances),
        availability_period,
        usage_period,
        occupancy_window,
    )
    return _analyze_cached(source)
