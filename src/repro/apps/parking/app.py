"""Assembly of the parking management application at any scale."""

from __future__ import annotations

import json
import weakref
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.apps.parking.design import PAPER_ENTRANCES, get_design
from repro.apps.parking.devices import (
    DisplayPanelDriver,
    MessengerDriver,
    PresenceSensorDriver,
    deploy_sensors,
)
from repro.apps.parking.logic import default_implementations
from repro.api import (
    Application,
    DriverCatalog,
    RuntimeConfig,
    ShardBootstrap,
    ShardConfig,
    ShardedRuntime,
    SimulationClock,
    load_descriptor,
)
from repro.simulation.environment import ParkingLotEnvironment

PAPER_CAPACITIES: Dict[str, int] = {"A22": 40, "B16": 30, "D6": 50}


@dataclass
class ParkingApp:
    """A runnable parking-management deployment with its handles."""

    application: Application
    environment: ParkingLotEnvironment
    sensors: List = field(default_factory=list)
    entrance_panels: Dict[str, DisplayPanelDriver] = field(default_factory=dict)
    city_panels: Dict[str, DisplayPanelDriver] = field(default_factory=dict)
    messenger: MessengerDriver = None
    implementations: Dict[str, object] = field(default_factory=dict)

    def advance(self, seconds: float) -> int:
        return self.application.advance(seconds)

    @property
    def sensor_count(self) -> int:
        return len(self.sensors)


def build_parking_app(
    capacities: Optional[Dict[str, int]] = None,
    entrances: Sequence[str] = PAPER_ENTRANCES,
    clock: Optional[SimulationClock] = None,
    availability_period: str = "10 min",
    usage_period: str = "1 hr",
    occupancy_window: str = "24 hr",
    environment_step_seconds: float = 60.0,
    mapreduce_executor=None,
    seed: int = 0,
    start: bool = True,
    extra_lots: Sequence[str] = (),
    config: Optional[RuntimeConfig] = None,
) -> ParkingApp:
    """Build (and by default start) the parking management application.

    ``capacities`` maps lot names to space counts; the paper's three lots
    are the default, and benchmarks pass hundreds of lots with thousands
    of sensors — the same design and implementations serve both, which is
    the continuum claim (Figure 1).

    ``config`` carries runtime policy (supervision, stale delivery,
    error policy...); its clock/executor/name are overridden by this
    function's own arguments so existing callers keep their semantics.
    """
    capacities = dict(capacities or PAPER_CAPACITIES)
    clock = clock or (config.clock if config else None) or SimulationClock()
    # ``extra_lots`` enter the design's enumeration (declared vocabulary)
    # without deploying sensors — they can be commissioned at runtime.
    design = get_design(
        lots=tuple(sorted(set(capacities) | set(extra_lots))),
        entrances=tuple(entrances),
        availability_period=availability_period,
        usage_period=usage_period,
        occupancy_window=occupancy_window,
    )
    environment = ParkingLotEnvironment(
        capacities, step_seconds=environment_step_seconds, seed=seed
    )
    base = config if config is not None else RuntimeConfig()
    config = base.replace(
        clock=clock,
        mapreduce_executor=(
            mapreduce_executor
            if mapreduce_executor is not None
            else base.mapreduce_executor
        ),
        name=base.name if base.name != "app" else "ParkingManagement",
    )
    application = Application(design, config)

    implementations = default_implementations()
    for name, implementation in implementations.items():
        application.implement(name, implementation)

    sensors = deploy_sensors(application, environment)
    entrance_panels: Dict[str, DisplayPanelDriver] = {}
    for lot in sorted(capacities):
        driver = DisplayPanelDriver()
        application.create_device(
            "ParkingEntrancePanel", f"panel-{lot}", driver, location=lot
        )
        entrance_panels[lot] = driver
    city_panels: Dict[str, DisplayPanelDriver] = {}
    for entrance in entrances:
        driver = DisplayPanelDriver()
        application.create_device(
            "CityEntrancePanel",
            f"city-panel-{entrance}",
            driver,
            location=entrance,
        )
        city_panels[entrance] = driver
    messenger = MessengerDriver()
    application.create_device("Messenger", "ops-messenger", messenger)

    environment.attach(clock)
    if start:
        application.start()
    return ParkingApp(
        application=application,
        environment=environment,
        sensors=sensors,
        entrance_panels=entrance_panels,
        city_panels=city_panels,
        messenger=messenger,
        implementations=implementations,
    )


# -- descriptor-driven sharded deployment ------------------------------------

# Per-process parking environment, keyed by the application it serves;
# dynamic rebinds need it to construct drivers inside a built worker.
_ENVIRONMENTS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def parking_catalog(environment: ParkingLotEnvironment) -> DriverCatalog:
    """The descriptor-side driver catalog of the parking application."""
    catalog = DriverCatalog()
    catalog.register(
        "presence",
        lambda lot, space: PresenceSensorDriver(environment, lot, space),
    )
    catalog.register("panel", DisplayPanelDriver)
    catalog.register("messenger", MessengerDriver)
    return catalog


def parking_descriptor(
    capacities: Optional[Dict[str, int]] = None,
    entrances: Sequence[str] = PAPER_ENTRANCES,
    shard: Optional[Dict[str, Any]] = None,
    name: str = "parking-city",
) -> Dict[str, Any]:
    """A JSON-compatible deployment descriptor for the parking fleet.

    One presence sensor per space, one entrance panel per lot, one city
    panel per entrance, one messenger.  ``shard`` (a dict of
    :class:`~repro.runtime.shard.ShardConfig` fields, e.g.
    ``{"workers": 4}``) becomes the descriptor's ``topology.shard``
    section — the switch that makes :func:`build_sharded_parking_app`
    run the deployment process-sharded.
    """
    capacities = dict(capacities or PAPER_CAPACITIES)
    entities: List[Dict[str, Any]] = [
        {
            "type": "PresenceSensor",
            "id": f"sensor-{lot}-{space:04d}",
            "driver": "presence",
            "attributes": {"parkingLot": lot},
            "config": {"lot": lot, "space": space},
        }
        for lot, capacity in sorted(capacities.items())
        for space in range(capacity)
    ]
    for lot in sorted(capacities):
        entities.append(
            {
                "type": "ParkingEntrancePanel",
                "id": f"panel-{lot}",
                "driver": "panel",
                "attributes": {"location": lot},
            }
        )
    for entrance in entrances:
        entities.append(
            {
                "type": "CityEntrancePanel",
                "id": f"city-panel-{entrance}",
                "driver": "panel",
                "attributes": {"location": entrance},
            }
        )
    entities.append(
        {"type": "Messenger", "id": "ops-messenger", "driver": "messenger"}
    )
    descriptor: Dict[str, Any] = {"name": name, "entities": entities}
    if shard is not None:
        descriptor["topology"] = {"shard": dict(shard)}
    return descriptor


@dataclass(frozen=True)
class ShardedParkingBootstrap(ShardBootstrap):
    """Picklable recipe building the parking app from a descriptor.

    Plain data (the descriptor's JSON text plus deterministic build
    parameters), so it pickles into spawned workers.  Every process
    rebuilds the same :class:`ParkingLotEnvironment` from
    ``(capacities, seed)`` and binds its slice of the sensor fleet;
    actuators (panels, messenger) bind where the context
    implementations actually fire — the coordinator, or the single
    process of an unsharded run.
    """

    descriptor_json: str
    capacities: Tuple[Tuple[str, int], ...]
    seed: int = 0
    availability_period: str = "10 min"
    usage_period: str = "1 hr"
    occupancy_window: str = "24 hr"
    environment_step_seconds: float = 60.0

    def fleet(self) -> List[str]:
        descriptor = load_descriptor(self.descriptor_json)
        return [
            record.entity_id
            for record in descriptor.entities
            if record.device_type == "PresenceSensor"
        ]

    def build(self, ctx) -> Application:
        descriptor = load_descriptor(self.descriptor_json)
        shard = descriptor.shard_config() or ShardConfig()
        capacities = dict(self.capacities)
        design = get_design(
            lots=tuple(sorted(capacities)),
            entrances=tuple(
                record.attributes["location"]
                for record in descriptor.entities
                if record.device_type == "CityEntrancePanel"
            ),
            availability_period=self.availability_period,
            usage_period=self.usage_period,
            occupancy_window=self.occupancy_window,
        )
        config = RuntimeConfig(
            clock=SimulationClock(),
            shard=shard,
            name=descriptor.name,
        )
        app = Application(design, config)
        for name, implementation in default_implementations().items():
            app.implement(name, implementation)
        environment = ParkingLotEnvironment(
            capacities,
            step_seconds=self.environment_step_seconds,
            seed=self.seed,
        )
        catalog = parking_catalog(environment)
        # The coordinator binds the whole registration record, not just
        # its (empty) shard: context implementations discover the fleet
        # at runtime (``discover.devices("PresenceSensor")``), and the
        # environment replica keeps any coordinator-side read identical
        # to the owning worker's.  Sweeps still run on the workers —
        # the gather delegate bypasses the coordinator's own read path.
        coordinator = ctx.index is None
        for record in descriptor.entities:
            if record.device_type == "PresenceSensor":
                if not (coordinator or ctx.owns(record.entity_id)):
                    continue
            elif not (coordinator or ctx.shards == 1):
                continue
            driver = catalog.create(record.driver, **record.config)
            app.create_device(
                record.device_type,
                record.entity_id,
                driver,
                **record.attributes,
            )
        environment.attach(app.clock)
        _ENVIRONMENTS[app] = environment
        return app

    def bind_entity(self, app: Application, entity_id: str, position: int):
        """Dynamic re-partitioning: bind one more sensor in-process.

        Sensor ids encode their probe — ``sensor-<lot>-<space>`` — so
        the driver rebuilds from the id against the process-local
        environment (the lot must be a declared one)."""
        environment = _ENVIRONMENTS[app]
        lot, space = entity_id[len("sensor-") :].rsplit("-", 1)
        driver = PresenceSensorDriver(environment, lot, int(space))
        app.create_device("PresenceSensor", entity_id, driver, parkingLot=lot)


def build_sharded_parking_app(
    descriptor_source: Union[str, Dict[str, Any]],
    seed: int = 0,
    start: bool = True,
) -> ShardedRuntime:
    """Build the parking deployment a descriptor describes, sharded when
    its topology says so.

    The descriptor's ``topology.shard`` section (see
    :func:`parking_descriptor`) selects the process-sharded runtime and
    its wire settings; without one the returned
    :class:`~repro.runtime.shard.ShardedRuntime` degrades to the
    single-process application, byte-identical to
    :func:`build_parking_app` with default config.
    """
    if isinstance(descriptor_source, str):
        descriptor_json = descriptor_source
    else:
        descriptor_json = json.dumps(descriptor_source)
    descriptor = load_descriptor(descriptor_json)
    capacities: Dict[str, int] = {}
    for record in descriptor.entities:
        if record.device_type == "PresenceSensor":
            lot = record.config["lot"]
            capacities[lot] = max(
                capacities.get(lot, 0), record.config["space"] + 1
            )
    bootstrap = ShardedParkingBootstrap(
        descriptor_json=descriptor_json,
        capacities=tuple(sorted(capacities.items())),
        seed=seed,
    )
    runtime = ShardedRuntime(
        bootstrap, shard=descriptor.shard_config() or ShardConfig()
    )
    if start:
        runtime.start()
    return runtime


__all__ = [
    "PAPER_CAPACITIES",
    "ParkingApp",
    "PresenceSensorDriver",
    "ShardedParkingBootstrap",
    "build_parking_app",
    "build_sharded_parking_app",
    "parking_catalog",
    "parking_descriptor",
]
