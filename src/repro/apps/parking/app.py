"""Assembly of the parking management application at any scale."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.apps.parking.design import PAPER_ENTRANCES, get_design
from repro.apps.parking.devices import (
    DisplayPanelDriver,
    MessengerDriver,
    PresenceSensorDriver,
    deploy_sensors,
)
from repro.apps.parking.logic import default_implementations
from repro.api import Application, RuntimeConfig, SimulationClock
from repro.simulation.environment import ParkingLotEnvironment

PAPER_CAPACITIES: Dict[str, int] = {"A22": 40, "B16": 30, "D6": 50}


@dataclass
class ParkingApp:
    """A runnable parking-management deployment with its handles."""

    application: Application
    environment: ParkingLotEnvironment
    sensors: List = field(default_factory=list)
    entrance_panels: Dict[str, DisplayPanelDriver] = field(default_factory=dict)
    city_panels: Dict[str, DisplayPanelDriver] = field(default_factory=dict)
    messenger: MessengerDriver = None
    implementations: Dict[str, object] = field(default_factory=dict)

    def advance(self, seconds: float) -> int:
        return self.application.advance(seconds)

    @property
    def sensor_count(self) -> int:
        return len(self.sensors)


def build_parking_app(
    capacities: Optional[Dict[str, int]] = None,
    entrances: Sequence[str] = PAPER_ENTRANCES,
    clock: Optional[SimulationClock] = None,
    availability_period: str = "10 min",
    usage_period: str = "1 hr",
    occupancy_window: str = "24 hr",
    environment_step_seconds: float = 60.0,
    mapreduce_executor=None,
    seed: int = 0,
    start: bool = True,
    extra_lots: Sequence[str] = (),
    config: Optional[RuntimeConfig] = None,
) -> ParkingApp:
    """Build (and by default start) the parking management application.

    ``capacities`` maps lot names to space counts; the paper's three lots
    are the default, and benchmarks pass hundreds of lots with thousands
    of sensors — the same design and implementations serve both, which is
    the continuum claim (Figure 1).

    ``config`` carries runtime policy (supervision, stale delivery,
    error policy...); its clock/executor/name are overridden by this
    function's own arguments so existing callers keep their semantics.
    """
    capacities = dict(capacities or PAPER_CAPACITIES)
    clock = clock or (config.clock if config else None) or SimulationClock()
    # ``extra_lots`` enter the design's enumeration (declared vocabulary)
    # without deploying sensors — they can be commissioned at runtime.
    design = get_design(
        lots=tuple(sorted(set(capacities) | set(extra_lots))),
        entrances=tuple(entrances),
        availability_period=availability_period,
        usage_period=usage_period,
        occupancy_window=occupancy_window,
    )
    environment = ParkingLotEnvironment(
        capacities, step_seconds=environment_step_seconds, seed=seed
    )
    base = config if config is not None else RuntimeConfig()
    config = base.replace(
        clock=clock,
        mapreduce_executor=(
            mapreduce_executor
            if mapreduce_executor is not None
            else base.mapreduce_executor
        ),
        name=base.name if base.name != "app" else "ParkingManagement",
    )
    application = Application(design, config)

    implementations = default_implementations()
    for name, implementation in implementations.items():
        application.implement(name, implementation)

    sensors = deploy_sensors(application, environment)
    entrance_panels: Dict[str, DisplayPanelDriver] = {}
    for lot in sorted(capacities):
        driver = DisplayPanelDriver()
        application.create_device(
            "ParkingEntrancePanel", f"panel-{lot}", driver, location=lot
        )
        entrance_panels[lot] = driver
    city_panels: Dict[str, DisplayPanelDriver] = {}
    for entrance in entrances:
        driver = DisplayPanelDriver()
        application.create_device(
            "CityEntrancePanel",
            f"city-panel-{entrance}",
            driver,
            location=entrance,
        )
        city_panels[entrance] = driver
    messenger = MessengerDriver()
    application.create_device("Messenger", "ops-messenger", messenger)

    environment.attach(clock)
    if start:
        application.start()
    return ParkingApp(
        application=application,
        environment=environment,
        sensors=sensors,
        entrance_panels=entrance_panels,
        city_panels=city_panels,
        messenger=messenger,
        implementations=implementations,
    )


__all__ = [
    "PAPER_CAPACITIES",
    "ParkingApp",
    "PresenceSensorDriver",
    "build_parking_app",
]
