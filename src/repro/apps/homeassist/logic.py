"""Contexts and controllers of the assisted-living application."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api import Context, Controller

# Room names used by the HomeEnvironment simulation, mapped to RoomEnum.
ROOM_TO_ENUM = {
    "kitchen": "KITCHEN",
    "living_room": "LIVING_ROOM",
    "bedroom": "BEDROOM",
    "bathroom": "BATHROOM",
    "hallway": "HALLWAY",
}


class ActivityLevelContext(Context):
    """Per-room activity averages, served on demand (``when required``)."""

    def __init__(self, smoothing: float = 0.25):
        super().__init__()
        self.smoothing = smoothing
        self.levels: Dict[str, float] = {}

    def on_periodic_motion(self, motion_by_room, discover) -> None:
        for room, readings in motion_by_room.items():
            if not readings:
                continue
            activity = sum(1 for seen in readings if seen) / len(readings)
            previous = self.levels.get(room)
            self.levels[room] = (
                activity
                if previous is None
                else self.smoothing * activity
                + (1 - self.smoothing) * previous
            )
        return None

    def when_required(self, discover) -> List[dict]:
        return [
            {"room": room, "level": level}
            for room, level in sorted(self.levels.items())
        ]


class InactivityAlertContext(Context):
    """Publishes the silent-minutes count when the home goes quiet.

    Only waking hours count (falling asleep is not an emergency); each
    published value is the number of consecutive inactive minutes, and the
    alert re-fires with escalating counts while the silence lasts.
    """

    def __init__(
        self,
        threshold_minutes: int = 60,
        period_minutes: int = 10,
        waking_start_hour: float = 7.0,
        waking_end_hour: float = 22.0,
    ):
        super().__init__()
        self.threshold_minutes = threshold_minutes
        self.period_minutes = period_minutes
        self.waking_start_hour = waking_start_hour
        self.waking_end_hour = waking_end_hour
        self.inactive_minutes = 0

    def on_periodic_motion(self, motion_by_room, discover) -> Optional[int]:
        hour = (self.now() % 86400.0) / 3600.0
        if not self.waking_start_hour <= hour < self.waking_end_hour:
            self.inactive_minutes = 0
            return None
        any_motion = any(
            any(readings) for readings in motion_by_room.values()
        )
        if any_motion:
            self.inactive_minutes = 0
            return None
        self.inactive_minutes += self.period_minutes
        if self.inactive_minutes >= self.threshold_minutes:
            return self.inactive_minutes
        return None


class NightWanderingContext(Context):
    """Detects movement outside the bedroom during night hours."""

    def __init__(self, night_start_hour: float = 23.0,
                 night_end_hour: float = 6.0):
        super().__init__()
        self.night_start_hour = night_start_hour
        self.night_end_hour = night_end_hour

    def on_motion_from_motion_sensor(self, event, discover):
        if not event.value:
            return None
        hour = (event.timestamp % 86400.0) / 3600.0
        at_night = hour >= self.night_start_hour or hour < self.night_end_hour
        if not at_night:
            return None
        room = event.device.room
        if room == "BEDROOM":
            return None
        return room


class DoorLeftOpenContext(Context):
    """Publishes a door name once it has stayed open beyond a threshold."""

    def __init__(self, threshold_periods: int = 3):
        super().__init__()
        self.threshold_periods = threshold_periods
        self._open_counts: Dict[str, int] = {}
        self._alerted: Dict[str, bool] = {}

    def on_periodic_open(self, open_by_door, discover) -> Optional[str]:
        for door, readings in open_by_door.items():
            if readings and all(readings):
                self._open_counts[door] = self._open_counts.get(door, 0) + 1
            else:
                self._open_counts[door] = 0
                self._alerted[door] = False
        for door, count in sorted(self._open_counts.items()):
            if count >= self.threshold_periods and not self._alerted.get(door):
                self._alerted[door] = True
                return door
        return None


class CaregiverNotifierController(Controller):
    """Escalates alerts to the caregiver's notification service."""

    def __init__(self):
        super().__init__()
        self.notifications: List[tuple] = []

    def on_inactivity_alert(self, minutes: int, discover) -> None:
        level = "URGENT" if minutes >= 120 else "WARNING"
        message = f"No activity detected for {minutes} minutes"
        self.notifications.append((level, message))
        discover.devices("NotificationService").act(
            "notify", message=message, level=level
        )

    def on_door_left_open(self, door: str, discover) -> None:
        message = f"The {door} door has been left open"
        self.notifications.append(("WARNING", message))
        discover.devices("NotificationService").act(
            "notify", message=message, level="WARNING"
        )


class NightLightControllerImpl(Controller):
    """Turns on the lamp of the room where night movement was detected."""

    def __init__(self):
        super().__init__()
        self.lit_rooms: List[str] = []

    def on_night_wandering(self, room: str, discover) -> None:
        self.lit_rooms.append(room)
        discover.devices("Lamp").where(room=room).act("On")
