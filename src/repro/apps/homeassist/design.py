"""DiaSpec design of the assisted-living case study (HomeAssist [10]).

Monitors the daily routine of an older adult aging in place: motion
sensors per room feed an activity-level context (queried on demand by
other services), an inactivity-alert context that notifies caregivers
when no activity is seen during waking hours, and a night-wandering
context that lights the way and informs the caregiver.  Small-scale
orchestration like the cooker application, but exercising ``grouped by``
with a room attribute and the mixed publish disciplines of Figure 8.
"""

from __future__ import annotations

from repro.sema.analyzer import AnalyzedSpec, analyze

DESIGN_SOURCE = """\
device MotionSensor {
    attribute room as RoomEnum;
    source motion as Boolean;
}

device ContactSensor {
    attribute door as DoorEnum;
    source open as Boolean;
}

device Lamp {
    attribute room as RoomEnum;
    action On;
    action Off;
}

device NotificationService {
    action notify(message as String, level as LevelEnum);
}

enumeration RoomEnum { KITCHEN, LIVING_ROOM, BEDROOM, BATHROOM, HALLWAY }

enumeration DoorEnum { FRONT, BACK }

enumeration LevelEnum { INFO, WARNING, URGENT }

structure RoomActivity {
    room as RoomEnum;
    level as Float;
}

context ActivityLevel as RoomActivity[] {
    when periodic motion from MotionSensor <10 min>
    grouped by room
    no publish;

    when required;
}

context InactivityAlert as Integer {
    when periodic motion from MotionSensor <10 min>
    grouped by room
    maybe publish;
}

context NightWandering as RoomEnum {
    when provided motion from MotionSensor
    maybe publish;
}

context DoorLeftOpen as DoorEnum {
    when periodic open from ContactSensor <5 min>
    grouped by door
    maybe publish;
}

controller CaregiverNotifier {
    when provided InactivityAlert
    do notify on NotificationService;

    when provided DoorLeftOpen
    do notify on NotificationService;
}

controller NightLightController {
    when provided NightWandering
    do On on Lamp;
}
"""

_DESIGN: AnalyzedSpec = None


def get_design() -> AnalyzedSpec:
    """Analyzed design, cached per process."""
    global _DESIGN
    if _DESIGN is None:
        _DESIGN = analyze(DESIGN_SOURCE)
    return _DESIGN
