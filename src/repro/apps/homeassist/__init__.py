"""Assisted living: the HomeAssist case study the paper cites as [10]."""

from repro.apps.homeassist.app import (
    DESIGN_SOURCE,
    HomeAssistApp,
    build_homeassist_app,
)
from repro.apps.homeassist.design import get_design
from repro.apps.homeassist.devices import (
    ContactSensorDriver,
    LampDriver,
    MotionSensorDriver,
    NotificationServiceDriver,
    deploy_home,
)
from repro.apps.homeassist.logic import (
    ROOM_TO_ENUM,
    ActivityLevelContext,
    CaregiverNotifierController,
    DoorLeftOpenContext,
    InactivityAlertContext,
    NightLightControllerImpl,
    NightWanderingContext,
)

__all__ = [
    "ActivityLevelContext",
    "CaregiverNotifierController",
    "ContactSensorDriver",
    "DESIGN_SOURCE",
    "DoorLeftOpenContext",
    "HomeAssistApp",
    "InactivityAlertContext",
    "LampDriver",
    "MotionSensorDriver",
    "NightLightControllerImpl",
    "NightWanderingContext",
    "NotificationServiceDriver",
    "ROOM_TO_ENUM",
    "build_homeassist_app",
    "deploy_home",
    "get_design",
]
