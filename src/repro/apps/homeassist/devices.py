"""Simulated devices of the assisted-living application."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.apps.homeassist.logic import ROOM_TO_ENUM
from repro.api import Clock, DeviceDriver
from repro.simulation.environment import HomeEnvironment


class MotionSensorDriver(DeviceDriver):
    """PIR sensor for one room: reads presence and pushes rising edges.

    Supports all three delivery modes: ``read_motion`` serves query and
    periodic delivery, and once started it samples the room every
    ``sample_seconds`` and pushes an event on each motion onset.
    """

    def __init__(self, environment: HomeEnvironment, room: str,
                 sample_seconds: float = 30.0):
        self.environment = environment
        self.room = room
        self.sample_seconds = sample_seconds
        self._was_present = False
        self._job = None

    def read_motion(self) -> bool:
        return self.environment.presence(self.room)

    def start(self, clock: Clock) -> "MotionSensorDriver":
        self._job = clock.schedule_periodic(self.sample_seconds, self._sample)
        return self

    def stop(self) -> None:
        if self._job is not None:
            self._job.cancel()
            self._job = None

    def _sample(self) -> None:
        present = self.environment.presence(self.room)
        if present and not self._was_present:
            self.push("motion", True)
        self._was_present = present


class ContactSensorDriver(DeviceDriver):
    """Door contact sensor; the door state is set by the scenario."""

    def __init__(self):
        self.open = False

    def read_open(self) -> bool:
        return self.open

    def set_open(self, is_open: bool) -> None:
        if is_open != self.open:
            self.open = is_open
            self.push("open", is_open)


class LampDriver(DeviceDriver):
    def __init__(self):
        self.is_on = False
        self.switches: List[bool] = []

    def do_on(self) -> None:
        self.is_on = True
        self.switches.append(True)

    def do_off(self) -> None:
        self.is_on = False
        self.switches.append(False)


class NotificationServiceDriver(DeviceDriver):
    def __init__(self):
        self.sent: List[Tuple[str, str]] = []

    def do_notify(self, message: str, level: str) -> None:
        self.sent.append((level, message))


def deploy_home(
    application, environment: HomeEnvironment, clock: Clock
) -> Dict[str, MotionSensorDriver]:
    """Bind one motion sensor and one lamp per simulated room."""
    sensors: Dict[str, MotionSensorDriver] = {}
    for room, enum_value in sorted(ROOM_TO_ENUM.items()):
        sensor = MotionSensorDriver(environment, room)
        application.create_device(
            "MotionSensor", f"motion-{room}", sensor, room=enum_value
        )
        sensor.start(clock)
        sensors[enum_value] = sensor
        application.create_device(
            "Lamp", f"lamp-{room}", LampDriver(), room=enum_value
        )
    return sensors
