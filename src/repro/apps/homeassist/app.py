"""Assembly of the assisted-living application."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.apps.homeassist.design import DESIGN_SOURCE, get_design
from repro.apps.homeassist.devices import (
    ContactSensorDriver,
    LampDriver,
    MotionSensorDriver,
    NotificationServiceDriver,
    deploy_home,
)
from repro.apps.homeassist.logic import (
    ActivityLevelContext,
    CaregiverNotifierController,
    DoorLeftOpenContext,
    InactivityAlertContext,
    NightLightControllerImpl,
    NightWanderingContext,
)
from repro.api import Application, RuntimeConfig, SimulationClock
from repro.simulation.environment import HomeEnvironment


@dataclass
class HomeAssistApp:
    """A runnable assisted-living deployment with its handles."""

    application: Application
    environment: HomeEnvironment
    motion_sensors: Dict[str, MotionSensorDriver]
    front_door: ContactSensorDriver
    back_door: ContactSensorDriver
    notifications: NotificationServiceDriver
    activity: ActivityLevelContext
    inactivity: InactivityAlertContext
    wandering: NightWanderingContext
    door_watch: DoorLeftOpenContext
    caregiver: CaregiverNotifierController
    night_light: NightLightControllerImpl

    def advance(self, seconds: float) -> int:
        return self.application.advance(seconds)

    def lamp(self, room_enum: str) -> LampDriver:
        proxy = self.application.discover.devices("Lamp", room=room_enum).one()
        return proxy.instance.driver


def build_homeassist_app(
    clock: Optional[SimulationClock] = None,
    environment: Optional[HomeEnvironment] = None,
    inactivity_threshold_minutes: int = 60,
    start: bool = True,
) -> HomeAssistApp:
    """Build (and by default start) the assisted-living platform."""
    clock = clock or SimulationClock()
    environment = environment or HomeEnvironment(step_seconds=60.0)
    application = Application(
        get_design(), RuntimeConfig(clock=clock, name="HomeAssist")
    )

    activity = ActivityLevelContext()
    inactivity = InactivityAlertContext(
        threshold_minutes=inactivity_threshold_minutes
    )
    wandering = NightWanderingContext()
    door_watch = DoorLeftOpenContext()
    caregiver = CaregiverNotifierController()
    night_light = NightLightControllerImpl()
    application.implement("ActivityLevel", activity)
    application.implement("InactivityAlert", inactivity)
    application.implement("NightWandering", wandering)
    application.implement("DoorLeftOpen", door_watch)
    application.implement("CaregiverNotifier", caregiver)
    application.implement("NightLightController", night_light)

    motion_sensors = deploy_home(application, environment, clock)
    front_door = ContactSensorDriver()
    back_door = ContactSensorDriver()
    application.create_device("ContactSensor", "door-front", front_door,
                              door="FRONT")
    application.create_device("ContactSensor", "door-back", back_door,
                              door="BACK")
    notifications = NotificationServiceDriver()
    application.create_device(
        "NotificationService", "caregiver-phone", notifications
    )

    environment.attach(clock)
    if start:
        application.start()
    return HomeAssistApp(
        application=application,
        environment=environment,
        motion_sensors=motion_sensors,
        front_door=front_door,
        back_door=back_door,
        notifications=notifications,
        activity=activity,
        inactivity=inactivity,
        wandering=wandering,
        door_watch=door_watch,
        caregiver=caregiver,
        night_light=night_light,
    )


__all__ = ["DESIGN_SOURCE", "HomeAssistApp", "build_homeassist_app"]
