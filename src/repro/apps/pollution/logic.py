"""Contexts and controllers of the pollution-advisory application."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.api import Context, Controller


class TrafficLevelContext(Context):
    """Sums zone traffic through the MapReduce interface.

    The combine hook pre-sums each map chunk, so at most one partial sum
    per (chunk, zone) crosses the shuffle boundary.
    """

    def map(self, zone, vehicle_count, collector) -> None:
        collector.emit_map(zone, vehicle_count)

    def combine(self, zone, counts, collector) -> None:
        collector.emit_combine(zone, sum(counts))

    def reduce(self, zone, counts, collector) -> None:
        collector.emit_reduce(zone, sum(counts))

    def on_periodic_vehicle_count(self, vehicles_by_zone, discover):
        return [
            {"zone": zone, "vehicles": vehicles}
            for zone, vehicles in sorted(vehicles_by_zone.items())
        ]


class AirQualityContext(Context):
    """Maintains smoothed per-zone pollutant levels; served on demand.

    The periodic interaction refreshes PM10 from the grouped sweep and
    NO2 through query-driven reads of the same sensors (a source the
    design does not gather periodically) — both smoothed with an EWMA.
    """

    def __init__(self, smoothing: float = 0.4):
        super().__init__()
        self.smoothing = smoothing
        self.pm10: Dict[str, float] = {}
        self.no2: Dict[str, float] = {}

    def on_periodic_pm10(self, pm10_by_zone, discover) -> None:
        for zone, readings in pm10_by_zone.items():
            if not readings:
                continue
            level = sum(readings) / len(readings)
            self.pm10[zone] = self._blend(self.pm10.get(zone), level)
            sensors = discover.devices("PollutionSensor", zone=zone)
            no2_readings = [proxy.no2() for proxy in sensors]
            if no2_readings:
                no2 = sum(no2_readings) / len(no2_readings)
                self.no2[zone] = self._blend(self.no2.get(zone), no2)
        return None

    def _blend(self, previous: Optional[float], level: float) -> float:
        if previous is None:
            return level
        return self.smoothing * level + (1 - self.smoothing) * previous

    def when_required(self, discover) -> List[dict]:
        return [
            {
                "zone": zone,
                "pm10": self.pm10[zone],
                "no2": self.no2.get(zone, 0.0),
            }
            for zone in sorted(self.pm10)
        ]


class PollutionAdvisoryContext(Context):
    """Combines traffic with air quality into zone advisories."""

    def __init__(self, pm10_limit: float = 50.0, no2_limit: float = 40.0,
                 traffic_threshold: int = 500):
        super().__init__()
        self.pm10_limit = pm10_limit
        self.no2_limit = no2_limit
        self.traffic_threshold = traffic_threshold

    def on_traffic_level(self, zone_traffic, discover):
        air_by_zone = {
            record.zone: record
            for record in discover.context_value("AirQuality")
        }
        advisories: List[str] = []
        for traffic in zone_traffic:
            air = air_by_zone.get(traffic.zone)
            if air is None:
                continue
            problems = []
            if air.pm10 > self.pm10_limit:
                problems.append(f"PM10 {air.pm10:.0f}")
            if air.no2 > self.no2_limit:
                problems.append(f"NO2 {air.no2:.0f}")
            if not problems:
                continue
            cause = (
                " amid heavy traffic"
                if traffic.vehicles >= self.traffic_threshold
                else ""
            )
            advisories.append(
                f"{traffic.zone}: {' and '.join(problems)}{cause}"
            )
        return advisories or None


class ZonePanelControllerImpl(Controller):
    """Shows each zone its advisory (or an all-clear)."""

    ALL_CLEAR = "Air quality: OK"

    def on_pollution_advisory(self, advisories, discover) -> None:
        for panel in discover.devices("ZonePanel"):
            matching = [
                advisory
                for advisory in advisories
                if advisory.startswith(panel.zone + ":")
            ]
            status = matching[0] if matching else self.ALL_CLEAR
            panel.update(status=status)


class OperationsMessengerImpl(Controller):
    def on_pollution_advisory(self, advisories, discover) -> None:
        discover.devices("CityMessenger").act(
            "sendMessage",
            message="Pollution advisory: " + "; ".join(advisories),
        )


def default_implementations() -> Dict[str, object]:
    return {
        "TrafficLevel": TrafficLevelContext(),
        "AirQuality": AirQualityContext(),
        "PollutionAdvisory": PollutionAdvisoryContext(),
        "ZonePanelController": ZonePanelControllerImpl(),
        "OperationsMessenger": OperationsMessengerImpl(),
    }
