"""Pollution advisory: a second city-scale application over the shared
smart-city taxonomy (demonstrating §III taxonomy reuse at design level)."""

from repro.apps.pollution.app import (
    DEFAULT_ZONES,
    PollutionApp,
    PollutionSensorDriver,
    TrafficCounterDriver,
    build_pollution_app,
)
from repro.apps.pollution.design import (
    APP_FRAGMENT,
    DESIGN_SOURCE,
    get_design,
)
from repro.apps.pollution.environment import CityAirEnvironment
from repro.apps.pollution.logic import (
    AirQualityContext,
    OperationsMessengerImpl,
    PollutionAdvisoryContext,
    TrafficLevelContext,
    ZonePanelControllerImpl,
    default_implementations,
)

__all__ = [
    "APP_FRAGMENT",
    "AirQualityContext",
    "CityAirEnvironment",
    "DEFAULT_ZONES",
    "DESIGN_SOURCE",
    "OperationsMessengerImpl",
    "PollutionAdvisoryContext",
    "PollutionApp",
    "PollutionSensorDriver",
    "TrafficCounterDriver",
    "TrafficLevelContext",
    "ZonePanelControllerImpl",
    "build_pollution_app",
    "default_implementations",
    "get_design",
]
