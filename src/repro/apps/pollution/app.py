"""Assembly of the pollution-advisory application."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.parking.devices import DisplayPanelDriver, MessengerDriver
from repro.apps.pollution.design import DESIGN_SOURCE, get_design
from repro.apps.pollution.environment import CityAirEnvironment
from repro.apps.pollution.logic import default_implementations
from repro.api import (
    Application,
    DeviceDriver,
    RuntimeConfig,
    SimulationClock,
)

DEFAULT_ZONES: Dict[str, float] = {
    "CENTER": 1.0,
    "NORTH": 0.55,
    "SOUTH": 0.45,
    "EAST": 0.35,
    "WEST": 0.30,
}


class PollutionSensorDriver(DeviceDriver):
    def __init__(self, environment: CityAirEnvironment, zone: str):
        self.environment = environment
        self.zone = zone

    def read_pm10(self) -> float:
        return self.environment.pm10_level(self.zone)

    def read_no2(self) -> float:
        return self.environment.no2_level(self.zone)


class TrafficCounterDriver(DeviceDriver):
    def __init__(self, environment: CityAirEnvironment, zone: str):
        self.environment = environment
        self.zone = zone

    def read_vehicle_count(self) -> int:
        return int(self.environment.traffic(self.zone))


@dataclass
class PollutionApp:
    """A runnable pollution-advisory deployment with its handles."""

    application: Application
    environment: CityAirEnvironment
    zone_panels: Dict[str, DisplayPanelDriver] = field(default_factory=dict)
    messenger: MessengerDriver = None
    implementations: Dict[str, object] = field(default_factory=dict)

    def advance(self, seconds: float) -> int:
        return self.application.advance(seconds)

    @property
    def advisories_sent(self) -> List[str]:
        return list(self.messenger.messages)


def build_pollution_app(
    zone_factors: Optional[Dict[str, float]] = None,
    sensors_per_zone: int = 3,
    counters_per_zone: int = 2,
    clock: Optional[SimulationClock] = None,
    environment_step_seconds: float = 60.0,
    seed: int = 0,
    start: bool = True,
) -> PollutionApp:
    """Build (and by default start) the pollution-advisory application."""
    zone_factors = dict(zone_factors or DEFAULT_ZONES)
    unknown = set(zone_factors) - {"CENTER", "NORTH", "SOUTH", "EAST",
                                   "WEST"}
    if unknown:
        raise ValueError(
            f"zones {sorted(unknown)} are not members of CityZoneEnum"
        )
    clock = clock or SimulationClock()
    environment = CityAirEnvironment(
        zone_factors, step_seconds=environment_step_seconds, seed=seed
    )
    application = Application(
        get_design(), RuntimeConfig(clock=clock, name="PollutionAdvisory")
    )

    implementations = default_implementations()
    for name, implementation in implementations.items():
        application.implement(name, implementation)

    zone_panels: Dict[str, DisplayPanelDriver] = {}
    for zone in sorted(zone_factors):
        for index in range(sensors_per_zone):
            application.create_device(
                "PollutionSensor",
                f"air-{zone}-{index}",
                PollutionSensorDriver(environment, zone),
                zone=zone,
            )
        for index in range(counters_per_zone):
            application.create_device(
                "TrafficCounter",
                f"traffic-{zone}-{index}",
                TrafficCounterDriver(environment, zone),
                zone=zone,
            )
        panel = DisplayPanelDriver()
        application.create_device(
            "ZonePanel", f"panel-{zone}", panel, zone=zone
        )
        zone_panels[zone] = panel
    messenger = MessengerDriver()
    application.create_device("CityMessenger", "city-ops", messenger)

    environment.attach(clock)
    if start:
        application.start()
    return PollutionApp(
        application=application,
        environment=environment,
        zone_panels=zone_panels,
        messenger=messenger,
        implementations=implementations,
    )


__all__ = [
    "DEFAULT_ZONES",
    "DESIGN_SOURCE",
    "PollutionApp",
    "PollutionSensorDriver",
    "TrafficCounterDriver",
    "build_pollution_app",
]
