"""Simulated urban air quality driven by traffic.

Per zone: traffic intensity follows the daily demand curve scaled by a
zone factor; PM10 and NO2 concentrations integrate traffic emissions
minus atmospheric dispersion.  Deliberately simple first-order dynamics —
enough for pollution to *lag* traffic and for zone differences to show.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.simulation.environment import Environment
from repro.simulation.traces import daily_demand


class CityAirEnvironment(Environment):
    """Traffic and pollutant state for a set of city zones."""

    PEAK_VEHICLES_PER_HOUR = 1200.0
    PM10_EMISSION = 0.045      # ug/m3 per (veh/h) per hour
    NO2_EMISSION = 0.035
    PM10_DECAY_PER_HOUR = 0.35
    NO2_DECAY_PER_HOUR = 0.50
    PM10_BACKGROUND = 8.0
    NO2_BACKGROUND = 5.0

    def __init__(
        self,
        zone_factors: Dict[str, float],
        step_seconds: float = 60.0,
        noise: float = 0.02,
        seed: int = 0,
    ):
        super().__init__(step_seconds)
        if not zone_factors:
            raise ValueError("at least one zone is required")
        self.zone_factors = dict(zone_factors)
        self.noise = noise
        self._rng = random.Random(seed)
        self.pm10: Dict[str, float] = {
            zone: self.PM10_BACKGROUND for zone in zone_factors
        }
        self.no2: Dict[str, float] = {
            zone: self.NO2_BACKGROUND for zone in zone_factors
        }
        self._traffic: Dict[str, float] = {zone: 0.0 for zone in zone_factors}

    def step(self, now: float) -> None:
        hours = self.step_seconds / 3600.0
        demand = daily_demand(now)
        for zone, factor in self.zone_factors.items():
            traffic = demand * factor * self.PEAK_VEHICLES_PER_HOUR
            if self.noise:
                traffic *= 1.0 + self._rng.uniform(-self.noise, self.noise)
            self._traffic[zone] = traffic
            self.pm10[zone] += (
                traffic * self.PM10_EMISSION
                - (self.pm10[zone] - self.PM10_BACKGROUND)
                * self.PM10_DECAY_PER_HOUR
            ) * hours
            self.no2[zone] += (
                traffic * self.NO2_EMISSION
                - (self.no2[zone] - self.NO2_BACKGROUND)
                * self.NO2_DECAY_PER_HOUR
            ) * hours

    # -- sensing ------------------------------------------------------------

    def traffic(self, zone: str) -> float:
        """Current flow in vehicles/hour."""
        return self._traffic[zone]

    def pm10_level(self, zone: str) -> float:
        return self.pm10[zone]

    def no2_level(self, zone: str) -> float:
        return self.no2[zone]

    def force_pollution(
        self, zone: str, pm10: Optional[float] = None,
        no2: Optional[float] = None,
    ) -> None:
        """Pin pollutant levels (scenario scripting)."""
        if pm10 is not None:
            self.pm10[zone] = pm10
        if no2 is not None:
            self.no2[zone] = no2
