"""Design of the pollution-advisory application.

A second large-scale city application, expressed over the *shared*
smart-city taxonomy (§III: taxonomies are "used across applications"):
traffic counters and pollution sensors feed zone-level contexts, and an
advisory context combines them — high pollution plus heavy traffic yields
zone advisories on the zone panels and a city-operations message.

Demonstrates a context that is both periodically refreshed and
query-served (``no publish`` + ``when required``, like the paper's
``ParkingUsagePattern``), MapReduce over integer readings, and a
``maybe publish`` combiner.
"""

from __future__ import annotations

from repro.sema.analyzer import AnalyzedSpec, analyze
from repro.taxonomies import SMART_CITY_TAXONOMY, combine

APP_FRAGMENT = """\
structure ZoneAir {
    zone as CityZoneEnum;
    pm10 as Float;
    no2 as Float;
}

structure ZoneTraffic {
    zone as CityZoneEnum;
    vehicles as Integer;
}

context TrafficLevel as ZoneTraffic[] {
    when periodic vehicleCount from TrafficCounter <10 min>
    grouped by zone
    with map as Integer reduce as Integer
    always publish;
}

context AirQuality as ZoneAir[] {
    when periodic pm10 from PollutionSensor <10 min>
    grouped by zone
    no publish;

    when required;
}

context PollutionAdvisory as String[] {
    when provided TrafficLevel
    get AirQuality
    maybe publish;
}

controller ZonePanelController {
    when provided PollutionAdvisory
    do update on ZonePanel;
}

controller OperationsMessenger {
    when provided PollutionAdvisory
    do sendMessage on CityMessenger;
}
"""

DESIGN_SOURCE = SMART_CITY_TAXONOMY + "\n" + APP_FRAGMENT

_DESIGN: AnalyzedSpec = None


def get_design() -> AnalyzedSpec:
    """Analyzed design (taxonomy + application fragment), cached."""
    global _DESIGN
    if _DESIGN is None:
        _DESIGN = analyze(combine(SMART_CITY_TAXONOMY, APP_FRAGMENT))
    return _DESIGN
