"""Resolved symbol information for DiaSpec declarations.

The raw AST references everything by name; the symbol table resolves those
names once, flattens device inheritance (Figure 6: ``ParkingEntrancePanel
extends DisplayPanel``), and attaches :class:`~repro.typesys.core.DiaType`
objects to every typed position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import UnknownNameError
from repro.lang.ast_nodes import ContextDecl, ControllerDecl, DeviceDecl
from repro.typesys.core import DiaType


@dataclass(frozen=True)
class SourceInfo:
    """A resolved device source facet.

    ``timeout``/``retries`` carry the source's ``expect`` error policy;
    the runtime applies them on every read.
    """

    name: str
    dia_type: DiaType
    declared_by: str
    index_name: Optional[str] = None
    index_type: Optional[DiaType] = None
    timeout_seconds: Optional[float] = None
    retries: int = 0

    @property
    def is_indexed(self) -> bool:
        return self.index_name is not None


@dataclass(frozen=True)
class ActionInfo:
    """A resolved device action facet."""

    name: str
    params: Tuple[Tuple[str, DiaType], ...]
    declared_by: str


@dataclass(frozen=True)
class AttributeInfo:
    """A resolved device attribute facet."""

    name: str
    dia_type: DiaType
    declared_by: str


@dataclass
class DeviceInfo:
    """A device with inheritance flattened.

    ``attributes``/``sources``/``actions`` include every facet inherited
    from ancestors; ``ancestors`` is ordered nearest-first; ``subtypes``
    lists direct subtypes (used by discovery: a request for ``DisplayPanel``
    entities matches ``ParkingEntrancePanel`` instances too).
    """

    name: str
    decl: DeviceDecl
    ancestors: Tuple[str, ...] = ()
    attributes: Dict[str, AttributeInfo] = field(default_factory=dict)
    sources: Dict[str, SourceInfo] = field(default_factory=dict)
    actions: Dict[str, ActionInfo] = field(default_factory=dict)
    subtypes: Tuple[str, ...] = ()

    def source(self, name: str) -> SourceInfo:
        try:
            return self.sources[name]
        except KeyError:
            raise UnknownNameError(
                f"device has no source '{name}'", declaration=self.name
            ) from None

    def action(self, name: str) -> ActionInfo:
        try:
            return self.actions[name]
        except KeyError:
            raise UnknownNameError(
                f"device has no action '{name}'", declaration=self.name
            ) from None

    def attribute(self, name: str) -> AttributeInfo:
        try:
            return self.attributes[name]
        except KeyError:
            raise UnknownNameError(
                f"device has no attribute '{name}'", declaration=self.name
            ) from None

    def is_subtype_of(self, other: str) -> bool:
        return self.name == other or other in self.ancestors


@dataclass
class ContextInfo:
    """A context with its resolved result type and publication profile."""

    name: str
    decl: ContextDecl
    result_type: DiaType

    @property
    def is_queryable(self) -> bool:
        return self.decl.is_queryable

    @property
    def ever_publishes(self) -> bool:
        from repro.lang.ast_nodes import Publish, WhenRequired

        return any(
            not isinstance(interaction, WhenRequired)
            and interaction.publish is not Publish.NO
            for interaction in self.decl.interactions
        )


@dataclass
class ControllerInfo:
    """A controller declaration (no result type: controllers never publish)."""

    name: str
    decl: ControllerDecl


@dataclass
class SymbolTable:
    """All resolved declarations of a design, by kind then name."""

    devices: Dict[str, DeviceInfo] = field(default_factory=dict)
    contexts: Dict[str, ContextInfo] = field(default_factory=dict)
    controllers: Dict[str, ControllerInfo] = field(default_factory=dict)

    def device(self, name: str) -> DeviceInfo:
        try:
            return self.devices[name]
        except KeyError:
            raise UnknownNameError(f"unknown device '{name}'") from None

    def context(self, name: str) -> ContextInfo:
        try:
            return self.contexts[name]
        except KeyError:
            raise UnknownNameError(f"unknown context '{name}'") from None

    def controller(self, name: str) -> ControllerInfo:
        try:
            return self.controllers[name]
        except KeyError:
            raise UnknownNameError(f"unknown controller '{name}'") from None

    def kind_of(self, name: str) -> Optional[str]:
        """Return 'device', 'context' or 'controller', or None."""
        if name in self.devices:
            return "device"
        if name in self.contexts:
            return "context"
        if name in self.controllers:
            return "controller"
        return None
