"""Structural diffing of two design versions.

Design-driven development lives across iterations; tool support for
evolution means answering "what changed, and what does it break?" at the
design level rather than by eyeballing text.  :func:`diff_designs`
compares two analyzed designs declaration by declaration and classifies
the impact of each change on existing *implementations*:

* **compatible** — additions: new devices/facets/contexts; implementations
  written against the old framework still run.
* **breaking** — removals or signature changes: removed declarations,
  changed result types, changed interaction sets, changed action
  parameters; existing implementations must be revisited.

Available on the command line as ``python -m repro diff old.diaspec
new.diaspec`` (exit status 0 = compatible, 3 = breaking changes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

from repro.sema.analyzer import AnalyzedSpec, analyze


@dataclass(frozen=True)
class Change:
    """One classified difference between design versions."""

    kind: str          # 'added' | 'removed' | 'changed'
    subject: str       # e.g. "device Cooker", "context Alert"
    detail: str = ""
    breaking: bool = False

    def render(self) -> str:
        marker = "!" if self.breaking else "+" if self.kind == "added" else "~"
        text = f"{marker} {self.kind} {self.subject}"
        if self.detail:
            text += f": {self.detail}"
        return text


@dataclass
class DesignDiff:
    """All changes between two design versions."""

    changes: List[Change] = field(default_factory=list)

    @property
    def breaking(self) -> List[Change]:
        return [change for change in self.changes if change.breaking]

    @property
    def compatible(self) -> List[Change]:
        return [change for change in self.changes if not change.breaking]

    @property
    def is_breaking(self) -> bool:
        return bool(self.breaking)

    def __bool__(self) -> bool:
        return bool(self.changes)

    def render(self) -> str:
        if not self.changes:
            return "designs are structurally identical"
        lines = [change.render() for change in self.changes]
        summary = (
            f"{len(self.changes)} change(s), "
            f"{len(self.breaking)} breaking"
        )
        return "\n".join(lines + [summary])


def diff_designs(
    old: Union[str, AnalyzedSpec], new: Union[str, AnalyzedSpec]
) -> DesignDiff:
    """Compare two designs; see the module docstring for semantics."""
    if isinstance(old, str):
        old = analyze(old)
    if isinstance(new, str):
        new = analyze(new)
    diff = DesignDiff()
    _diff_devices(old, new, diff)
    _diff_contexts(old, new, diff)
    _diff_controllers(old, new, diff)
    return diff


def _diff_devices(old, new, diff) -> None:
    for name in sorted(set(old.devices) - set(new.devices)):
        diff.changes.append(
            Change("removed", f"device {name}", breaking=True)
        )
    for name in sorted(set(new.devices) - set(old.devices)):
        diff.changes.append(Change("added", f"device {name}"))
    for name in sorted(set(old.devices) & set(new.devices)):
        _diff_device(old.devices[name], new.devices[name], diff)


def _diff_device(old_info, new_info, diff) -> None:
    subject = f"device {old_info.name}"
    for facet, old_facets, new_facets in (
        ("source", old_info.sources, new_info.sources),
        ("action", old_info.actions, new_info.actions),
        ("attribute", old_info.attributes, new_info.attributes),
    ):
        for name in sorted(set(old_facets) - set(new_facets)):
            diff.changes.append(
                Change("removed", subject, f"{facet} '{name}'",
                       breaking=True)
            )
        for name in sorted(set(new_facets) - set(old_facets)):
            breaking = facet == "attribute"  # new registration obligation
            detail = f"{facet} '{name}'"
            if breaking:
                detail += " (existing deployments must set it)"
            diff.changes.append(
                Change("added", subject, detail, breaking=breaking)
            )
        for name in sorted(set(old_facets) & set(new_facets)):
            if _facet_signature(old_facets[name]) != _facet_signature(
                new_facets[name]
            ):
                diff.changes.append(
                    Change("changed", subject,
                           f"{facet} '{name}' signature", breaking=True)
                )


def _facet_signature(facet) -> tuple:
    if hasattr(facet, "params"):  # action
        return tuple(
            (name, dia_type.name) for name, dia_type in facet.params
        )
    signature = (facet.dia_type.name,)
    if hasattr(facet, "index_name"):
        signature += (facet.index_name,)
    return signature


def _interaction_shape(decl) -> tuple:
    """Shape of a context's contracts, as seen by an implementation."""
    from repro.runtime.component import required_callbacks

    return tuple(sorted(required_callbacks(decl)))


def _diff_contexts(old, new, diff) -> None:
    for name in sorted(set(old.contexts) - set(new.contexts)):
        diff.changes.append(
            Change("removed", f"context {name}", breaking=True)
        )
    for name in sorted(set(new.contexts) - set(old.contexts)):
        diff.changes.append(Change("added", f"context {name}"))
    for name in sorted(set(old.contexts) & set(new.contexts)):
        old_info, new_info = old.contexts[name], new.contexts[name]
        subject = f"context {name}"
        if old_info.result_type.name != new_info.result_type.name:
            diff.changes.append(
                Change(
                    "changed", subject,
                    f"result type {old_info.result_type.name} -> "
                    f"{new_info.result_type.name}",
                    breaking=True,
                )
            )
        if _interaction_shape(old_info.decl) != _interaction_shape(
            new_info.decl
        ):
            diff.changes.append(
                Change("changed", subject, "interaction contracts",
                       breaking=True)
            )


def _diff_controllers(old, new, diff) -> None:
    for name in sorted(set(old.controllers) - set(new.controllers)):
        diff.changes.append(
            Change("removed", f"controller {name}", breaking=True)
        )
    for name in sorted(set(new.controllers) - set(old.controllers)):
        diff.changes.append(Change("added", f"controller {name}"))
    for name in sorted(set(old.controllers) & set(new.controllers)):
        old_decl = old.controllers[name].decl
        new_decl = new.controllers[name].decl
        if _interaction_shape(old_decl) != _interaction_shape(new_decl):
            diff.changes.append(
                Change("changed", f"controller {name}",
                       "reaction contracts", breaking=True)
            )
