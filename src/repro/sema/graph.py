"""Component dataflow graph of an analyzed design.

Nodes are the declared devices, contexts and controllers; edges capture the
four edge kinds visible in the paper's graphical views (Figures 3 and 4):

* ``SUBSCRIBE`` — straight arrows: a source or publishing context pushes
  values to a subscriber (event-driven or periodic delivery);
* ``QUERY`` — loop arrows: a component pulls a value on demand
  (``get ... from ...`` / ``get <context>``);
* ``ACT`` — a controller issues an action on a device.

The graph powers cycle detection (an SCC rule), layer assignment for the
runtime's deterministic dispatch order, and the textual rendering used by
the examples to reproduce the paper's figures.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.errors import SccViolationError
from repro.lang.ast_nodes import (
    GetContext,
    GetSource,
    WhenPeriodic,
    WhenProvidedContext,
    WhenProvidedSource,
)
from repro.sema.symbols import SymbolTable


class EdgeKind(enum.Enum):
    SUBSCRIBE = "subscribe"
    QUERY = "query"
    ACT = "act"


@dataclass(frozen=True)
class Edge:
    """A directed dataflow edge ``source -> target``.

    ``facet`` names the device source or action involved, or the empty
    string for context-to-context and context-to-controller edges.
    """

    source: str
    target: str
    kind: EdgeKind
    facet: str = ""


@dataclass
class ComponentGraph:
    """Dataflow graph with per-node kind and SCC layering."""

    nodes: Dict[str, str] = field(default_factory=dict)  # name -> kind
    edges: Tuple[Edge, ...] = ()
    layers: Dict[str, int] = field(default_factory=dict)

    def successors(self, name: str) -> List[Edge]:
        return [edge for edge in self.edges if edge.source == name]

    def predecessors(self, name: str) -> List[Edge]:
        return [edge for edge in self.edges if edge.target == name]

    def context_order(self) -> List[str]:
        """Context names in dependency order (providers before consumers)."""
        contexts = [n for n, kind in self.nodes.items() if kind == "context"]
        return sorted(contexts, key=lambda n: (self.layers.get(n, 0), n))

    def functional_chains(self) -> List[List[str]]:
        """Every source-to-action path, the 'functional chains' of Fig. 3.

        A chain starts at a device source and ends at a device action;
        dead-end paths (e.g. into a never-publishing context) are not
        chains.
        """
        devices = [n for n, kind in self.nodes.items() if kind == "device"]
        chains: List[List[str]] = []

        def walk(node: str, path: List[str]) -> None:
            outgoing = [
                e
                for e in self.successors(node)
                if e.kind in (EdgeKind.SUBSCRIBE, EdgeKind.ACT)
            ]
            extended = False
            for edge in outgoing:
                if edge.target in path:
                    continue
                walk(edge.target, path + [edge.target])
                extended = True
            if (
                not extended
                and len(path) > 1
                and self.nodes.get(path[-1]) == "device"
            ):
                chains.append(path)

        for device in devices:
            walk(device, [device])
        return chains

    def render_dot(self, title: str = "design") -> str:
        """Graphviz DOT rendering mirroring the paper's Figures 3-4:
        devices at top and bottom, contexts and controllers in layered
        ranks, straight arrows for subscriptions, dashed for queries."""
        lines = [f'digraph "{title}" {{', "    rankdir=TB;"]
        shapes = {"device": "box", "context": "ellipse",
                  "controller": "hexagon"}
        for name in sorted(self.nodes):
            kind = self.nodes[name]
            lines.append(
                f'    "{name}" [shape={shapes[kind]}, '
                f'label="{name}\\n({kind})"];'
            )
        styles = {
            EdgeKind.SUBSCRIBE: "solid",
            EdgeKind.QUERY: "dashed",
            EdgeKind.ACT: "bold",
        }
        for edge in sorted(
            self.edges, key=lambda e: (e.source, e.target, e.kind.value)
        ):
            label = f' [style={styles[edge.kind]}'
            if edge.facet:
                label += f', label="{edge.facet}"'
            label += "];"
            lines.append(f'    "{edge.source}" -> "{edge.target}"{label}')
        lines.append("}")
        return "\n".join(lines)

    def render(self) -> str:
        """A stable, human-readable rendering of the graph."""
        lines = []
        for name in sorted(self.nodes, key=lambda n: (self.layers.get(n, 0), n)):
            kind = self.nodes[name]
            lines.append(f"[{self.layers.get(name, 0)}] {kind} {name}")
            for edge in sorted(
                self.successors(name), key=lambda e: (e.target, e.kind.value)
            ):
                facet = f" ({edge.facet})" if edge.facet else ""
                lines.append(f"    --{edge.kind.value}--> {edge.target}{facet}")
        return "\n".join(lines)


def build_graph(table: SymbolTable) -> ComponentGraph:
    """Construct the dataflow graph and assign SCC layers.

    Raises :class:`SccViolationError` if push edges (subscriptions) form a
    cycle among contexts — such a design would loop forever at runtime.
    Query edges may not create cycles either: a context queried while
    computing itself would deadlock.
    """
    graph = ComponentGraph()
    edges: List[Edge] = []
    for device in table.devices.values():
        graph.nodes[device.name] = "device"
    for context in table.contexts.values():
        graph.nodes[context.name] = "context"
    for controller in table.controllers.values():
        graph.nodes[controller.name] = "controller"

    for context in table.contexts.values():
        for interaction in context.decl.interactions:
            if isinstance(interaction, (WhenProvidedSource, WhenPeriodic)):
                edges.append(
                    Edge(
                        interaction.device,
                        context.name,
                        EdgeKind.SUBSCRIBE,
                        facet=interaction.source,
                    )
                )
            elif isinstance(interaction, WhenProvidedContext):
                edges.append(
                    Edge(interaction.context, context.name, EdgeKind.SUBSCRIBE)
                )
            else:
                continue
            for get in interaction.gets:
                if isinstance(get, GetSource):
                    edges.append(
                        Edge(
                            get.device,
                            context.name,
                            EdgeKind.QUERY,
                            facet=get.source,
                        )
                    )
                elif isinstance(get, GetContext):
                    edges.append(
                        Edge(get.context, context.name, EdgeKind.QUERY)
                    )

    for controller in table.controllers.values():
        for reaction in controller.decl.reactions:
            edges.append(
                Edge(reaction.context, controller.name, EdgeKind.SUBSCRIBE)
            )
            for do in reaction.dos:
                edges.append(
                    Edge(
                        controller.name,
                        do.device,
                        EdgeKind.ACT,
                        facet=do.action,
                    )
                )

    graph.edges = tuple(edges)
    graph.layers = _assign_layers(graph)
    return graph


def _assign_layers(graph: ComponentGraph) -> Dict[str, int]:
    """Longest-path layering over context dataflow edges.

    Devices sit at layer 0; a context's layer is one more than the deepest
    context it depends on (through either subscription or query edges);
    controllers sit one past the deepest context.  Cycles among contexts
    are detected here.
    """
    context_deps: Dict[str, Set[str]] = {
        name: set()
        for name, kind in graph.nodes.items()
        if kind == "context"
    }
    for edge in graph.edges:
        if (
            edge.target in context_deps
            and graph.nodes.get(edge.source) == "context"
        ):
            context_deps[edge.target].add(edge.source)

    layers: Dict[str, int] = {
        name: 0 for name, kind in graph.nodes.items() if kind == "device"
    }
    visiting: Set[str] = set()

    def layer_of(name: str) -> int:
        if name in layers:
            return layers[name]
        if name in visiting:
            raise SccViolationError(
                f"contexts form a dataflow cycle through '{name}'", name
            )
        visiting.add(name)
        deps = context_deps[name]
        value = 1 + max((layer_of(dep) for dep in deps), default=0)
        visiting.discard(name)
        layers[name] = value
        return value

    for context_name in context_deps:
        layer_of(context_name)

    max_context_layer = max(
        (layers[n] for n, k in graph.nodes.items() if k == "context"),
        default=0,
    )
    for name, kind in graph.nodes.items():
        if kind == "controller":
            layers[name] = max_context_layer + 1
    return layers
