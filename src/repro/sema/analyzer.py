"""Top-level semantic analyzer: AST in, :class:`AnalyzedSpec` out.

The :class:`AnalyzedSpec` is the contract between the front end and the
back ends (code generator and runtime): it bundles the validated AST, the
type environment, the resolved symbol table, the dataflow graph and the
design report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.lang.ast_nodes import Spec
from repro.lang.parser import parse
from repro.sema.graph import ComponentGraph, build_graph
from repro.sema.resolver import build_symbols, build_types
from repro.sema.rules import DesignReport, check_scc
from repro.sema.symbols import SymbolTable
from repro.sema.typecheck import check_spec
from repro.typesys.core import TypeEnvironment


@dataclass
class AnalyzedSpec:
    """A fully validated DiaSpec design, ready for codegen or execution."""

    spec: Spec
    types: TypeEnvironment
    symbols: SymbolTable
    graph: ComponentGraph
    report: DesignReport

    @property
    def devices(self):
        return self.symbols.devices

    @property
    def contexts(self):
        return self.symbols.contexts

    @property
    def controllers(self):
        return self.symbols.controllers


def analyze(design: Union[str, Spec]) -> AnalyzedSpec:
    """Analyze a design given as DiaSpec text or as a parsed AST.

    Raises a :class:`~repro.errors.DiaSpecError` subclass on any syntax or
    semantic violation.  Non-fatal observations end up in ``.report``.
    """
    spec = parse(design) if isinstance(design, str) else design
    types = build_types(spec)
    symbols = build_symbols(spec, types)
    check_spec(symbols, types)
    graph = build_graph(symbols)
    report = check_scc(symbols, graph)
    return AnalyzedSpec(
        spec=spec, types=types, symbols=symbols, graph=graph, report=report
    )
