"""Type checking of context and controller interaction contracts.

Validates every reference in ``when``/``get``/``do`` clauses against the
symbol table, and checks the typing rules that make a design executable:

* subscribed and queried sources exist on the named devices;
* ``grouped by`` attributes exist on the gathering device;
* MapReduce phase declarations are complete and their types resolve; the
  Map phase input is the source type (Figure 10: ``map`` receives the
  ``Boolean`` presence readings);
* windowed accumulation (``every <24 hr>``) only applies to periodic
  gathering and the window is at least one period long;
* controllers react to publishing contexts and invoke declared actions.
"""

from __future__ import annotations

from repro.errors import SccViolationError, SemanticError, UnknownNameError
from repro.lang.ast_nodes import (
    GetContext,
    GetSource,
    GroupBy,
    Publish,
    WhenPeriodic,
    WhenProvidedContext,
    WhenProvidedSource,
    WhenRequired,
)
from repro.sema.symbols import ContextInfo, SymbolTable
from repro.typesys.core import TypeEnvironment


def check_spec(table: SymbolTable, types: TypeEnvironment) -> None:
    """Run all interaction-level checks; raises on the first violation."""
    for context in table.contexts.values():
        _check_context(context, table, types)
    for controller in table.controllers.values():
        _check_controller(controller, table)


def _check_context(
    context: ContextInfo, table: SymbolTable, types: TypeEnvironment
) -> None:
    name = context.name
    if not context.decl.interactions:
        raise SemanticError("a context needs at least one interaction", name)
    _check_placement(context)
    for interaction in context.decl.interactions:
        if isinstance(interaction, WhenRequired):
            continue
        if isinstance(interaction, (WhenProvidedSource, WhenPeriodic)):
            _check_device_subscription(name, interaction, table, types)
        elif isinstance(interaction, WhenProvidedContext):
            _check_context_subscription(name, interaction, table)
        _check_gets(name, interaction.gets, table)


def _check_placement(context: ContextInfo) -> None:
    """``at edge`` only makes sense for splittable aggregation.

    The placement tier runs map + map-side combine at the edge; a
    context without a ``grouped by ... with map ... reduce ...``
    periodic interaction has nothing to split, so the annotation would
    silently do nothing — reject it at analysis time instead."""
    if context.decl.placement != "edge":
        return
    for interaction in context.decl.interactions:
        if (
            isinstance(interaction, WhenPeriodic)
            and interaction.group is not None
            and interaction.group.uses_mapreduce
        ):
            return
    raise SemanticError(
        "'at edge' requires a periodic interaction with 'grouped by "
        "... with map ... reduce ...' (the edge runs map and combine; "
        "nothing here can split)",
        context.name,
    )


def _check_device_subscription(name, interaction, table, types) -> None:
    if table.kind_of(interaction.device) != "device":
        raise UnknownNameError(
            f"'{interaction.device}' is not a declared device", name
        )
    device = table.device(interaction.device)
    if interaction.source not in device.sources:
        raise UnknownNameError(
            f"device '{device.name}' has no source '{interaction.source}'",
            name,
        )
    if interaction.group is not None:
        _check_group(name, interaction, device, types)


def _check_group(name, interaction, device, types) -> None:
    group: GroupBy = interaction.group
    if not isinstance(interaction, WhenPeriodic):
        raise SemanticError(
            "'grouped by' applies to periodic gathering only; event-driven "
            "subscriptions deliver one reading at a time",
            name,
        )
    if group.attribute not in device.attributes:
        raise UnknownNameError(
            f"device '{device.name}' has no attribute '{group.attribute}' "
            "to group by",
            name,
        )
    if group.window is not None:
        if group.window.seconds < interaction.period.seconds:
            raise SemanticError(
                f"window {group.window} is shorter than the gathering "
                f"period {interaction.period}",
                name,
            )
    if (group.map_type_name is None) != (group.reduce_type_name is None):
        raise SemanticError(
            "'with map ... reduce ...' needs both phase types", name
        )
    if group.uses_mapreduce:
        source = device.source(interaction.source)
        map_type = types.lookup(group.map_type_name)
        types.lookup(group.reduce_type_name)
        # The Map phase consumes raw readings of the source type; its
        # declared type is what it *emits*.  Nothing constrains emitted
        # types beyond resolving, but the source type must itself resolve
        # (guaranteed by the resolver) and be scalar per reading.
        del map_type, source


def _check_context_subscription(name, interaction, table) -> None:
    target_kind = table.kind_of(interaction.context)
    if target_kind == "controller":
        raise SccViolationError(
            f"context '{name}' cannot subscribe to controller "
            f"'{interaction.context}': controllers never publish",
            name,
        )
    if target_kind != "context":
        raise UnknownNameError(
            f"'{interaction.context}' is not a declared context", name
        )
    target = table.context(interaction.context)
    if not target.ever_publishes:
        raise SemanticError(
            f"context '{target.name}' never publishes; subscribing to it is "
            "useless",
            name,
        )


def _check_gets(name, gets, table) -> None:
    for get in gets:
        if isinstance(get, GetSource):
            if table.kind_of(get.device) != "device":
                raise UnknownNameError(
                    f"'{get.device}' is not a declared device", name
                )
            device = table.device(get.device)
            if get.source not in device.sources:
                raise UnknownNameError(
                    f"device '{device.name}' has no source '{get.source}'",
                    name,
                )
        elif isinstance(get, GetContext):
            target_kind = table.kind_of(get.context)
            if target_kind == "controller":
                raise SccViolationError(
                    f"'{get.context}' is a controller; controllers cannot "
                    "be queried",
                    name,
                )
            if target_kind != "context":
                raise UnknownNameError(
                    f"'{get.context}' is not a declared context", name
                )
            target = table.context(get.context)
            if not target.is_queryable:
                raise SemanticError(
                    f"context '{target.name}' does not declare 'when "
                    "required' and therefore cannot be queried",
                    name,
                )


def _check_controller(controller, table: SymbolTable) -> None:
    name = controller.name
    if not controller.decl.reactions:
        raise SemanticError("a controller needs at least one reaction", name)
    for reaction in controller.decl.reactions:
        source_kind = table.kind_of(reaction.context)
        if source_kind == "device":
            raise SccViolationError(
                f"controller '{name}' cannot subscribe directly to device "
                f"'{reaction.context}': raw data must flow through a context",
                name,
            )
        if source_kind != "context":
            raise UnknownNameError(
                f"'{reaction.context}' is not a declared context", name
            )
        provider = table.context(reaction.context)
        if not provider.ever_publishes:
            raise SemanticError(
                f"context '{provider.name}' never publishes; controller "
                f"'{name}' would never react",
                name,
            )
        for do in reaction.dos:
            if table.kind_of(do.device) != "device":
                raise UnknownNameError(
                    f"'{do.device}' is not a declared device", name
                )
            device = table.device(do.device)
            if do.action not in device.actions:
                raise UnknownNameError(
                    f"device '{device.name}' has no action '{do.action}'",
                    name,
                )


def publish_discipline(context: ContextInfo) -> Publish:
    """Strongest publish discipline across a context's interactions.

    ``ALWAYS`` if any interaction always publishes, else ``MAYBE`` if any
    may publish, else ``NO``.
    """
    disciplines = {
        interaction.publish
        for interaction in context.decl.interactions
        if not isinstance(interaction, WhenRequired)
    }
    if Publish.ALWAYS in disciplines:
        return Publish.ALWAYS
    if Publish.MAYBE in disciplines:
        return Publish.MAYBE
    return Publish.NO


__all__ = ["check_spec", "publish_discipline"]
