"""Name resolution and device-inheritance flattening.

This is the first analysis pass.  It registers enumeration and structure
types into a :class:`~repro.typesys.core.TypeEnvironment`, checks that all
top-level names are unique across declaration kinds, and flattens device
hierarchies so later passes see every inherited facet directly.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.errors import (
    DuplicateDeclarationError,
    SemanticError,
    UnknownNameError,
)
from repro.lang.ast_nodes import DeviceDecl, Spec
from repro.sema.symbols import (
    ActionInfo,
    AttributeInfo,
    ContextInfo,
    ControllerInfo,
    DeviceInfo,
    SourceInfo,
    SymbolTable,
)
from repro.typesys.core import EnumerationType, StructureType, TypeEnvironment


def build_types(spec: Spec) -> TypeEnvironment:
    """Register enumerations and structures into a fresh type environment.

    Structures may reference enumerations and other structures declared
    anywhere in the design (Figure 8 declares ``Availability`` before
    ``UsagePatternEnum`` is used elsewhere), so enumerations are registered
    first and structures are resolved in dependency order.
    """
    types = TypeEnvironment()
    for enum_decl in spec.enumerations:
        types.declare(EnumerationType(enum_decl.name, tuple(enum_decl.members)))

    pending = {decl.name: decl for decl in spec.structures}
    if len(pending) != len(spec.structures):
        names = [decl.name for decl in spec.structures]
        duplicate = next(n for n in names if names.count(n) > 1)
        raise DuplicateDeclarationError(
            f"structure '{duplicate}' is declared more than once"
        )
    while pending:
        progressed = False
        for name in list(pending):
            decl = pending[name]
            field_types = []
            ready = True
            for param in decl.fields:
                base = param.type_name.rstrip("[]")
                if base in pending:
                    ready = False
                    break
                field_types.append((param.name, types.lookup(param.type_name)))
            if ready:
                types.declare(StructureType(name, tuple(field_types)))
                del pending[name]
                progressed = True
        if not progressed:
            cycle = ", ".join(sorted(pending))
            raise SemanticError(
                f"structures form a reference cycle or use unknown types: {cycle}"
            )
    return types


def build_symbols(spec: Spec, types: TypeEnvironment) -> SymbolTable:
    """Build the symbol table: unique names, flattened devices, resolved types."""
    _check_unique_names(spec, types)
    table = SymbolTable()
    _resolve_devices(spec, types, table)
    for context_decl in spec.contexts:
        table.contexts[context_decl.name] = ContextInfo(
            name=context_decl.name,
            decl=context_decl,
            result_type=types.lookup(context_decl.type_name),
        )
    for controller_decl in spec.controllers:
        table.controllers[controller_decl.name] = ControllerInfo(
            name=controller_decl.name, decl=controller_decl
        )
    return table


def _check_unique_names(spec: Spec, types: TypeEnvironment) -> None:
    seen: Set[str] = set()
    for declaration in spec.declarations:
        name = declaration.name
        if name in seen:
            raise DuplicateDeclarationError(
                f"'{name}' is declared more than once"
            )
        seen.add(name)


def _resolve_devices(
    spec: Spec, types: TypeEnvironment, table: SymbolTable
) -> None:
    decls: Dict[str, DeviceDecl] = {d.name: d for d in spec.devices}
    resolving: Set[str] = set()
    subtype_lists: Dict[str, List[str]] = {name: [] for name in decls}

    def resolve(name: str) -> DeviceInfo:
        if name in table.devices:
            return table.devices[name]
        if name in resolving:
            raise SemanticError(
                f"inheritance cycle involving device '{name}'", declaration=name
            )
        if name not in decls:
            raise UnknownNameError(f"unknown device '{name}'")
        resolving.add(name)
        decl = decls[name]
        ancestors: Tuple[str, ...] = ()
        attributes: Dict[str, AttributeInfo] = {}
        sources: Dict[str, SourceInfo] = {}
        actions: Dict[str, ActionInfo] = {}
        if decl.extends:
            parent = resolve(decl.extends)
            ancestors = (parent.name,) + parent.ancestors
            attributes.update(parent.attributes)
            sources.update(parent.sources)
            actions.update(parent.actions)
        _add_own_facets(decl, types, attributes, sources, actions)
        info = DeviceInfo(
            name=name,
            decl=decl,
            ancestors=ancestors,
            attributes=attributes,
            sources=sources,
            actions=actions,
        )
        table.devices[name] = info
        resolving.discard(name)
        for ancestor in ancestors:
            subtype_lists[ancestor].append(name)
        return info

    for device_name in decls:
        resolve(device_name)
    for device_name, subtypes in subtype_lists.items():
        table.devices[device_name].subtypes = tuple(sorted(subtypes))


def _add_own_facets(decl, types, attributes, sources, actions) -> None:
    owner = decl.name
    for attribute in decl.attributes:
        if attribute.name in attributes:
            raise DuplicateDeclarationError(
                f"attribute '{attribute.name}' already declared by "
                f"'{attributes[attribute.name].declared_by}'",
                declaration=owner,
            )
        attributes[attribute.name] = AttributeInfo(
            name=attribute.name,
            dia_type=_lookup(types, attribute.type_name, owner),
            declared_by=owner,
        )
    for source in decl.sources:
        if source.name in sources:
            raise DuplicateDeclarationError(
                f"source '{source.name}' already declared by "
                f"'{sources[source.name].declared_by}'",
                declaration=owner,
            )
        index_type = None
        if source.is_indexed:
            index_type = _lookup(types, source.index_type_name, owner)
        sources[source.name] = SourceInfo(
            name=source.name,
            dia_type=_lookup(types, source.type_name, owner),
            declared_by=owner,
            index_name=source.index_name,
            index_type=index_type,
            timeout_seconds=(
                source.timeout.seconds if source.timeout else None
            ),
            retries=source.retries,
        )
    for action in decl.actions:
        if action.name in actions:
            raise DuplicateDeclarationError(
                f"action '{action.name}' already declared by "
                f"'{actions[action.name].declared_by}'",
                declaration=owner,
            )
        params = tuple(
            (param.name, _lookup(types, param.type_name, owner))
            for param in action.params
        )
        actions[action.name] = ActionInfo(
            name=action.name, params=params, declared_by=owner
        )


def _lookup(types: TypeEnvironment, type_name: str, owner: str):
    try:
        return types.lookup(type_name)
    except UnknownNameError as exc:
        raise UnknownNameError(str(exc), declaration=owner) from None
