"""Whole-design Sense-Compute-Control conformance rules.

Figure 2 of the paper fixes the layering: *devices sense*, *contexts
compute*, *controllers control*.  Most per-reference violations are caught
by :mod:`repro.sema.typecheck`; this module adds whole-design rules that
need the dataflow graph or a global view:

* the context graph is acyclic (checked during layering);
* every controller reaction ends in at least one device action (grammar
  guarantees it; re-checked for programmatically built ASTs);
* warnings for unused declarations (dead devices, unobserved contexts),
  reported rather than raised — a taxonomy is shared across applications
  (Section III), so unused devices are legitimate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Set

from repro.errors import SccViolationError
from repro.sema.graph import ComponentGraph, EdgeKind
from repro.sema.symbols import SymbolTable


@dataclass
class DesignReport:
    """Non-fatal observations about a design."""

    unused_devices: List[str] = field(default_factory=list)
    unobserved_contexts: List[str] = field(default_factory=list)
    unused_enumerations: List[str] = field(default_factory=list)

    @property
    def warnings(self) -> List[str]:
        messages = []
        for name in self.unused_devices:
            messages.append(
                f"device '{name}' is declared but no context or controller "
                "uses it"
            )
        for name in self.unobserved_contexts:
            messages.append(
                f"context '{name}' publishes but nothing subscribes to it"
            )
        for name in self.unused_enumerations:
            messages.append(f"enumeration '{name}' is never referenced")
        return messages


def check_scc(table: SymbolTable, graph: ComponentGraph) -> DesignReport:
    """Validate global SCC rules and collect design warnings."""
    _check_controllers_terminal(table, graph)
    return _collect_warnings(table, graph)


def _check_controllers_terminal(
    table: SymbolTable, graph: ComponentGraph
) -> None:
    for controller in table.controllers.values():
        for edge in graph.successors(controller.name):
            if edge.kind is not EdgeKind.ACT:
                raise SccViolationError(
                    f"controller '{controller.name}' has a non-action "
                    f"outgoing edge to '{edge.target}'",
                    controller.name,
                )
        for reaction in controller.decl.reactions:
            if not reaction.dos:
                raise SccViolationError(
                    "controller reaction performs no action",
                    controller.name,
                )


def _collect_warnings(
    table: SymbolTable, graph: ComponentGraph
) -> DesignReport:
    report = DesignReport()
    used_devices: Set[str] = set()
    for edge in graph.edges:
        if graph.nodes.get(edge.source) == "device":
            used_devices.add(edge.source)
        if graph.nodes.get(edge.target) == "device":
            used_devices.add(edge.target)
    for device in table.devices.values():
        # A supertype is "used" when any subtype is (taxonomy reuse).
        related = {device.name, *device.subtypes}
        if not related & used_devices:
            report.unused_devices.append(device.name)

    for context in table.contexts.values():
        if not context.ever_publishes:
            continue
        subscribed = any(
            edge.kind is EdgeKind.SUBSCRIBE
            for edge in graph.successors(context.name)
        )
        queried = any(
            edge.kind is EdgeKind.QUERY
            for edge in graph.successors(context.name)
        )
        if not subscribed and not queried:
            report.unobserved_contexts.append(context.name)

    report.unused_devices.sort()
    report.unobserved_contexts.sort()
    return report
