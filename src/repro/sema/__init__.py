"""Semantic analysis of DiaSpec designs.

Parsing produces a raw AST; this package turns it into an
:class:`~repro.sema.analyzer.AnalyzedSpec`, the validated, resolved model
that both the code generator and the runtime consume.  Analysis is a
sequence of passes:

1. **Resolution** (:mod:`repro.sema.resolver`) — build the symbol table,
   register enumeration/structure types, flatten device inheritance.
2. **Type checking** (:mod:`repro.sema.typecheck`) — every referenced name
   exists, every type resolves, MapReduce phase types are consistent.
3. **SCC rules** (:mod:`repro.sema.rules`) — the design respects the
   Sense-Compute-Control paradigm of Figure 2: data flows from device
   sources through contexts to controllers to device actions, never
   backwards, and never cyclically.
4. **Graph construction** (:mod:`repro.sema.graph`) — the component
   dataflow graph with layers, used by the runtime for wiring and by the
   tooling for visualization.
"""

from repro.sema.analyzer import AnalyzedSpec, analyze
from repro.sema.graph import ComponentGraph, Edge, EdgeKind
from repro.sema.symbols import (
    ActionInfo,
    ContextInfo,
    ControllerInfo,
    DeviceInfo,
    SourceInfo,
    SymbolTable,
)

__all__ = [
    "ActionInfo",
    "AnalyzedSpec",
    "ComponentGraph",
    "ContextInfo",
    "ControllerInfo",
    "DeviceInfo",
    "Edge",
    "EdgeKind",
    "SourceInfo",
    "SymbolTable",
    "analyze",
]
