"""Prometheus text exposition format for a :class:`MetricsRegistry`.

Renders the version-0.0.4 text format scrapers understand::

    # HELP bus_published_total Events published on the bus.
    # TYPE bus_published_total counter
    bus_published_total 42
    qos_activation_seconds_bucket{component="Alert",le="0.005"} 3
    qos_activation_seconds_sum{component="Alert"} 0.0123
    qos_activation_seconds_count{component="Alert"} 7

Counters and gauges emit one sample per label set; histograms emit the
cumulative ``_bucket`` series (inclusive ``le`` upper bounds, closed by
``+Inf``) plus ``_sum`` and ``_count``.  Label values are escaped per
the spec (backslash, double quote, newline).
"""

from __future__ import annotations

from typing import List

from repro.telemetry.registry import Histogram, MetricsRegistry

__all__ = ["render_prometheus"]


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _label_text(items) -> str:
    if not items:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in items
    )
    return "{" + inner + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every family of ``registry`` as Prometheus text format.

    Output order is deterministic regardless of registration order:
    families render sorted by name and samples sorted by label set, so
    two registries holding the same metrics always produce byte-equal
    exposition text (scrape diffing, golden-file tests).
    """
    lines: List[str] = []
    for family in sorted(registry.families(), key=lambda f: f.name):
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for labels, instrument in sorted(
            family.samples(), key=lambda sample: sample[0]
        ):
            if isinstance(instrument, Histogram):
                _render_histogram(lines, family.name, labels, instrument)
            else:
                lines.append(
                    f"{family.name}{_label_text(labels)} "
                    f"{_format_value(instrument.value)}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def _render_histogram(lines, name, labels, histogram) -> None:
    for bound, cumulative in histogram.bucket_counts():
        bucket_labels = labels + (("le", _format_value(bound)),)
        lines.append(
            f"{name}_bucket{_label_text(bucket_labels)} {cumulative}"
        )
    lines.append(
        f"{name}_sum{_label_text(labels)} {_format_value(histogram.sum)}"
    )
    lines.append(f"{name}_count{_label_text(labels)} {histogram.count}")
