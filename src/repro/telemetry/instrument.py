"""Uniform observability protocol for runtime subsystems.

Before this module existed, every instrumented layer (event bus, entity
registry, QoS monitor, window accumulators, MapReduce engine) hand-wrote
the same three members: an ``attach_metrics(registry)`` that registered
pull-time callbacks, a ``stats()`` snapshot dict, and sometimes a
``reset_stats()``.  The :class:`Instrumented` mixin factors the pattern
out: a subclass declares its observable surface once, as a tuple of
:class:`MetricSpec` records, and inherits all three members.

A spec names the telemetry family, the attribute (plain integer,
property, or zero-argument method) that backs it, and optionally the key
under which the same number appears in the legacy ``stats()`` view —
keeping the documented stats/metric correspondence a single source of
truth instead of two parallel hand-written lists.

Subsystems whose observable surface is dynamic (the QoS monitor
registers per-component instruments as components appear) override
``attach_metrics`` but still inherit the ``stats()`` protocol, so
``Application.stats`` can compose every subsystem generically.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, ClassVar, Dict, Optional, Tuple

__all__ = ["Instrumented", "MetricSpec"]


@dataclass(frozen=True)
class MetricSpec:
    """One observable value of an :class:`Instrumented` subsystem.

    ``source`` is resolved with ``getattr`` at collection time: a plain
    attribute or property yields its value directly; a bound method is
    called.  ``stats_key`` publishes the same number in ``stats()``;
    ``resettable`` opts the attribute into ``reset_stats()`` (only
    meaningful for plain integer attributes).
    """

    metric: str
    source: str
    kind: str = "counter"
    help: str = ""
    stats_key: Optional[str] = None
    resettable: bool = False


def _read_source(subsystem: Any, source: str) -> Any:
    value = getattr(subsystem, source)
    return value() if callable(value) else value


class Instrumented:
    """Mixin: declarative ``attach_metrics`` / ``stats`` / ``reset_stats``."""

    metric_specs: ClassVar[Tuple[MetricSpec, ...]] = ()

    def attach_metrics(self, metrics, **labels: Any) -> None:
        """Register every declared metric as a pull-time callback.

        Callbacks read the backing attributes at collection time, so the
        subsystem's hot paths pay nothing for being observable (the
        zero-overhead rule of ``docs/observability.md``).
        """
        for spec in self.metric_specs:
            metrics.callback(
                spec.metric,
                functools.partial(_read_source, self, spec.source),
                kind=spec.kind,
                help=spec.help,
                **labels,
            )

    def stats(self) -> Dict[str, Any]:
        """Snapshot of the declared counters (the legacy stats view)."""
        snapshot = {
            spec.stats_key: _read_source(self, spec.source)
            for spec in self.metric_specs
            if spec.stats_key is not None
        }
        snapshot.update(self._extra_stats())
        return snapshot

    def _extra_stats(self) -> Dict[str, Any]:
        """Subclass hook for stats-only entries with no metric family."""
        return {}

    def reset_stats(self) -> None:
        """Zero every resettable counter (e.g. between benchmark phases)."""
        for spec in self.metric_specs:
            if spec.resettable:
                setattr(self, spec.source, 0)
