"""Process-wide metrics registry and its three instrument primitives.

The runtime used to answer "what happened?" with scattered ad-hoc
counters — ``bus.stats()``, ``engine.last_stats``,
``app.stats["windows"]``, ``QoSMonitor.stats`` — each with its own
shape.  The :class:`MetricsRegistry` unifies them: every hot layer
registers its counters here, the old ``stats()`` surfaces become thin
views, and one registry snapshot describes the whole process.

Three push instruments cover the usual needs:

* :class:`Counter` — a monotonically increasing count (``inc``);
* :class:`Gauge` — a value that goes up and down (``set``/``inc``/``dec``);
* :class:`Histogram` — fixed-bucket distribution with an
  allocation-free ``observe`` hot path (a ``bisect`` into pre-built
  bucket bounds, no per-observation objects).

A fourth, pull-only flavour keeps *existing* hot paths at literally
zero added cost: :meth:`MetricsRegistry.callback` registers a function
that is read at collection time.  Layers that already maintain a plain
``int`` counter (the bus's publish count, say) expose it through a
callback instead of paying a method call per event — which is how the
instrumented publish path stays within the telemetry benchmark's 5%
budget.

Metrics are identified by name plus an optional label set (Prometheus
style).  Instrument creation is get-or-create and intended to happen at
wiring time; hot paths hold the returned instrument and never touch the
registry dict.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "CallbackValue",
    "MetricFamily",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

# Seconds-oriented default buckets: component activations in this
# runtime range from microseconds (pure-Python callbacks) to whole
# seconds (process-pool MapReduce runs).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.000_1,
    0.000_25,
    0.000_5,
    0.001,
    0.002_5,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Point-in-time value that can move both ways."""

    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = value

    def inc(self, amount: float = 1) -> None:
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with an allocation-free observe path.

    Bucket bounds are upper edges (Prometheus ``le`` semantics, each
    bound inclusive); one overflow slot catches everything beyond the
    last bound.  ``observe`` is a single ``bisect`` plus three integer
    updates — no allocation, no branching on bucket count.
    """

    __slots__ = ("bounds", "_counts", "_sum", "_count")

    def __init__(self, buckets: Optional[Iterable[float]] = None) -> None:
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[bisect_left(self.bounds, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def value(self) -> int:
        """Observation count (uniform ``value`` across instruments)."""
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def count(self) -> int:
        return self._count

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs, ending with ``(inf, total)``."""
        cumulative = 0
        out: List[Tuple[float, int]] = []
        for bound, count in zip(self.bounds, self._counts):
            cumulative += count
            out.append((bound, cumulative))
        out.append((float("inf"), cumulative + self._counts[-1]))
        return out


class CallbackValue:
    """Pull-only instrument: the value is computed at collection time.

    Wraps a zero-argument callable; hot paths that already keep a plain
    counter expose it through one of these and pay nothing per event.
    """

    __slots__ = ("_fn",)

    def __init__(self, fn: Callable[[], float]) -> None:
        self._fn = fn

    @property
    def value(self) -> float:
        return self._fn()


_KINDS = ("counter", "gauge", "histogram")


class MetricFamily:
    """All instruments sharing one metric name (one per label set)."""

    __slots__ = ("name", "kind", "help", "_children")

    def __init__(self, name: str, kind: str, help_text: str) -> None:
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind '{kind}'")
        self.name = name
        self.kind = kind
        self.help = help_text
        self._children: Dict[LabelItems, Any] = {}

    def samples(self) -> List[Tuple[LabelItems, Any]]:
        """(labels, instrument) pairs in label-sorted order."""
        return sorted(self._children.items())

    def child(self, labels: LabelItems) -> Any:
        return self._children[labels]

    def __len__(self) -> int:
        return len(self._children)


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class MetricsRegistry:
    """Get-or-create home of every metric family in a process/application.

    The same ``(name, labels)`` pair always resolves to the same
    instrument, so independent layers can share a family (for example
    every device instance increments children of
    ``device_read_retries_total``).  Asking for an existing name with a
    different kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    # -- instrument creation -------------------------------------------------

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._child(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._child(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Iterable[float]] = None,
        **labels: Any,
    ) -> Histogram:
        return self._child(
            name, "histogram", help, labels, lambda: Histogram(buckets)
        )

    def callback(
        self,
        name: str,
        fn: Callable[[], float],
        kind: str = "counter",
        help: str = "",
        **labels: Any,
    ) -> CallbackValue:
        """Register (or re-point) a pull-only metric backed by ``fn``."""
        family = self._family(name, kind, help)
        child = CallbackValue(fn)
        family._children[_label_items(labels)] = child
        return child

    # -- collection ----------------------------------------------------------

    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> Optional[MetricFamily]:
        return self._families.get(name)

    def value(self, name: str, **labels: Any) -> float:
        """Current value of one sample (tests and quick introspection)."""
        family = self._families[name]
        return family.child(_label_items(labels)).value

    def snapshot(self) -> Dict[str, Dict[LabelItems, float]]:
        """Plain-data dump: ``{name: {labels: value}}``."""
        return {
            family.name: {
                labels: instrument.value
                for labels, instrument in family.samples()
            }
            for family in self.families()
        }

    def render_prometheus(self) -> str:
        from repro.telemetry.prometheus import render_prometheus

        return render_prometheus(self)

    def __len__(self) -> int:
        return len(self._families)

    def __contains__(self, name: str) -> bool:
        return name in self._families

    # -- internals -----------------------------------------------------------

    def _family(self, name: str, kind: str, help_text: str) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help_text)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric '{name}' is a {family.kind}, not a {kind}"
            )
        elif help_text and not family.help:
            family.help = help_text
        return family

    def _child(self, name, kind, help_text, labels, make):
        family = self._family(name, kind, help_text)
        key = _label_items(labels)
        child = family._children.get(key)
        if child is None:
            child = make()
            family._children[key] = child
        return child
