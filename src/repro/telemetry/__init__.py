"""Unified telemetry: one metrics registry, pluggable exporters.

The paper's conclusion asks which non-functional dimensions (QoS,
performance) the design language should surface; this package is the
runtime's answer.  Every hot layer — bus, entity registry, window
accumulators, MapReduce engine, device reads, QoS probes — feeds one
:class:`MetricsRegistry` (exposed as ``app.metrics``), and two
exporters read it out:

* :func:`render_prometheus` — Prometheus text format, for scrapers and
  the ``repro metrics`` CLI command;
* :func:`render_chrome_trace` — Chrome Trace Event JSON fed from the
  existing :class:`~repro.runtime.tracing.Tracer`, for timeline
  inspection in ``chrome://tracing``.

The pre-existing ad-hoc surfaces (``bus.stats()``,
``engine.last_stats``, ``app.stats``) remain as thin views over the
same numbers.
"""

# Import order matters: the registry must be bound before chrometrace,
# whose import chain re-enters this package via repro.runtime.app
# (app.py imports MetricsRegistry from the partially initialized
# module).
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    CallbackValue,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)
from repro.telemetry.instrument import Instrumented, MetricSpec
from repro.telemetry.prometheus import render_prometheus
from repro.telemetry.chrometrace import (
    chrome_trace_events,
    parse_chrome_trace,
    render_chrome_trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "CallbackValue",
    "Counter",
    "Gauge",
    "Histogram",
    "Instrumented",
    "MetricFamily",
    "MetricSpec",
    "MetricsRegistry",
    "chrome_trace_events",
    "parse_chrome_trace",
    "render_chrome_trace",
    "render_prometheus",
]
