"""Chrome-trace (``chrome://tracing`` / Perfetto) export of a Tracer timeline.

The runtime's :class:`~repro.runtime.tracing.Tracer` records a causal
timeline of orchestration events (source readings, context publications,
actions).  This module serialises that timeline into the Trace Event
Format's JSON-object form, which loads directly in ``chrome://tracing``
or https://ui.perfetto.dev:

* every trace entry becomes a global *instant* event (``"ph": "i"``)
  with the simulation timestamp converted to microseconds;
* the three entry kinds map to three named "threads" (source/context/
  action rows in the viewer) of one process named after the
  application;
* entry fields ride along in ``args`` so the export round-trips: the
  original ``TraceEntry`` list (values as their ``repr``) can be
  rebuilt from the JSON with :func:`parse_chrome_trace`.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Union

from repro.runtime.tracing import TraceEntry, Tracer

__all__ = [
    "chrome_trace_events",
    "render_chrome_trace",
    "parse_chrome_trace",
]

_KIND_TIDS = {"source": 1, "context": 2, "action": 3}
_PID = 1


def chrome_trace_events(
    tracer: Tracer, app_name: str = "app"
) -> List[Dict[str, Any]]:
    """Trace Event Format event list for ``tracer``'s timeline."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": app_name},
        }
    ]
    for kind, tid in _KIND_TIDS.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "args": {"name": kind},
            }
        )
    for entry in tracer.entries:
        name = (
            f"{entry.subject}.{entry.detail}" if entry.detail else entry.subject
        )
        events.append(
            {
                "name": name,
                "cat": entry.kind,
                "ph": "i",
                "s": "g",
                "ts": round(entry.timestamp * 1e6, 3),
                "pid": _PID,
                "tid": _KIND_TIDS.get(entry.kind, 0),
                "args": {
                    "subject": entry.subject,
                    "detail": entry.detail,
                    "value": repr(entry.value),
                },
            }
        )
    return events


def render_chrome_trace(tracer: Tracer, app_name: str = "app") -> str:
    """JSON document (object form) ready for ``chrome://tracing``."""
    document = {
        "traceEvents": chrome_trace_events(tracer, app_name),
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.telemetry"},
    }
    return json.dumps(document, indent=2)


def parse_chrome_trace(
    document: Union[str, Dict[str, Any]]
) -> List[TraceEntry]:
    """Rebuild the traced timeline from an exported JSON document.

    Values come back as their ``repr`` strings (the export is for
    humans and viewers, not for pickling); everything else — timestamp,
    kind, subject, detail — round-trips exactly.
    """
    if isinstance(document, str):
        document = json.loads(document)
    entries: List[TraceEntry] = []
    for event in document.get("traceEvents", ()):
        if event.get("ph") != "i":
            continue
        args = event.get("args", {})
        entries.append(
            TraceEntry(
                timestamp=event["ts"] / 1e6,
                kind=event.get("cat", ""),
                subject=args.get("subject", ""),
                detail=args.get("detail", ""),
                value=args.get("value"),
            )
        )
    return entries
