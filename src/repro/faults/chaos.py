"""Deterministic chaos injection: fault plans, wrapped drivers, reports.

A :class:`FaultPlan` is a seeded, declarative script of fault events on
the *application clock* — outages, added latency, connection flapping —
targeted at device types or explicit entities.  A :class:`ChaosInjector`
applies the plan to a running application by wrapping the targeted
instances' drivers; nothing else in the runtime knows chaos exists, so
the supervision layer is exercised exactly as a real deployment would
exercise it.

Everything is deterministic: target selection samples from *sorted*
entity ids with a generator seeded from the plan seed, fault activity is
a pure function of ``clock.now()``, and an empty (or expired) plan is
observationally identical to running without an injector — a property
the test suite pins down.

:func:`run_parking_chaos` drives the paper's parking study through a
sensor-kill scenario and returns a JSON-able recovery report; it backs
the ``repro chaos`` CLI command and the CI chaos smoke job.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import DeviceUnavailableError
from repro.runtime.device import DeviceDriver

__all__ = [
    "ChaosDriver",
    "ChaosInjector",
    "FaultEvent",
    "FaultPlan",
    "run_parking_chaos",
]

OUTAGE = "outage"
LATENCY = "latency"
FLAP = "flap"
_KINDS = (OUTAGE, LATENCY, FLAP)


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault.

    * ``outage`` — every read/actuation on a target raises
      :class:`~repro.errors.DeviceUnavailableError` for the window;
    * ``latency`` — reads report ``latency_seconds`` of injected delay
      (surfaced through ``ChaosDriver.last_injected_latency``, which the
      device read path adds to its measured elapsed time — no wall-clock
      sleeping, so simulations stay fast and exact);
    * ``flap`` — the target alternates down/up every ``flap_period``
      seconds within the window, starting down.

    Targets are ``entity_ids`` when given, else a deterministic sample
    of ``fraction`` of the instances of ``device_type`` (and subtypes).
    """

    kind: str
    start: float
    duration: float
    device_type: Optional[str] = None
    entity_ids: Optional[Tuple[str, ...]] = None
    fraction: float = 1.0
    latency_seconds: float = 0.0
    flap_period: float = 60.0

    def __post_init__(self):
        if self.kind not in _KINDS:
            raise ValueError(f"fault kind must be one of {_KINDS}")
        if self.duration <= 0:
            raise ValueError("fault duration must be > 0")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.device_type is None and self.entity_ids is None:
            raise ValueError(
                "a fault must target a device_type or entity_ids"
            )
        if self.kind == FLAP and self.flap_period <= 0:
            raise ValueError("flap_period must be > 0")

    @property
    def end(self) -> float:
        return self.start + self.duration

    def active_at(self, now: float) -> bool:
        """Is the fault *effective* at ``now``?  (A flap that is in its
        'up' half-period is not effective even though the event spans
        ``now``.)"""
        if not self.start <= now < self.end:
            return False
        if self.kind == FLAP:
            phase = int((now - self.start) / self.flap_period)
            return phase % 2 == 0
        return True


class FaultPlan:
    """A seeded, ordered script of :class:`FaultEvent` records.

    Builder-style: ``FaultPlan(seed=7).outage("PresenceSensor",
    start=1800, duration=1800, fraction=0.3)``.  The seed drives every
    random choice the injector makes (which 30% of the sensors die), so
    a (seed, plan, design) triple replays the same run bit for bit.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.events: List[FaultEvent] = []

    def add(self, event: FaultEvent) -> "FaultPlan":
        self.events.append(event)
        return self

    def outage(
        self,
        device_type: Optional[str] = None,
        start: float = 0.0,
        duration: float = 60.0,
        fraction: float = 1.0,
        entity_ids: Optional[Sequence[str]] = None,
    ) -> "FaultPlan":
        return self.add(
            FaultEvent(
                OUTAGE,
                start,
                duration,
                device_type=device_type,
                fraction=fraction,
                entity_ids=tuple(entity_ids) if entity_ids else None,
            )
        )

    def latency(
        self,
        device_type: Optional[str] = None,
        start: float = 0.0,
        duration: float = 60.0,
        latency_seconds: float = 1.0,
        fraction: float = 1.0,
        entity_ids: Optional[Sequence[str]] = None,
    ) -> "FaultPlan":
        return self.add(
            FaultEvent(
                LATENCY,
                start,
                duration,
                device_type=device_type,
                fraction=fraction,
                latency_seconds=latency_seconds,
                entity_ids=tuple(entity_ids) if entity_ids else None,
            )
        )

    def flap(
        self,
        device_type: Optional[str] = None,
        start: float = 0.0,
        duration: float = 60.0,
        flap_period: float = 60.0,
        fraction: float = 1.0,
        entity_ids: Optional[Sequence[str]] = None,
    ) -> "FaultPlan":
        return self.add(
            FaultEvent(
                FLAP,
                start,
                duration,
                device_type=device_type,
                fraction=fraction,
                flap_period=flap_period,
                entity_ids=tuple(entity_ids) if entity_ids else None,
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)


class ChaosDriver(DeviceDriver):
    """Transparent driver wrapper applying one entity's fault schedule.

    With no active fault it is pure delegation, which is what makes an
    empty plan a no-op.  ``last_injected_latency`` is the virtual delay
    of the most recent read; :meth:`DeviceInstance.read` adds it to the
    measured elapsed time before the timeout check, so scripted latency
    interacts with ``expect timeout`` declarations without any real
    sleeping.
    """

    def __init__(self, inner: DeviceDriver, injector: "ChaosInjector",
                 entity_id: str):
        self.inner = inner
        self.injector = injector
        self.entity_id = entity_id
        self.last_injected_latency = 0.0
        self.last_injected_batch_latency = 0.0

    def _check(self) -> None:
        self.last_injected_latency = 0.0
        now = self.injector.clock.now()
        for event in self.injector.events_for(self.entity_id):
            if not event.active_at(now):
                continue
            if event.kind == LATENCY:
                self.last_injected_latency += event.latency_seconds
                self.injector.injected_latency_reads += 1
            else:  # outage / flap-down
                self.injector.injected_failures += 1
                raise DeviceUnavailableError(
                    f"chaos {event.kind}: '{self.entity_id}' is down "
                    f"({event.start:g}s-{event.end:g}s)",
                    entity_id=self.entity_id,
                )

    def read(self, source: str) -> Any:
        self._check()
        return self.inner.read(source)

    def invoke(self, action: str, **params: Any) -> Any:
        self._check()
        return self.inner.invoke(action, **params)

    def push(self, source: str, value: Any, index: Any = None) -> None:
        self.inner.push(source, value, index=index)

    # -- columnar batch path ---------------------------------------------------

    def batch_key(self, source: str):
        """Delegate cohort identity to the wrapped driver.

        Chaos-wrapped instances whose inner drivers share a substrate
        keep sharing it, so batching survives injection — and the batch
        path sees the faults instead of silently bypassing them.
        """
        return self.inner.batch_key(source)

    def read_batch(self, entity_ids, source: str):
        """Batch read with the cohort's combined fault schedule applied.

        Outage/flap-down on *any* member fails the whole batch (one RPC,
        one failure), demoting the cohort to scalar reads where
        per-entity supervision takes over.  Latency faults are absorbed:
        the batch inherits the **worst** member's injected delay
        (``last_injected_batch_latency``) but is not subject to the
        per-entity read timeout — a single scripted straggler slows the
        entire cohort without tripping any breaker.  That masked-
        straggler pathology is exactly what ``batch.min_column`` tuning
        trades off against per-read dispatch overhead.
        """
        self.last_injected_batch_latency = 0.0
        now = self.injector.clock.now()
        injected = 0.0
        for member in entity_ids:
            for event in self.injector.events_for(member):
                if not event.active_at(now):
                    continue
                if event.kind == LATENCY:
                    injected = max(injected, event.latency_seconds)
                else:  # outage / flap-down
                    self.injector.injected_failures += 1
                    raise DeviceUnavailableError(
                        f"chaos {event.kind}: '{member}' is down "
                        f"({event.start:g}s-{event.end:g}s)",
                        entity_id=member,
                    )
        if injected:
            self.injector.injected_latency_reads += 1
        self.last_injected_batch_latency = injected
        return self.inner.read_batch(entity_ids, source)


class ChaosInjector:
    """Applies a :class:`FaultPlan` to a running application.

    ``attach()`` resolves each event's targets (deterministically) and
    wraps the targeted instances' drivers; ``detach()`` restores them.
    The injector never touches the clock — fault windows activate as the
    application's own time passes.
    """

    def __init__(self, application, plan: FaultPlan):
        self.application = application
        self.plan = plan
        self.clock = application.clock
        self.injected_failures = 0
        self.injected_latency_reads = 0
        self._targets: Dict[str, List[FaultEvent]] = {}
        self._wrapped: Dict[str, Tuple[Any, DeviceDriver]] = {}

    # -- target resolution ----------------------------------------------------

    def _resolve_targets(self, event: FaultEvent, index: int) -> List[str]:
        if event.entity_ids is not None:
            return sorted(event.entity_ids)
        instances = self.application.registry.instances_of(
            event.device_type, include_failed=True, include_quarantined=True
        )
        ids = sorted(instance.entity_id for instance in instances)
        if event.fraction >= 1.0:
            return ids
        count = max(1, round(len(ids) * event.fraction))
        # Seeded per event (plan seed x event index) and sampled from the
        # sorted id list: the same plan on the same fleet always kills
        # the same entities, regardless of registration order.
        rng = random.Random(f"{self.plan.seed}:{index}")
        return sorted(rng.sample(ids, count))

    def events_for(self, entity_id: str) -> List[FaultEvent]:
        return self._targets.get(entity_id, [])

    @property
    def targeted_entities(self) -> List[str]:
        return sorted(self._targets)

    # -- lifecycle -------------------------------------------------------------

    def attach(self) -> "ChaosInjector":
        """Resolve targets and wrap their drivers (idempotent)."""
        if self._wrapped:
            return self
        for index, event in enumerate(self.plan):
            for entity_id in self._resolve_targets(event, index):
                self._targets.setdefault(entity_id, []).append(event)
        registry = self.application.registry
        for entity_id in self._targets:
            instance = registry.get(entity_id)
            wrapper = ChaosDriver(instance.driver, self, entity_id)
            self._wrapped[entity_id] = (instance, instance.driver)
            instance.driver = wrapper
            wrapper.instance = instance
        return self

    def detach(self) -> None:
        """Unwrap every driver the injector wrapped."""
        for instance, inner in self._wrapped.values():
            instance.driver = inner
        self._wrapped.clear()
        self._targets.clear()

    def stats(self) -> Dict[str, Any]:
        return {
            "seed": self.plan.seed,
            "events": len(self.plan),
            "targeted_entities": len(self._targets),
            "injected_failures": self.injected_failures,
            "injected_latency_reads": self.injected_latency_reads,
        }


def run_parking_chaos(
    seed: int = 7,
    duration_seconds: float = 7200.0,
    kill_fraction: float = 0.3,
    fault_start: float = 1800.0,
    fault_duration: float = 1800.0,
    stale_mode: str = "last_known",
    stale_max_age: Optional[float] = None,
    availability_period: str = "1 min",
    failure_threshold: int = 3,
    backoff_base_seconds: float = 120.0,
    backoff_max_seconds: float = 600.0,
    quarantine_after: Optional[int] = 3,
) -> Dict[str, Any]:
    """Run the parking study under a sensor-kill fault plan.

    Kills ``kill_fraction`` of the presence sensors for
    ``fault_duration`` seconds starting at ``fault_start``, with
    supervision (circuit breakers + quarantine) and ``stale_mode``
    degraded delivery active, then reports whether the deployment kept
    publishing through the outage and fully recovered after it.

    The returned report is JSON-able; ``repro chaos`` prints it and CI
    gates on ``report["recovered"]``.
    """
    # Imported lazily: apps.parking imports the runtime, which imports
    # this package.
    from repro.apps.parking.app import build_parking_app
    from repro.faults.policy import StalePolicy, SupervisionPolicy
    from repro.runtime.clock import SimulationClock
    from repro.runtime.config import RuntimeConfig

    clock = SimulationClock()
    policy = SupervisionPolicy(
        failure_threshold=failure_threshold,
        backoff_base_seconds=backoff_base_seconds,
        backoff_max_seconds=backoff_max_seconds,
        quarantine_after=quarantine_after,
    )
    config = RuntimeConfig(
        clock=clock,
        name="ParkingChaos",
        supervision_overrides={"PresenceSensor": policy},
        supervision_seed=seed,
        stale=StalePolicy(stale_mode, max_age_seconds=stale_max_age),
    )
    parking = build_parking_app(
        clock=clock,
        availability_period=availability_period,
        seed=seed,
        config=config,
    )
    app = parking.application

    plan = FaultPlan(seed=seed).outage(
        "PresenceSensor",
        start=fault_start,
        duration=fault_duration,
        fraction=kill_fraction,
    )
    injector = ChaosInjector(app, plan).attach()

    period_seconds = _parse_period(availability_period)
    app.advance(duration_seconds)

    supervision = app.supervision.stats()
    health = supervision["health"]
    expected_sweeps = int(duration_seconds // period_seconds)
    activations = app.stats["context_activations"].get(
        "ParkingAvailability", 0
    )
    panel_updates = {
        lot: len(driver.history)
        for lot, driver in sorted(parking.entrance_panels.items())
    }
    unrecovered = (
        health["degraded"]
        + health["quarantined"]
        + supervision["breaker_states"].get("open", 0)
        + supervision["breaker_states"].get("half_open", 0)
    )
    missed_publishes = max(0, expected_sweeps - activations)
    report: Dict[str, Any] = {
        "seed": seed,
        "duration_seconds": duration_seconds,
        "availability_period_seconds": period_seconds,
        "sensors_total": parking.sensor_count,
        "sensors_killed": len(injector.targeted_entities),
        "killed_entities": injector.targeted_entities,
        "fault_window": [fault_start, fault_start + fault_duration],
        "stale_mode": stale_mode,
        "injected_read_failures": injector.injected_failures,
        "expected_sweeps": expected_sweeps,
        "availability_publishes": activations,
        "missed_publishes": missed_publishes,
        "panel_updates": panel_updates,
        "gather_errors": app.stats["gather_errors"],
        "supervision": supervision,
        "unrecovered_failures": unrecovered,
        "recovered": unrecovered == 0 and injector.injected_failures > 0,
    }
    injector.detach()
    app.stop()
    return report


def _parse_period(period: str) -> float:
    """Seconds in a DiaSpec period string like ``"10 min"``."""
    amount, unit = period.split()
    scale = {"s": 1.0, "sec": 1.0, "min": 60.0, "hr": 3600.0}[unit]
    return float(amount) * scale
