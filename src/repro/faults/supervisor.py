"""Per-entity supervision state and the fleet-wide manager.

A :class:`DeviceSupervisor` pairs one bound entity with a circuit
breaker, a last-known-value cache (what ``StalePolicy('last_known')``
serves), and a derived health state:

* ``healthy`` — breaker closed;
* ``degraded`` — breaker open or half-open: the entity is failing but
  still being probed;
* ``quarantined`` — the breaker has tripped ``quarantine_after``
  consecutive times; the entity is hidden from application-level
  discovery (``instances_of`` filters it) until a probe succeeds.

The :class:`SupervisionManager` owns every supervisor of an
application, hands out per-entity seeded RNGs (jitter is deterministic
per entity, not shared), aggregates breaker/stale/quarantine counters,
and exports them through the telemetry registry via the shared
:class:`~repro.telemetry.Instrumented` protocol.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.faults.breaker import CLOSED, CircuitBreaker
from repro.faults.policy import (
    DEGRADED,
    HEALTHY,
    QUARANTINED,
    SupervisionPolicy,
)
from repro.telemetry.instrument import Instrumented, MetricSpec

__all__ = ["DeviceSupervisor", "SupervisionManager"]

_MISS = object()


class DeviceSupervisor:
    """Supervision state for one bound entity."""

    __slots__ = (
        "entity_id",
        "device_type",
        "info",
        "policy",
        "breaker",
        "_clock",
        "_manager",
        "_last_known",
        "_quarantined",
    )

    def __init__(
        self,
        entity_id: str,
        device_type: str,
        policy: SupervisionPolicy,
        clock,
        rng,
        manager: Optional["SupervisionManager"] = None,
        info=None,
    ):
        self.entity_id = entity_id
        self.device_type = device_type
        # Type info is kept so a live policy retune can re-resolve this
        # entity against the new override hierarchy.
        self.info = info
        self.policy = policy
        self._clock = clock
        self._manager = manager
        self.breaker = CircuitBreaker(
            policy, clock, rng, on_transition=self._on_transition
        )
        self._last_known: Dict[str, Tuple[Any, float]] = {}
        self._quarantined = False

    # -- call gating and outcome reporting -----------------------------------

    def allow(self) -> bool:
        """May a read/actuation proceed (breaker gate)?"""
        return self.breaker.allow()

    def record_success(self, source: Optional[str] = None, value=_MISS):
        """A call succeeded; cache the reading for stale service."""
        if source is not None and value is not _MISS:
            self._last_known[source] = (value, self._clock.now())
        self.breaker.record_success()

    def record_failure(self) -> None:
        """A call failed after exhausting its retry budget."""
        self.breaker.record_failure()

    # -- degraded delivery ----------------------------------------------------

    def last_known(
        self, source: str, max_age_seconds: Optional[float] = None
    ):
        """The cached value of ``source`` if fresh enough, else ``None``
        (wrapped so a cached ``None`` reading is distinguishable — the
        return is ``(value, age_seconds)`` or ``None``)."""
        hit = self._last_known.get(source)
        if hit is None:
            return None
        value, stamp = hit
        age = self._clock.now() - stamp
        if max_age_seconds is not None and age > max_age_seconds:
            return None
        return value, age

    # -- health ----------------------------------------------------------------

    @property
    def health(self) -> str:
        if self._quarantined:
            return QUARANTINED
        if self.breaker.state is CLOSED:
            return HEALTHY
        return DEGRADED

    def _on_transition(self, old_state: str, new_state: str) -> None:
        manager = self._manager
        if manager is not None:
            manager._record_transition(self, old_state, new_state)
        threshold = self.policy.quarantine_after
        if new_state == CLOSED:
            if self._quarantined:
                self._quarantined = False
                if manager is not None:
                    manager._record_recovery(self)
        elif (
            threshold is not None
            and not self._quarantined
            and self.breaker.trip_count >= threshold
        ):
            self._quarantined = True
            if manager is not None:
                manager._record_quarantine(self)

    def __repr__(self) -> str:
        return (
            f"<DeviceSupervisor {self.entity_id} {self.health} "
            f"breaker={self.breaker.state}>"
        )


class SupervisionManager(Instrumented):
    """Fleet supervision: policy resolution, health index, counters.

    The application owns one manager.  ``default_policy=None`` keeps the
    legacy behaviour — devices run unsupervised (no breaker, no health
    tracking, no cache) at zero added cost — while per-type
    ``overrides`` can supervise a subset of the fleet.
    """

    metric_specs = (
        MetricSpec(
            "supervision_breaker_opens_total",
            "_opens",
            stats_key="breaker_opens",
            help="Circuit breakers tripped open.",
        ),
        MetricSpec(
            "supervision_breaker_half_opens_total",
            "_half_opens",
            stats_key="breaker_half_opens",
            help="Open windows that elapsed into a half-open probe.",
        ),
        MetricSpec(
            "supervision_breaker_closes_total",
            "_closes",
            stats_key="breaker_closes",
            help="Breakers closed after successful probes.",
        ),
        MetricSpec(
            "supervision_stale_serves_total",
            "_stale_serves",
            stats_key="stale_serves",
            help="Gather readings served from the last-known cache while "
            "the source was dark.",
        ),
        MetricSpec(
            "supervision_quarantines_total",
            "_quarantines",
            stats_key="quarantines",
            help="Entities quarantined out of discovery after repeated "
            "breaker trips.",
        ),
        MetricSpec(
            "supervision_recoveries_total",
            "_recoveries",
            stats_key="recoveries",
            help="Quarantined entities restored to health by a "
            "successful probe.",
        ),
        MetricSpec(
            "supervision_open_breakers",
            "_open_breaker_count",
            kind="gauge",
            help="Breakers currently open or half-open.",
        ),
        MetricSpec(
            "supervision_quarantined_entities",
            "_quarantined_count",
            kind="gauge",
            help="Entities currently quarantined.",
        ),
    )

    def __init__(
        self,
        clock,
        default_policy: Optional[SupervisionPolicy] = None,
        overrides: Optional[Mapping[str, SupervisionPolicy]] = None,
        seed: int = 0,
    ):
        self.clock = clock
        self.default_policy = default_policy
        self.overrides = dict(overrides or {})
        self.seed = seed
        self._supervisors: Dict[str, DeviceSupervisor] = {}
        self._opens = 0
        self._half_opens = 0
        self._closes = 0
        self._stale_serves = 0
        self._quarantines = 0
        self._recoveries = 0

    # -- policy resolution and supervisor lifecycle ---------------------------

    def policy_for(self, info) -> Optional[SupervisionPolicy]:
        """Resolve the policy for a device type (nearest ancestor wins)."""
        for type_name in (info.name, *info.ancestors):
            policy = self.overrides.get(type_name)
            if policy is not None:
                return policy
        return self.default_policy

    def supervise(self, instance) -> Optional[DeviceSupervisor]:
        """Create (or return) the supervisor for a bound instance;
        ``None`` when no policy covers its type (legacy behaviour)."""
        existing = self._supervisors.get(instance.entity_id)
        if existing is not None:
            return existing
        policy = self.policy_for(instance.info)
        if policy is None:
            return None
        # Jitter is deterministic per entity: derived from the manager
        # seed and the entity id, independent of binding order.
        rng = random.Random((self.seed, instance.entity_id).__repr__())
        supervisor = DeviceSupervisor(
            instance.entity_id,
            instance.info.name,
            policy,
            self.clock,
            rng,
            manager=self,
            info=instance.info,
        )
        self._supervisors[instance.entity_id] = supervisor
        return supervisor

    def reconfigure(
        self,
        default_policy: Optional[SupervisionPolicy],
        overrides: Optional[Mapping[str, SupervisionPolicy]] = None,
    ) -> None:
        """Swap the policy hierarchy live and retune every supervisor.

        Each existing supervisor re-resolves against the new
        default/override hierarchy; breakers keep their state (open
        stays open, trip counts survive) but read thresholds, backoff
        and quarantine limits from the new policy on their next event.
        An entity whose resolved policy becomes ``None`` keeps its old
        policy — supervision wiring is structural and cannot be torn
        down live, only retuned.  Entities bound after the swap resolve
        against the new hierarchy from scratch.
        """
        self.default_policy = default_policy
        self.overrides = dict(overrides or {})
        for supervisor in self._supervisors.values():
            if supervisor.info is None:
                continue
            policy = self.policy_for(supervisor.info)
            if policy is None:
                continue
            supervisor.policy = policy
            supervisor.breaker.policy = policy

    def release(self, entity_id: str) -> None:
        self._supervisors.pop(entity_id, None)

    def supervisor(self, entity_id: str) -> Optional[DeviceSupervisor]:
        return self._supervisors.get(entity_id)

    def health_of(self, entity_id: str) -> str:
        supervisor = self._supervisors.get(entity_id)
        return HEALTHY if supervisor is None else supervisor.health

    # -- accounting (called by supervisors and the gather path) ---------------

    def _record_transition(self, supervisor, old_state, new_state) -> None:
        if new_state == "open":
            self._opens += 1
        elif new_state == "half_open":
            self._half_opens += 1
        elif new_state == "closed":
            self._closes += 1

    def _record_quarantine(self, supervisor) -> None:
        self._quarantines += 1

    def _record_recovery(self, supervisor) -> None:
        self._recoveries += 1

    def record_stale_serve(self) -> None:
        self._stale_serves += 1

    # -- aggregate views -------------------------------------------------------

    def _open_breaker_count(self) -> int:
        return sum(
            1
            for s in self._supervisors.values()
            if s.breaker.state is not CLOSED
        )

    def _quarantined_count(self) -> int:
        return sum(
            1 for s in self._supervisors.values() if s.health == QUARANTINED
        )

    def health_summary(self) -> Dict[str, int]:
        summary = {HEALTHY: 0, DEGRADED: 0, QUARANTINED: 0}
        for supervisor in self._supervisors.values():
            summary[supervisor.health] += 1
        return summary

    def breaker_states(self) -> Dict[str, int]:
        states: Dict[str, int] = {}
        for supervisor in self._supervisors.values():
            state = supervisor.breaker.state
            states[state] = states.get(state, 0) + 1
        return states

    def _extra_stats(self) -> Dict[str, Any]:
        return {
            "supervised": len(self._supervisors),
            "health": self.health_summary(),
            "breaker_states": self.breaker_states(),
        }

    def __len__(self) -> int:
        return len(self._supervisors)
