"""Circuit breaker driven by the application clock.

The classic three-state machine, specialised for a runtime whose time
may be virtual:

* **closed** — calls flow; consecutive failures are counted, and
  reaching the policy's ``failure_threshold`` trips the breaker;
* **open** — calls are refused without touching the device
  (:class:`~repro.errors.CircuitOpenError` at the call site) until the
  open window elapses on the *application clock*;
* **half-open** — the next call(s) through are probes; enough successes
  close the breaker, any failure re-trips it with a longer window
  (exponential backoff with seeded jitter, see
  :meth:`~repro.faults.policy.SupervisionPolicy.open_duration`).

No wall time is consulted anywhere, so breaker traces are exactly
reproducible under a :class:`~repro.runtime.clock.SimulationClock`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.faults.policy import SupervisionPolicy

__all__ = ["CircuitBreaker", "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

TransitionListener = Callable[[str, str], None]


class CircuitBreaker:
    """One entity's breaker state machine."""

    __slots__ = (
        "policy",
        "clock",
        "rng",
        "state",
        "_failures",
        "_half_open_successes",
        "_open_until",
        "_trips",
        "_on_transition",
    )

    def __init__(
        self,
        policy: SupervisionPolicy,
        clock,
        rng,
        on_transition: Optional[TransitionListener] = None,
    ):
        self.policy = policy
        self.clock = clock
        self.rng = rng
        self.state = CLOSED
        self._failures = 0
        self._half_open_successes = 0
        self._open_until = 0.0
        # Consecutive trips without an intervening close; drives the
        # exponential backoff and the quarantine threshold.
        self._trips = 0
        self._on_transition = on_transition

    # -- gate ---------------------------------------------------------------

    def allow(self) -> bool:
        """May a call proceed right now?

        An open breaker whose window has elapsed transitions to
        half-open as a side effect, so the caller's very next read is
        the probe — no separate scheduler is needed.
        """
        if self.state is CLOSED:
            return True
        if self.state is OPEN:
            if self.clock.now() >= self._open_until:
                self._transition(HALF_OPEN)
                self._half_open_successes = 0
                return True
            return False
        return True  # HALF_OPEN: probes flow

    # -- outcome reporting --------------------------------------------------

    def record_success(self) -> None:
        if self.state is HALF_OPEN:
            self._half_open_successes += 1
            if self._half_open_successes >= self.policy.half_open_probes:
                self._trips = 0
                self._failures = 0
                self._transition(CLOSED)
        else:
            self._failures = 0

    def record_failure(self) -> None:
        if self.state is HALF_OPEN:
            self._trip()
        elif self.state is CLOSED:
            self._failures += 1
            if self._failures >= self.policy.failure_threshold:
                self._trip()
        # OPEN: the gate refused the call; nothing to record.

    def _trip(self) -> None:
        self._trips += 1
        self._failures = 0
        self._open_until = self.clock.now() + self.policy.open_duration(
            self._trips, self.rng
        )
        self._transition(OPEN)

    # -- introspection ------------------------------------------------------

    @property
    def trip_count(self) -> int:
        """Consecutive trips since the breaker last closed."""
        return self._trips

    @property
    def open_until(self) -> float:
        return self._open_until

    def _transition(self, new_state: str) -> None:
        old_state, self.state = self.state, new_state
        if self._on_transition is not None and old_state != new_state:
            self._on_transition(old_state, new_state)

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.state} failures={self._failures} "
            f"trips={self._trips}>"
        )
