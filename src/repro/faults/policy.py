"""Supervision and stale-value policies.

A :class:`SupervisionPolicy` declares, per device type, how the runtime
reacts to read/actuation failures: how many immediate retries a call
gets, when the circuit breaker trips, how long it stays open (exponential
backoff with deterministic jitter), and when a chronically flapping
entity is quarantined out of discovery.

A :class:`StalePolicy` declares what periodic and query-driven gathers
serve when a source is dark (breaker open, retries exhausted): the last
known value within a freshness bound, nothing, or a hard error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "DEGRADED",
    "HEALTHY",
    "QUARANTINED",
    "StalePolicy",
    "SupervisionPolicy",
]

# Entity health states tracked by the supervision layer and filterable
# through EntityRegistry.instances_of(..., health=...).
HEALTHY = "healthy"
DEGRADED = "degraded"
QUARANTINED = "quarantined"


@dataclass(frozen=True)
class SupervisionPolicy:
    """How reads and actuations on a device type are supervised.

    ``max_retries``/``read_timeout`` of ``None`` defer to the source's
    own ``expect timeout ... retry N`` declaration, so a policy can
    tighten fleet behaviour without rewriting designs.  Breaker timings
    are in *application clock* seconds — under a simulation clock a
    30-second open window is exact and repeatable.
    """

    max_retries: Optional[int] = None
    read_timeout: Optional[float] = None
    failure_threshold: int = 3
    backoff_base_seconds: float = 30.0
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 600.0
    jitter: float = 0.1
    half_open_probes: int = 1
    quarantine_after: Optional[int] = 3

    def __post_init__(self):
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.backoff_base_seconds <= 0:
            raise ValueError("backoff_base_seconds must be > 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")
        if self.quarantine_after is not None and self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1 or None")

    def retries_for(self, source_info) -> int:
        """Retry budget for one source (policy overrides the design)."""
        if self.max_retries is not None:
            return self.max_retries
        return source_info.retries

    def timeout_for(self, source_info) -> Optional[float]:
        """Read timeout for one source (policy overrides the design)."""
        if self.read_timeout is not None:
            return self.read_timeout
        return source_info.timeout_seconds

    def open_duration(self, trip_count: int, rng) -> float:
        """How long the breaker stays open after its ``trip_count``-th
        consecutive trip: exponential backoff, capped, with a seeded
        jitter factor so a fleet tripping together does not probe in
        lock-step."""
        base = min(
            self.backoff_max_seconds,
            self.backoff_base_seconds
            * self.backoff_factor ** max(0, trip_count - 1),
        )
        if self.jitter:
            base *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return base


@dataclass(frozen=True)
class StalePolicy:
    """Degraded-delivery behaviour when a source cannot be read.

    * ``skip`` (default) — drop the entity from this sweep; the gather
      error counter ticks, the cohort shrinks.  This is the historical
      behaviour.
    * ``last_known`` — serve the entity's cached last good value if it
      is younger than ``max_age_seconds`` (``None`` = any age), so
      contexts and MapReduce windows keep closing with full cohorts.
    * ``fail`` — re-raise; the failure propagates to whoever drove the
      sweep.  For deployments where a partial answer is worse than none.
    """

    MODES = ("last_known", "skip", "fail")

    mode: str = "skip"
    max_age_seconds: Optional[float] = None

    def __post_init__(self):
        if self.mode not in self.MODES:
            raise ValueError(
                f"stale mode must be one of {self.MODES}, got '{self.mode}'"
            )
        if self.max_age_seconds is not None and self.max_age_seconds < 0:
            raise ValueError("max_age_seconds must be >= 0 or None")

    @property
    def serves_stale(self) -> bool:
        return self.mode == "last_known"
