"""Fault tolerance for the device runtime.

The paper's orchestration runtime must keep a city-scale deployment
producing context values while individual entities fail — node churn and
partial failure are the *normal* operating mode of an IoT choreography,
not an exception.  This package is the reaction layer that pairs with
the telemetry observation layer:

* :mod:`repro.faults.policy` — :class:`SupervisionPolicy` (retry budget,
  exponential breaker backoff with jitter, quarantine threshold) and
  :class:`StalePolicy` (what a gather serves when a source is dark);
* :mod:`repro.faults.breaker` — the circuit-breaker state machine,
  driven entirely by the application clock;
* :mod:`repro.faults.supervisor` — per-entity :class:`DeviceSupervisor`
  state and the fleet-wide :class:`SupervisionManager` the application
  owns;
* :mod:`repro.faults.chaos` — the deterministic :class:`FaultPlan` /
  :class:`ChaosInjector` pair behind the ``repro chaos`` CLI command.

Everything here is deterministic under the simulation clock: breaker
timers use ``clock.now()``, jitter and chaos-target selection come from
seeded generators, and a fault-free plan is observationally identical to
running with no injector at all.
"""

from repro.faults.policy import (
    DEGRADED,
    HEALTHY,
    QUARANTINED,
    StalePolicy,
    SupervisionPolicy,
)
from repro.faults.breaker import CircuitBreaker
from repro.faults.supervisor import DeviceSupervisor, SupervisionManager
from repro.faults.chaos import ChaosInjector, FaultEvent, FaultPlan

__all__ = [
    "ChaosInjector",
    "CircuitBreaker",
    "DEGRADED",
    "DeviceSupervisor",
    "FaultEvent",
    "FaultPlan",
    "HEALTHY",
    "QUARANTINED",
    "StalePolicy",
    "SupervisionManager",
    "SupervisionPolicy",
]
