"""Tokenizer for DiaSpec designs.

The lexical grammar is small: identifiers, integer and decimal literals,
a fixed keyword set, and single-character punctuation.  ``//`` line
comments and ``/* ... */`` block comments are skipped.  Durations such as
``<10 min>`` are produced as three tokens (``<``, number, identifier,
``>``) and assembled by the parser.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import DiaSpecSyntaxError


class TokenKind(enum.Enum):
    """Lexical category of a token."""

    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    LBRACE = "{"
    RBRACE = "}"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    LANGLE = "<"
    RANGLE = ">"
    SEMI = ";"
    COMMA = ","
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "action",
        "always",
        "as",
        "at",
        "attribute",
        "by",
        "context",
        "controller",
        "deadline",
        "device",
        "do",
        "enumeration",
        "every",
        "expect",
        "extends",
        "from",
        "get",
        "grouped",
        "indexed",
        "map",
        "maybe",
        "no",
        "on",
        "periodic",
        "provided",
        "publish",
        "reduce",
        "required",
        "retry",
        "source",
        "timeout",
        "structure",
        "when",
        "with",
    }
)

_PUNCT = {
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "<": TokenKind.LANGLE,
    ">": TokenKind.RANGLE,
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
}


def _is_ascii_digit(char: str) -> bool:
    return "0" <= char <= "9"


def _is_ident_start(char: str) -> bool:
    # DiaSpec identifiers are ASCII (Java-compatible); Python's
    # str.isalpha() would silently admit unicode letters.
    return "a" <= char <= "z" or "A" <= char <= "Z" or char == "_"


def _is_ident_part(char: str) -> bool:
    return _is_ident_start(char) or _is_ascii_digit(char)


@dataclass(frozen=True)
class Token:
    """A lexed token with its source position (1-based line/column)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> List[Token]:
    """Tokenize DiaSpec source text into a token list ending with EOF."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    position = 0
    line = 1
    column = 1
    length = len(source)

    def error(message: str) -> DiaSpecSyntaxError:
        return DiaSpecSyntaxError(message, line=line, column=column)

    while position < length:
        char = source[position]

        if char == "\n":
            position += 1
            line += 1
            column = 1
            continue
        if char in " \t\r":
            position += 1
            column += 1
            continue

        if source.startswith("//", position):
            end = source.find("\n", position)
            if end == -1:
                break
            column += end - position
            position = end
            continue

        if source.startswith("/*", position):
            end = source.find("*/", position + 2)
            if end == -1:
                raise error("unterminated block comment")
            skipped = source[position : end + 2]
            newlines = skipped.count("\n")
            if newlines:
                line += newlines
                column = len(skipped) - skipped.rfind("\n")
            else:
                column += len(skipped)
            position = end + 2
            continue

        if char in _PUNCT:
            yield Token(_PUNCT[char], char, line, column)
            position += 1
            column += 1
            continue

        if _is_ascii_digit(char):
            start = position
            while position < length and _is_ascii_digit(source[position]):
                position += 1
            if position < length and source[position] == ".":
                position += 1
                if position >= length or not _is_ascii_digit(
                    source[position]
                ):
                    raise error("malformed decimal literal")
                while position < length and _is_ascii_digit(
                    source[position]
                ):
                    position += 1
            text = source[start:position]
            yield Token(TokenKind.NUMBER, text, line, column)
            column += len(text)
            continue

        if _is_ident_start(char):
            start = position
            while position < length and _is_ident_part(source[position]):
                position += 1
            text = source[start:position]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            yield Token(kind, text, line, column)
            column += len(text)
            continue

        raise error(f"unexpected character {char!r}")

    yield Token(TokenKind.EOF, "", line, column)
