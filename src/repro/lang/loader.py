"""Convenience entry points for loading DiaSpec designs."""

from __future__ import annotations

import os
from typing import Union

from repro.lang.ast_nodes import Spec
from repro.lang.parser import parse


def load_source(source: str) -> Spec:
    """Parse DiaSpec text into an AST (alias of :func:`repro.lang.parse`)."""
    return parse(source)


def load_file(path: Union[str, "os.PathLike[str]"]) -> Spec:
    """Read and parse a ``.diaspec`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse(handle.read())
