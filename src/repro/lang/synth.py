"""Synthetic design generation.

Produces arbitrarily large, semantically valid DiaSpec designs for
stress tests and compiler benchmarks: ``N`` devices with sources,
actions, and attributes; layered contexts wired event-driven, periodic
(grouped, some with MapReduce), and context-to-context; one controller
per terminal context.  Generation is deterministic in its parameters.
"""

from __future__ import annotations

from typing import List


def synthesize_design(
    devices: int = 10,
    contexts: int = 10,
    controllers: int = 5,
    grouped_share: float = 0.5,
    mapreduce_share: float = 0.25,
) -> str:
    """Render a valid DiaSpec design of the requested size.

    ``grouped_share`` of the periodic contexts use ``grouped by``;
    ``mapreduce_share`` of those add ``with map ... reduce ...``.
    Controllers are attached round-robin to the last ``controllers``
    contexts.
    """
    if devices < 1 or contexts < 1 or controllers < 0:
        raise ValueError("need at least one device and one context")
    if controllers > contexts:
        raise ValueError("cannot have more controllers than contexts")

    parts: List[str] = []
    parts.append("enumeration SynthZoneEnum { Z0, Z1, Z2, Z3 }")

    for index in range(devices):
        parts.append(
            f"device SynthDevice{index} {{\n"
            f"    attribute zone as SynthZoneEnum;\n"
            f"    source value{index} as Float;\n"
            f"    action act{index}(level as Integer);\n"
            f"}}"
        )

    for index in range(contexts):
        device = index % devices
        name = f"SynthContext{index}"
        if index == 0 or index % 3 == 0:
            # Event-driven layer-1 context.
            body = (
                f"    when provided value{device} from SynthDevice{device}\n"
                f"    always publish;"
            )
        elif index % 3 == 1:
            grouped = (index / contexts) < grouped_share
            group_clause = ""
            if grouped:
                group_clause = "\n    grouped by zone"
                if (index / contexts) < grouped_share * mapreduce_share * 4:
                    group_clause += (
                        "\n    with map as Float reduce as Float"
                    )
            body = (
                f"    when periodic value{device} from "
                f"SynthDevice{device} <10 s>{group_clause}\n"
                f"    always publish;"
            )
        else:
            # Subscribe to the previous chain member when one exists
            # (building real dataflow depth), else to the neighbour.
            previous_chain = index - 3
            provider_index = previous_chain if previous_chain >= 2 else (
                index - 1
            )
            provider = f"SynthContext{provider_index}"
            body = f"    when provided {provider}\n    always publish;"
        parts.append(f"context {name} as Float {{\n{body}\n}}")

    for index in range(controllers):
        provider = f"SynthContext{contexts - 1 - index}"
        device = index % devices
        parts.append(
            f"controller SynthController{index} {{\n"
            f"    when provided {provider}\n"
            f"    do act{device} on SynthDevice{device};\n"
            f"}}"
        )
    return "\n\n".join(parts) + "\n"
