"""DiaSpec language front end.

This package implements the design language of the paper: a lexer
(:mod:`repro.lang.lexer`), an abstract syntax tree
(:mod:`repro.lang.ast_nodes`), a recursive-descent parser
(:mod:`repro.lang.parser`), a pretty-printer producing canonical DiaSpec
text (:mod:`repro.lang.pretty`), and convenience loaders
(:mod:`repro.lang.loader`).

The concrete syntax follows Figures 5-8 of the paper::

    device PresenceSensor {
        attribute parkingLot as ParkingLotEnum;
        source presence as Boolean;
    }

    context ParkingAvailability as Availability[] {
        when periodic presence from PresenceSensor <10 min>
        grouped by parkingLot
        with map as Boolean reduce as Integer
        always publish;
    }

    controller ParkingEntrancePanelController {
        when provided ParkingAvailability
        do update on ParkingEntrancePanel;
    }
"""

from repro.lang.ast_nodes import (
    ActionDecl,
    AttributeDecl,
    ContextDecl,
    ControllerDecl,
    ControllerReaction,
    DeviceDecl,
    DoClause,
    Duration,
    EnumerationDecl,
    GetContext,
    GetSource,
    GroupBy,
    Param,
    Publish,
    SourceDecl,
    Spec,
    StructureDecl,
    WhenPeriodic,
    WhenProvidedContext,
    WhenProvidedSource,
    WhenRequired,
)
from repro.lang.lexer import Token, TokenKind, tokenize
from repro.lang.loader import load_file, load_source
from repro.lang.parser import parse
from repro.lang.pretty import pretty

__all__ = [
    "ActionDecl",
    "AttributeDecl",
    "ContextDecl",
    "ControllerDecl",
    "ControllerReaction",
    "DeviceDecl",
    "DoClause",
    "Duration",
    "EnumerationDecl",
    "GetContext",
    "GetSource",
    "GroupBy",
    "Param",
    "Publish",
    "SourceDecl",
    "Spec",
    "StructureDecl",
    "Token",
    "TokenKind",
    "WhenPeriodic",
    "WhenProvidedContext",
    "WhenProvidedSource",
    "WhenRequired",
    "load_file",
    "load_source",
    "parse",
    "pretty",
    "tokenize",
]
