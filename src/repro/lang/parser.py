"""Recursive-descent parser for DiaSpec designs.

The grammar, in EBNF (keywords quoted)::

    spec        := declaration*
    declaration := device | enumeration | structure | context | controller

    device      := "device" IDENT ["extends" IDENT] "{" facet* "}"
    facet       := attribute | source | action
    attribute   := "attribute" IDENT "as" type ";"
    source      := "source" IDENT "as" type
                   ["indexed" "by" IDENT "as" type] ";"
    action      := "action" IDENT ["(" params ")"] ";"
    params      := IDENT "as" type ("," IDENT "as" type)*

    enumeration := "enumeration" IDENT "{" IDENT ("," IDENT)* [","] "}"
    structure   := "structure" IDENT "{" (IDENT "as" type ";")* "}"

    context     := "context" IDENT "as" type ["at" ("edge" | "cloud")]
                   "{" interaction* "}"
    interaction := "when" "required" ";"
                 | "when" "provided" IDENT "from" IDENT tail ";"
                 | "when" "periodic" IDENT "from" IDENT duration tail ";"
                 | "when" "provided" IDENT ctx_tail ";"
    tail        := [group] get* publish
    ctx_tail    := get* publish
    group       := "grouped" "by" IDENT ["every" duration]
                   ["with" "map" "as" type "reduce" "as" type]
    get         := "get" IDENT ["from" IDENT]
    publish     := ("always" | "maybe" | "no") "publish"
    duration    := "<" NUMBER IDENT ">"

    controller  := "controller" IDENT "{" reaction* "}"
    reaction    := "when" "provided" IDENT ("do" IDENT "on" IDENT)+ ";"

    type        := IDENT ("[" "]")*

The ``when provided`` ambiguity (device source vs. context) is resolved by
the presence of the ``from`` keyword, exactly as in the paper's examples.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import DiaSpecSyntaxError
from repro.lang.ast_nodes import (
    ActionDecl,
    AttributeDecl,
    ContextDecl,
    ControllerDecl,
    ControllerReaction,
    Declaration,
    DeviceDecl,
    DoClause,
    Duration,
    EnumerationDecl,
    GetClause,
    GetContext,
    GetSource,
    GroupBy,
    Interaction,
    Param,
    Publish,
    SourceDecl,
    Spec,
    StructureDecl,
    WhenPeriodic,
    WhenProvidedContext,
    WhenProvidedSource,
    WhenRequired,
)
from repro.lang.lexer import Token, TokenKind, tokenize


def parse(source: str) -> Spec:
    """Parse DiaSpec source text into a :class:`Spec` AST."""
    return _Parser(tokenize(source)).parse_spec()


class _Parser:
    """Hand-written LL(1) parser over the token stream."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._position = 0

    # -- token helpers ----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._position]

    def _error(self, message: str) -> DiaSpecSyntaxError:
        token = self._current
        return DiaSpecSyntaxError(message, line=token.line, column=token.column)

    def _advance(self) -> Token:
        token = self._current
        if token.kind is not TokenKind.EOF:
            self._position += 1
        return token

    def _check(self, kind: TokenKind) -> bool:
        return self._current.kind is kind

    def _check_keyword(self, word: str) -> bool:
        return self._current.is_keyword(word)

    def _match_keyword(self, word: str) -> bool:
        if self._check_keyword(word):
            self._advance()
            return True
        return False

    def _expect(self, kind: TokenKind) -> Token:
        if not self._check(kind):
            raise self._error(
                f"expected {kind.value!r}, found {self._current.text!r}"
            )
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        if not self._check_keyword(word):
            raise self._error(
                f"expected keyword {word!r}, found {self._current.text!r}"
            )
        return self._advance()

    def _expect_ident(self) -> str:
        if not self._check(TokenKind.IDENT):
            raise self._error(
                f"expected identifier, found {self._current.text!r}"
            )
        return self._advance().text

    # -- grammar ----------------------------------------------------------

    def parse_spec(self) -> Spec:
        declarations: List[Declaration] = []
        while not self._check(TokenKind.EOF):
            declarations.append(self._declaration())
        return Spec(tuple(declarations))

    def _declaration(self) -> Declaration:
        if self._check_keyword("device"):
            return self._device()
        if self._check_keyword("enumeration"):
            return self._enumeration()
        if self._check_keyword("structure"):
            return self._structure()
        if self._check_keyword("context"):
            return self._context()
        if self._check_keyword("controller"):
            return self._controller()
        raise self._error(
            "expected 'device', 'enumeration', 'structure', 'context' or "
            f"'controller', found {self._current.text!r}"
        )

    def _type_name(self) -> str:
        name = self._expect_ident()
        while self._check(TokenKind.LBRACKET):
            self._advance()
            self._expect(TokenKind.RBRACKET)
            name += "[]"
        return name

    def _duration(self) -> Duration:
        open_token = self._expect(TokenKind.LANGLE)
        number = self._expect(TokenKind.NUMBER)
        unit = self._expect_ident()
        self._expect(TokenKind.RANGLE)
        try:
            return Duration(float(number.text), unit)
        except ValueError as exc:
            raise DiaSpecSyntaxError(
                str(exc), line=open_token.line, column=open_token.column
            ) from None

    # -- device -----------------------------------------------------------

    def _device(self) -> DeviceDecl:
        self._expect_keyword("device")
        name = self._expect_ident()
        extends = None
        if self._match_keyword("extends"):
            extends = self._expect_ident()
        self._expect(TokenKind.LBRACE)
        attributes: List[AttributeDecl] = []
        sources: List[SourceDecl] = []
        actions: List[ActionDecl] = []
        while not self._check(TokenKind.RBRACE):
            if self._check_keyword("attribute"):
                attributes.append(self._attribute())
            elif self._check_keyword("source"):
                sources.append(self._source())
            elif self._check_keyword("action"):
                actions.append(self._action())
            else:
                raise self._error(
                    "expected 'attribute', 'source' or 'action' in device "
                    f"body, found {self._current.text!r}"
                )
        self._expect(TokenKind.RBRACE)
        return DeviceDecl(
            name=name,
            extends=extends,
            attributes=tuple(attributes),
            sources=tuple(sources),
            actions=tuple(actions),
        )

    def _attribute(self) -> AttributeDecl:
        self._expect_keyword("attribute")
        name = self._expect_ident()
        self._expect_keyword("as")
        type_name = self._type_name()
        self._expect(TokenKind.SEMI)
        return AttributeDecl(name, type_name)

    def _source(self) -> SourceDecl:
        self._expect_keyword("source")
        name = self._expect_ident()
        self._expect_keyword("as")
        type_name = self._type_name()
        index_name = index_type = None
        if self._match_keyword("indexed"):
            self._expect_keyword("by")
            index_name = self._expect_ident()
            self._expect_keyword("as")
            index_type = self._type_name()
        timeout, retries = self._source_expectations()
        self._expect(TokenKind.SEMI)
        return SourceDecl(
            name, type_name, index_name, index_type, timeout, retries
        )

    def _source_expectations(self):
        """``expect timeout <2 s> retry 2`` — either part optional."""
        if not self._match_keyword("expect"):
            return None, 0
        timeout = None
        retries = 0
        matched = False
        if self._match_keyword("timeout"):
            timeout = self._duration()
            matched = True
        if self._match_keyword("retry"):
            count = self._expect(TokenKind.NUMBER)
            if "." in count.text:
                raise DiaSpecSyntaxError(
                    "retry count must be an integer",
                    line=count.line,
                    column=count.column,
                )
            retries = int(count.text)
            matched = True
        if not matched:
            raise self._error(
                "expected 'timeout <...>' and/or 'retry N' after 'expect'"
            )
        return timeout, retries

    def _action(self) -> ActionDecl:
        self._expect_keyword("action")
        name = self._expect_ident()
        params: Tuple[Param, ...] = ()
        if self._check(TokenKind.LPAREN):
            self._advance()
            params = self._params()
            self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMI)
        return ActionDecl(name, params)

    def _params(self) -> Tuple[Param, ...]:
        params: List[Param] = []
        while True:
            name = self._expect_ident()
            self._expect_keyword("as")
            params.append(Param(name, self._type_name()))
            if not self._check(TokenKind.COMMA):
                break
            self._advance()
        return tuple(params)

    # -- enumeration / structure -------------------------------------------

    def _enumeration(self) -> EnumerationDecl:
        self._expect_keyword("enumeration")
        name = self._expect_ident()
        self._expect(TokenKind.LBRACE)
        members: List[str] = [self._expect_ident()]
        while self._check(TokenKind.COMMA):
            self._advance()
            if self._check(TokenKind.RBRACE):
                break  # tolerate the trailing comma of Figure 6
            members.append(self._expect_ident())
        self._expect(TokenKind.RBRACE)
        return EnumerationDecl(name, tuple(members))

    def _structure(self) -> StructureDecl:
        self._expect_keyword("structure")
        name = self._expect_ident()
        self._expect(TokenKind.LBRACE)
        fields: List[Param] = []
        while not self._check(TokenKind.RBRACE):
            field_name = self._expect_ident()
            self._expect_keyword("as")
            fields.append(Param(field_name, self._type_name()))
            self._expect(TokenKind.SEMI)
        self._expect(TokenKind.RBRACE)
        return StructureDecl(name, tuple(fields))

    # -- context ------------------------------------------------------------

    def _context(self) -> ContextDecl:
        self._expect_keyword("context")
        name = self._expect_ident()
        self._expect_keyword("as")
        type_name = self._type_name()
        placement = None
        if self._check_keyword("at"):
            placement = self._placement_tier()
        self._expect(TokenKind.LBRACE)
        interactions: List[Interaction] = []
        deadline = None
        while not self._check(TokenKind.RBRACE):
            if self._check_keyword("expect"):
                deadline = self._deadline_clause(deadline)
                continue
            interactions.append(self._interaction())
        self._expect(TokenKind.RBRACE)
        return ContextDecl(
            name, type_name, tuple(interactions), deadline, placement
        )

    def _placement_tier(self) -> str:
        """``at edge`` / ``at cloud`` — tier names are contextual
        identifiers, not keywords, so devices named ``edge`` stay
        legal."""
        token = self._current
        self._expect_keyword("at")
        tier = self._expect_ident()
        if tier not in ("edge", "cloud"):
            raise DiaSpecSyntaxError(
                f"expected placement tier 'edge' or 'cloud', got '{tier}'",
                line=token.line,
                column=token.column,
            )
        return tier

    def _deadline_clause(self, existing) -> "Duration":
        """``expect deadline <50 ms>;`` inside a context/controller body."""
        token = self._current
        self._expect_keyword("expect")
        self._expect_keyword("deadline")
        deadline = self._duration()
        self._expect(TokenKind.SEMI)
        if existing is not None:
            raise DiaSpecSyntaxError(
                "duplicate 'expect deadline' clause",
                line=token.line,
                column=token.column,
            )
        return deadline

    def _interaction(self) -> Interaction:
        self._expect_keyword("when")
        if self._match_keyword("required"):
            self._expect(TokenKind.SEMI)
            return WhenRequired()
        if self._match_keyword("periodic"):
            source = self._expect_ident()
            self._expect_keyword("from")
            device = self._expect_ident()
            period = self._duration()
            group = self._group()
            gets = self._gets()
            publish = self._publish()
            self._expect(TokenKind.SEMI)
            return WhenPeriodic(source, device, period, group, gets, publish)
        self._expect_keyword("provided")
        subject = self._expect_ident()
        if self._match_keyword("from"):
            device = self._expect_ident()
            group = self._group()
            gets = self._gets()
            publish = self._publish()
            self._expect(TokenKind.SEMI)
            return WhenProvidedSource(subject, device, group, gets, publish)
        gets = self._gets()
        publish = self._publish()
        self._expect(TokenKind.SEMI)
        return WhenProvidedContext(subject, gets, publish)

    def _group(self) -> Optional[GroupBy]:
        if not self._match_keyword("grouped"):
            return None
        self._expect_keyword("by")
        attribute = self._expect_ident()
        window = None
        if self._match_keyword("every"):
            window = self._duration()
        map_type = reduce_type = None
        if self._match_keyword("with"):
            self._expect_keyword("map")
            self._expect_keyword("as")
            map_type = self._type_name()
            self._expect_keyword("reduce")
            self._expect_keyword("as")
            reduce_type = self._type_name()
        return GroupBy(attribute, window, map_type, reduce_type)

    def _gets(self) -> Tuple[GetClause, ...]:
        gets: List[GetClause] = []
        while self._match_keyword("get"):
            name = self._expect_ident()
            if self._match_keyword("from"):
                gets.append(GetSource(name, self._expect_ident()))
            else:
                gets.append(GetContext(name))
        return tuple(gets)

    def _publish(self) -> Publish:
        for publish in Publish:
            if self._match_keyword(publish.value):
                self._expect_keyword("publish")
                return publish
        raise self._error(
            "expected 'always publish', 'maybe publish' or 'no publish', "
            f"found {self._current.text!r}"
        )

    # -- controller ----------------------------------------------------------

    def _controller(self) -> ControllerDecl:
        self._expect_keyword("controller")
        name = self._expect_ident()
        self._expect(TokenKind.LBRACE)
        reactions: List[ControllerReaction] = []
        deadline = None
        while not self._check(TokenKind.RBRACE):
            if self._check_keyword("expect"):
                deadline = self._deadline_clause(deadline)
                continue
            reactions.append(self._reaction())
        self._expect(TokenKind.RBRACE)
        return ControllerDecl(name, tuple(reactions), deadline)

    def _reaction(self) -> ControllerReaction:
        self._expect_keyword("when")
        self._expect_keyword("provided")
        context = self._expect_ident()
        dos: List[DoClause] = []
        while self._match_keyword("do"):
            action = self._expect_ident()
            self._expect_keyword("on")
            dos.append(DoClause(action, self._expect_ident()))
        if not dos:
            raise self._error("a controller reaction needs at least one 'do'")
        self._expect(TokenKind.SEMI)
        return ControllerReaction(context, tuple(dos))
