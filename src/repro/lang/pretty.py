"""Canonical pretty-printer for DiaSpec ASTs.

``parse(pretty(spec)) == spec`` holds for every well-formed AST, which the
property-based test suite exercises; the printer is also used to render
taxonomies and generated designs into readable artifacts.
"""

from __future__ import annotations

from typing import List

from repro.lang.ast_nodes import (
    ActionDecl,
    ContextDecl,
    ControllerDecl,
    Declaration,
    DeviceDecl,
    EnumerationDecl,
    GetContext,
    GetSource,
    GroupBy,
    Interaction,
    Spec,
    StructureDecl,
    WhenPeriodic,
    WhenProvidedContext,
    WhenProvidedSource,
    WhenRequired,
)

_INDENT = "    "


def pretty(spec: Spec) -> str:
    """Render a :class:`Spec` as canonical DiaSpec source text."""
    chunks = [_declaration(declaration) for declaration in spec.declarations]
    return "\n\n".join(chunks) + ("\n" if chunks else "")


def _declaration(declaration: Declaration) -> str:
    if isinstance(declaration, DeviceDecl):
        return _device(declaration)
    if isinstance(declaration, EnumerationDecl):
        members = ", ".join(declaration.members)
        return f"enumeration {declaration.name} {{ {members} }}"
    if isinstance(declaration, StructureDecl):
        lines = [f"structure {declaration.name} {{"]
        for param in declaration.fields:
            lines.append(f"{_INDENT}{param.name} as {param.type_name};")
        lines.append("}")
        return "\n".join(lines)
    if isinstance(declaration, ContextDecl):
        return _context(declaration)
    if isinstance(declaration, ControllerDecl):
        return _controller(declaration)
    raise TypeError(f"unknown declaration {declaration!r}")


def _device(device: DeviceDecl) -> str:
    header = f"device {device.name}"
    if device.extends:
        header += f" extends {device.extends}"
    lines = [header + " {"]
    for attribute in device.attributes:
        lines.append(
            f"{_INDENT}attribute {attribute.name} as {attribute.type_name};"
        )
    for source in device.sources:
        text = f"{_INDENT}source {source.name} as {source.type_name}"
        if source.is_indexed:
            text += f" indexed by {source.index_name} as {source.index_type_name}"
        if source.has_error_policy:
            text += " expect"
            if source.timeout is not None:
                text += f" timeout {source.timeout}"
            if source.retries:
                text += f" retry {source.retries}"
        lines.append(text + ";")
    for action in device.actions:
        lines.append(f"{_INDENT}{_action(action)}")
    lines.append("}")
    return "\n".join(lines)


def _action(action: ActionDecl) -> str:
    if not action.params:
        return f"action {action.name};"
    params = ", ".join(f"{p.name} as {p.type_name}" for p in action.params)
    return f"action {action.name}({params});"


def _context(context: ContextDecl) -> str:
    header = f"context {context.name} as {context.type_name}"
    if context.placement is not None:
        header += f" at {context.placement}"
    lines = [header + " {"]
    if context.deadline is not None:
        lines.append(f"{_INDENT}expect deadline {context.deadline};")
        if context.interactions:
            lines.append("")
    for index, interaction in enumerate(context.interactions):
        if index:
            lines.append("")
        lines.extend(_INDENT + line for line in _interaction(interaction))
    lines.append("}")
    return "\n".join(lines)


def _interaction(interaction: Interaction) -> List[str]:
    if isinstance(interaction, WhenRequired):
        return ["when required;"]

    if isinstance(interaction, WhenProvidedSource):
        lines = [f"when provided {interaction.source} from {interaction.device}"]
        lines.extend(_group_lines(interaction.group))
    elif isinstance(interaction, WhenPeriodic):
        lines = [
            f"when periodic {interaction.source} from {interaction.device} "
            f"{interaction.period}"
        ]
        lines.extend(_group_lines(interaction.group))
    elif isinstance(interaction, WhenProvidedContext):
        lines = [f"when provided {interaction.context}"]
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown interaction {interaction!r}")

    for get in interaction.gets:
        if isinstance(get, GetSource):
            lines.append(f"get {get.source} from {get.device}")
        elif isinstance(get, GetContext):
            lines.append(f"get {get.context}")
    lines[-1] += ""
    lines.append(f"{interaction.publish.value} publish;")
    return lines


def _group_lines(group: GroupBy) -> List[str]:
    if group is None:
        return []
    lines = [f"grouped by {group.attribute}"]
    if group.window is not None:
        lines[0] += f" every {group.window}"
    if group.uses_mapreduce:
        lines.append(
            f"with map as {group.map_type_name} "
            f"reduce as {group.reduce_type_name}"
        )
    return lines


def _controller(controller: ControllerDecl) -> str:
    lines = [f"controller {controller.name} {{"]
    if controller.deadline is not None:
        lines.append(f"{_INDENT}expect deadline {controller.deadline};")
        if controller.reactions:
            lines.append("")
    for index, reaction in enumerate(controller.reactions):
        if index:
            lines.append("")
        lines.append(f"{_INDENT}when provided {reaction.context}")
        for do in reaction.dos:
            lines.append(f"{_INDENT}do {do.action} on {do.device}")
        lines[-1] += ";"
    lines.append("}")
    return "\n".join(lines)
