"""Abstract syntax tree for DiaSpec designs.

Nodes mirror the declarations of Figures 5-8 of the paper.  The tree is
immutable (frozen dataclasses): the semantic analyzer annotates a design by
building separate structures, never by mutating the AST, so a single parsed
spec can safely feed multiple analyses and code generators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple, Union


# --------------------------------------------------------------------------
# Shared leaf nodes
# --------------------------------------------------------------------------


_DURATION_SECONDS = {
    "ms": 0.001,
    "s": 1.0,
    "sec": 1.0,
    "min": 60.0,
    "hr": 3600.0,
    "day": 86400.0,
}


@dataclass(frozen=True)
class Duration:
    """A time span written ``<10 min>`` in a design.

    Units: ``ms``, ``s``/``sec``, ``min``, ``hr``, ``day``.
    """

    value: float
    unit: str

    def __post_init__(self):
        if self.unit not in _DURATION_SECONDS:
            raise ValueError(f"unknown duration unit {self.unit!r}")
        if self.value <= 0:
            raise ValueError("duration must be positive")

    @property
    def seconds(self) -> float:
        return self.value * _DURATION_SECONDS[self.unit]

    def __str__(self) -> str:
        value = int(self.value) if float(self.value).is_integer() else self.value
        return f"<{value} {self.unit}>"


@dataclass(frozen=True)
class Param:
    """A ``name as Type`` pair (action parameter or structure field)."""

    name: str
    type_name: str


class Publish(enum.Enum):
    """Publication discipline of a context interaction (Figure 7/8).

    ``ALWAYS``: every activation publishes a value; ``MAYBE``: an
    activation may decline to publish; ``NO``: the interaction never
    publishes (the context only refreshes internal state, e.g. the
    ``ParkingUsagePattern`` periodic interaction).
    """

    ALWAYS = "always"
    MAYBE = "maybe"
    NO = "no"


# --------------------------------------------------------------------------
# Device declarations (Figures 5 and 6)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class AttributeDecl:
    """``attribute parkingLot as ParkingLotEnum;``"""

    name: str
    type_name: str


@dataclass(frozen=True)
class SourceDecl:
    """``source answer as String indexed by questionId as String;``

    The optional ``expect timeout <2 s> retry 2`` clause declares the
    error-handling dimension the paper sketches in §III/§VI (citing its
    OOPSLA'10 predecessor [14]): reads that fail are retried up to
    *retries* times, and a driver taking longer than *timeout* counts as
    failed.
    """

    name: str
    type_name: str
    index_name: Optional[str] = None
    index_type_name: Optional[str] = None
    timeout: Optional[Duration] = None
    retries: int = 0

    @property
    def is_indexed(self) -> bool:
        return self.index_name is not None

    @property
    def has_error_policy(self) -> bool:
        return self.timeout is not None or self.retries > 0


@dataclass(frozen=True)
class ActionDecl:
    """``action update(status as String);`` — parameters may be empty."""

    name: str
    params: Tuple[Param, ...] = ()


@dataclass(frozen=True)
class DeviceDecl:
    """A ``device`` declaration, optionally extending another device."""

    name: str
    extends: Optional[str] = None
    attributes: Tuple[AttributeDecl, ...] = ()
    sources: Tuple[SourceDecl, ...] = ()
    actions: Tuple[ActionDecl, ...] = ()


# --------------------------------------------------------------------------
# Data declarations (Figure 8, bottom)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class EnumerationDecl:
    """``enumeration ParkingLotEnum { A22, B16, D6 }``"""

    name: str
    members: Tuple[str, ...]


@dataclass(frozen=True)
class StructureDecl:
    """``structure Availability { parkingLot as ParkingLotEnum; count as Integer; }``"""

    name: str
    fields: Tuple[Param, ...]


# --------------------------------------------------------------------------
# Context declarations (Figures 7 and 8)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class GroupBy:
    """The ``grouped by`` construct, optionally windowed and MapReduce-typed.

    ``grouped by parkingLot every <24 hr> with map as Boolean reduce as
    Integer`` — *attribute* partitions readings by a device attribute;
    *window* accumulates successive deliveries before publication (the
    ``AverageOccupancy`` context); *map_type*/*reduce_type* declare the
    value types of the Map and Reduce phases, exposing parallelism
    (Section IV.2 of the paper).
    """

    attribute: str
    window: Optional[Duration] = None
    map_type_name: Optional[str] = None
    reduce_type_name: Optional[str] = None

    @property
    def uses_mapreduce(self) -> bool:
        return self.map_type_name is not None


@dataclass(frozen=True)
class GetSource:
    """``get consumption from Cooker`` — query-driven pull from a device."""

    source: str
    device: str


@dataclass(frozen=True)
class GetContext:
    """``get ParkingUsagePattern`` — pull the current value of a context."""

    context: str


GetClause = Union[GetSource, GetContext]


@dataclass(frozen=True)
class WhenProvidedSource:
    """Event-driven subscription: ``when provided tickSecond from Clock``."""

    source: str
    device: str
    group: Optional[GroupBy] = None
    gets: Tuple[GetClause, ...] = ()
    publish: Publish = Publish.ALWAYS


@dataclass(frozen=True)
class WhenPeriodic:
    """Periodic gathering: ``when periodic presence from PresenceSensor <10 min>``."""

    source: str
    device: str
    period: Duration = field(default=Duration(1, "s"))
    group: Optional[GroupBy] = None
    gets: Tuple[GetClause, ...] = ()
    publish: Publish = Publish.ALWAYS


@dataclass(frozen=True)
class WhenProvidedContext:
    """Subscription to another context: ``when provided ParkingAvailability``."""

    context: str
    gets: Tuple[GetClause, ...] = ()
    publish: Publish = Publish.ALWAYS


@dataclass(frozen=True)
class WhenRequired:
    """``when required;`` — the context serves query-driven pulls."""


Interaction = Union[
    WhenProvidedSource, WhenPeriodic, WhenProvidedContext, WhenRequired
]


@dataclass(frozen=True)
class ContextDecl:
    """A ``context`` declaration with its result type and interactions.

    ``deadline`` is the optional QoS bound declared by an
    ``expect deadline <50 ms>;`` body clause (§VI: quality-of-service as a
    design-level dimension, citing [15]): the runtime monitors activation
    durations against it.

    ``placement`` is the optional ``at edge`` / ``at cloud`` continuum
    annotation (``context Average as Float at edge { ... }``): where the
    runtime's placement tier executes the context's aggregation.  Kept
    as the annotation string — tier semantics live in
    ``repro.runtime.placement``, which the language layer must not
    import.
    """

    name: str
    type_name: str
    interactions: Tuple[Interaction, ...] = ()
    deadline: Optional[Duration] = None
    placement: Optional[str] = None

    @property
    def is_queryable(self) -> bool:
        """True when the design includes a ``when required`` interaction."""
        return any(isinstance(i, WhenRequired) for i in self.interactions)


# --------------------------------------------------------------------------
# Controller declarations
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DoClause:
    """``do update on ParkingEntrancePanel``"""

    action: str
    device: str


@dataclass(frozen=True)
class ControllerReaction:
    """``when provided <context> do <action> on <device> [do ...];``"""

    context: str
    dos: Tuple[DoClause, ...]


@dataclass(frozen=True)
class ControllerDecl:
    """A ``controller`` declaration, with an optional QoS deadline."""

    name: str
    reactions: Tuple[ControllerReaction, ...] = ()
    deadline: Optional[Duration] = None


Declaration = Union[
    DeviceDecl, EnumerationDecl, StructureDecl, ContextDecl, ControllerDecl
]


@dataclass(frozen=True)
class Spec:
    """A complete DiaSpec design: an ordered set of declarations."""

    declarations: Tuple[Declaration, ...] = ()

    def of_kind(self, node_type: type) -> Tuple[Declaration, ...]:
        return tuple(d for d in self.declarations if isinstance(d, node_type))

    @property
    def devices(self) -> Tuple[DeviceDecl, ...]:
        return self.of_kind(DeviceDecl)  # type: ignore[return-value]

    @property
    def contexts(self) -> Tuple[ContextDecl, ...]:
        return self.of_kind(ContextDecl)  # type: ignore[return-value]

    @property
    def controllers(self) -> Tuple[ControllerDecl, ...]:
        return self.of_kind(ControllerDecl)  # type: ignore[return-value]

    @property
    def enumerations(self) -> Tuple[EnumerationDecl, ...]:
        return self.of_kind(EnumerationDecl)  # type: ignore[return-value]

    @property
    def structures(self) -> Tuple[StructureDecl, ...]:
        return self.of_kind(StructureDecl)  # type: ignore[return-value]
