"""Inversion-of-control runtime for orchestrating applications.

The runtime is what the generated programming frameworks of the paper run
on: it binds entity instances (Section IV, *binding entities*), delivers
data through the three models — event-driven, periodic, query-driven
(*delivering data*), partitions and optionally MapReduces gathered data
(*processing data*), and issues actions through discovered proxies
(*actuating entities*).

The central class is :class:`~repro.runtime.app.Application`: give it an
analyzed design, device instances and context/controller implementations,
then ``start()`` it and drive the clock.
"""

from repro.runtime.app import Application
from repro.runtime.binding import BindingTime, Deployment
from repro.runtime.bus import EventBus
from repro.runtime.descriptor import (
    DeploymentDescriptor,
    DriverCatalog,
    apply_descriptor,
    load_descriptor,
)
from repro.runtime.qos import QoSMonitor
from repro.runtime.tracing import Tracer
from repro.runtime.clock import Clock, ScheduledJob, SimulationClock, WallClock
from repro.runtime.component import (
    Context,
    ContextEvent,
    Controller,
    GatherReading,
    Publishable,
    SourceEvent,
)
from repro.runtime.device import CallableDriver, DeviceDriver, DeviceInstance
from repro.runtime.discovery import Discover
from repro.runtime.proxies import DeviceProxy, ProxySet
from repro.runtime.registry import EntityRegistry
from repro.runtime.sweep import SweepConfig, SweepEngine

__all__ = [
    "Application",
    "BindingTime",
    "CallableDriver",
    "Clock",
    "Context",
    "ContextEvent",
    "Controller",
    "GatherReading",
    "Publishable",
    "Deployment",
    "DeploymentDescriptor",
    "DeviceDriver",
    "DriverCatalog",
    "QoSMonitor",
    "Tracer",
    "apply_descriptor",
    "load_descriptor",
    "DeviceInstance",
    "DeviceProxy",
    "Discover",
    "EntityRegistry",
    "EventBus",
    "ProxySet",
    "ScheduledJob",
    "SimulationClock",
    "SourceEvent",
    "SweepConfig",
    "SweepEngine",
    "WallClock",
]
