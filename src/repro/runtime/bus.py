"""Synchronous topic-based publish/subscribe bus.

The bus is the delivery backbone of the runtime: device sources publish
readings, contexts publish refined values, and subscribers (contexts,
controllers) are invoked synchronously in subscription order — which the
application sets up in SCC layer order, making whole-application dispatch
deterministic.

Topics are plain hashable tuples; the conventions used by the runtime:

* ``("source", device_type, source_name)`` — a reading from any instance
  of ``device_type`` (subtype instances publish under every ancestor type
  as well, so subscriptions against a supertype see them);
* ``("context", context_name)`` — a context's published value.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List

Subscriber = Callable[[Any], None]


@dataclass(order=True)
class _Subscription:
    order: int
    topic: Hashable = field(compare=False)
    callback: Subscriber = field(compare=False)
    active: bool = field(compare=False, default=True)

    def unsubscribe(self) -> None:
        self.active = False


class EventBus:
    """Deterministic synchronous pub/sub."""

    def __init__(self):
        self._topics: Dict[Hashable, List[_Subscription]] = {}
        self._counter = itertools.count()
        self._delivered = 0
        self._published = 0

    def subscribe(self, topic: Hashable, callback: Subscriber) -> _Subscription:
        """Register ``callback`` for ``topic``; returns an unsubscribe handle."""
        subscription = _Subscription(next(self._counter), topic, callback)
        self._topics.setdefault(topic, []).append(subscription)
        return subscription

    def publish(self, topic: Hashable, payload: Any) -> int:
        """Deliver ``payload`` to current subscribers; returns delivery count.

        Subscribers added *during* delivery do not receive this event
        (snapshot semantics), keeping runtime entity binding race-free.
        """
        self._published += 1
        subscriptions = list(self._topics.get(topic, ()))
        delivered = 0
        for subscription in subscriptions:
            if subscription.active:
                subscription.callback(payload)
                delivered += 1
        self._delivered += delivered
        self._compact(topic)
        return delivered

    def subscriber_count(self, topic: Hashable) -> int:
        return sum(1 for s in self._topics.get(topic, ()) if s.active)

    @property
    def stats(self) -> Dict[str, int]:
        """Counters used by the delivery-model benchmarks."""
        return {"published": self._published, "delivered": self._delivered}

    def _compact(self, topic: Hashable) -> None:
        subscriptions = self._topics.get(topic)
        if subscriptions and any(not s.active for s in subscriptions):
            self._topics[topic] = [s for s in subscriptions if s.active]
