"""Synchronous topic-based publish/subscribe bus.

The bus is the delivery backbone of the runtime: device sources publish
readings, contexts publish refined values, and subscribers (contexts,
controllers) are invoked synchronously in subscription order — which the
application sets up in SCC layer order, making whole-application dispatch
deterministic.

Topics are plain hashable tuples; the conventions used by the runtime:

* ``("source", device_type, source_name)`` — a reading from any instance
  of ``device_type`` (subtype instances publish under every ancestor type
  as well, so subscriptions against a supertype see them);
* ``("context", context_name)`` — a context's published value.

Publishing is the hottest path of a periodic deployment (every sweep of
every sensor funnels through it), so the per-topic subscriber snapshot is
cached: it is rebuilt only when a subscription was added or removed since
the last publish on that topic, not copied on every publish.

Delivery counters are plain integers bumped inline; when a
:class:`~repro.telemetry.MetricsRegistry` is attached (the application
always attaches its own), they are exported as pull-time callback
metrics — the publish path itself pays nothing for telemetry, which the
``bench_telemetry_overhead`` benchmark enforces.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Tuple

from repro.telemetry.instrument import Instrumented, MetricSpec

Subscriber = Callable[[Any], None]


@dataclass(order=True)
class _Subscription:
    order: int
    topic: Hashable = field(compare=False)
    callback: Subscriber = field(compare=False)
    active: bool = field(compare=False, default=True)
    bus: Optional["EventBus"] = field(compare=False, default=None, repr=False)

    def unsubscribe(self) -> None:
        if self.active:
            self.active = False
            if self.bus is not None:
                self.bus._invalidate(self.topic)


class EventBus(Instrumented):
    """Deterministic synchronous pub/sub.

    The delivery counters are plain inline integers exported through the
    shared :class:`Instrumented` protocol as pull-time callbacks, so
    attaching telemetry adds zero work per publish.
    """

    metric_specs = (
        MetricSpec(
            "bus_published_total",
            "_published",
            stats_key="published",
            resettable=True,
            help="Events published on the bus.",
        ),
        MetricSpec(
            "bus_delivered_total",
            "_delivered",
            stats_key="delivered",
            resettable=True,
            help="Subscriber deliveries performed by the bus.",
        ),
        MetricSpec(
            "bus_snapshot_rebuilds_total",
            "_snapshot_rebuilds",
            help="Per-topic subscriber snapshots rebuilt after churn.",
        ),
        MetricSpec(
            "bus_topics",
            "_topic_count",
            kind="gauge",
            help="Topics with at least one subscription ever made.",
        ),
        MetricSpec(
            "bus_subscriptions",
            "_active_subscription_count",
            kind="gauge",
            help="Currently active subscriptions.",
        ),
    )

    def __init__(self, metrics=None):
        self._topics: Dict[Hashable, List[_Subscription]] = {}
        # Per-topic immutable snapshot of active subscriptions, rebuilt
        # lazily after a subscribe/unsubscribe touched the topic.
        self._snapshots: Dict[Hashable, Tuple[_Subscription, ...]] = {}
        self._counter = itertools.count()
        self._delivered = 0
        self._published = 0
        self._snapshot_rebuilds = 0
        self._epoch = 0
        if metrics is not None:
            self.attach_metrics(metrics)

    @property
    def epoch(self) -> int:
        """Monotonic subscription-change counter.

        Bumped on every subscribe and unsubscribe; consumers caching
        values derived from the subscription set (the delivery planner's
        compiled dispatch tables) capture the epoch at compile time and
        treat any later change as expiry."""
        return self._epoch

    def _topic_count(self) -> int:
        return len(self._topics)

    def _active_subscription_count(self) -> int:
        return sum(
            1
            for subscriptions in self._topics.values()
            for s in subscriptions
            if s.active
        )

    def subscribe(self, topic: Hashable, callback: Subscriber) -> _Subscription:
        """Register ``callback`` for ``topic``; returns an unsubscribe handle."""
        subscription = _Subscription(
            next(self._counter), topic, callback, bus=self
        )
        self._topics.setdefault(topic, []).append(subscription)
        self._snapshots.pop(topic, None)
        self._epoch += 1
        return subscription

    def publish(self, topic: Hashable, payload: Any) -> int:
        """Deliver ``payload`` to current subscribers; returns delivery count.

        Subscribers added *during* delivery do not receive this event
        (snapshot semantics), keeping runtime entity binding race-free.
        """
        self._published += 1
        snapshot = self._snapshots.get(topic)
        if snapshot is None:
            snapshot = self._rebuild_snapshot(topic)
        delivered = 0
        for subscription in snapshot:
            # A subscription cancelled mid-delivery stays in this (stale)
            # snapshot but must not fire.
            if subscription.active:
                subscription.callback(payload)
                delivered += 1
        self._delivered += delivered
        return delivered

    def _rebuild_snapshot(
        self, topic: Hashable
    ) -> Tuple[_Subscription, ...]:
        """Compact the topic's subscription list and cache the snapshot."""
        self._snapshot_rebuilds += 1
        subscriptions = self._topics.get(topic)
        if not subscriptions:
            snapshot: Tuple[_Subscription, ...] = ()
        else:
            if any(not s.active for s in subscriptions):
                subscriptions = [s for s in subscriptions if s.active]
                self._topics[topic] = subscriptions
            snapshot = tuple(subscriptions)
        self._snapshots[topic] = snapshot
        return snapshot

    def _invalidate(self, topic: Hashable) -> None:
        self._snapshots.pop(topic, None)
        self._epoch += 1

    def snapshot(self, topic: Hashable) -> Tuple[_Subscription, ...]:
        """The topic's current active-subscription snapshot (cached).

        This is the same tuple :meth:`publish` iterates, exposed so the
        delivery planner can flatten several topics' subscribers into
        one compiled dispatch table."""
        snapshot = self._snapshots.get(topic)
        if snapshot is None:
            snapshot = self._rebuild_snapshot(topic)
        return snapshot

    def dispatch_compiled(
        self, targets, topic_count: int, payload: Any
    ) -> int:
        """Deliver ``payload`` through a precompiled dispatch table.

        ``targets`` is a flat sequence of subscriptions (what a plan
        stores) standing in for ``topic_count`` individual topic
        publishes; counters advance exactly as if each topic had been
        published separately, so bus stats stay truthful whichever path
        delivered the event."""
        self._published += topic_count
        delivered = 0
        for subscription in targets:
            # Same stale-snapshot rule as publish(): a subscription
            # cancelled mid-delivery must not fire.
            if subscription.active:
                subscription.callback(payload)
                delivered += 1
        self._delivered += delivered
        return delivered

    def subscriber_count(self, topic: Hashable) -> int:
        return sum(1 for s in self._topics.get(topic, ()) if s.active)
