"""Freshness-aware read cache for query-driven delivery.

The paper's "delivering data" activity names three WSN delivery models
(Section III); periodic sweeps got their fast path in the streaming and
concurrent-sweep work, but the **query-driven** model still paid one
driver round-trip per read: every ``query_context`` pull, every
on-demand proxy read, every sweep re-polled the device even when the
same source had been read milliseconds earlier by another context.
When many orchestration apps observe one fleet — D-LITe choreographies
sharing device state, DiaSpec robotics deployments reusing sensor
streams — that is the dominant cost.

:class:`ReadCache` closes the gap.  It memoizes
:meth:`~repro.runtime.device.DeviceInstance.read` results per
``(entity_id, source)`` under a configurable freshness TTL measured on
the **application clock**, so :class:`~repro.runtime.clock.SimulationClock`
replays stay deterministic.  Three mechanisms keep cached values honest:

* **Freshness TTL** — a hit is served only while the entry is at most
  ``ttl_seconds`` old; after that the next read goes to the driver.
* **Single-flight coalescing** — when concurrent callers (threaded
  sweep workers, parallel query pulls) miss on the same key, exactly
  one performs the underlying driver read; the rest block on its result
  (or its exception) instead of issuing duplicate reads.
* **Invalidation hooks** — an actuation on a device drops every cached
  source of that device (the physical state its sources report may
  have changed); an event-driven publish drops the publisher's entry
  for that source and, when ``shard_attribute`` is configured, every
  cached entry of the same source in the publisher's attribute shard.
  Every invalidation bumps a monotonically increasing ``generation``
  that the application's context memoization checks, so actuations
  implicitly expire memoized context results too.

The cache is **off by default**: ``CacheConfig(enabled=False)`` leaves
``Application.read_cache`` as ``None`` and the device read path
byte-identical to the uncached runtime.

Observability follows the
:class:`~repro.telemetry.instrument.Instrumented` protocol: hit, miss,
coalesced and invalidation counters are pull-time callbacks, and
``attach_metrics`` additionally creates a cached-age histogram
(``read_cache_age_seconds``) observed on every hit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set, Tuple

from repro.runtime.configbase import ConfigBase
from repro.telemetry.instrument import Instrumented, MetricSpec

__all__ = ["CacheConfig", "ReadCache"]

# Cached-age buckets: a hot query path serves entries microseconds old;
# a slow periodic deployment may serve entries near a multi-minute TTL.
CACHE_AGE_BUCKETS = (
    0.001,
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    15.0,
    60.0,
    300.0,
)

_CacheKey = Tuple[str, str]


@dataclass(frozen=True)
class CacheConfig(ConfigBase):
    """How the query-driven read fast path behaves.

    * ``enabled`` — master switch; ``False`` (default) keeps the
      historical behaviour exactly (no cache object is even created).
    * ``ttl_seconds`` — freshness window for device reads, in
      application-clock seconds.  ``0`` caches only within a single
      simulated instant (still enough to collapse a burst of queries
      issued at one timestamp).
    * ``coalesce`` — single-flight concurrent misses on the same key
      through one underlying driver read.
    * ``invalidate_on_publish`` — an event-driven publish drops the
      publisher's cached entry for that source (the push supersedes
      it).
    * ``shard_attribute`` — attribute name defining invalidation
      shards; a publish then also drops same-source entries of every
      cached device whose attribute value matches the publisher's
      (e.g. one presence push invalidates the whole ``parkingLot``).
      ``None`` (default) keeps invalidation per-entity.
    * ``memoize_contexts`` — layer the context memoization pass on
      top: ``query_context`` results are reused within
      ``context_ttl_seconds`` (until any invalidation), and periodic
      gathers whose merged payload hash is unchanged skip the
      recompute-and-republish entirely.
    * ``context_ttl_seconds`` — freshness window for memoized context
      queries; ``None`` (default) reuses ``ttl_seconds``.
    """

    enabled: bool = False
    ttl_seconds: float = 1.0
    coalesce: bool = True
    invalidate_on_publish: bool = True
    shard_attribute: Optional[str] = None
    memoize_contexts: bool = True
    context_ttl_seconds: Optional[float] = None

    def __post_init__(self):
        if self.ttl_seconds < 0:
            raise ValueError("ttl_seconds must be >= 0")
        if (
            self.context_ttl_seconds is not None
            and self.context_ttl_seconds < 0
        ):
            raise ValueError("context_ttl_seconds must be >= 0 or None")

    @property
    def context_ttl(self) -> float:
        """Effective freshness window for memoized context results."""
        if self.context_ttl_seconds is not None:
            return self.context_ttl_seconds
        return self.ttl_seconds


class _Flight:
    """One in-progress underlying read that coalesced callers await."""

    __slots__ = ("event", "value", "error")

    def __init__(self):
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None


class ReadCache(Instrumented):
    """Freshness-aware, single-flight memo of device source reads.

    One cache serves a whole application: sweeps, proxy reads and
    ``query_context`` pulls share entries, which is exactly what makes
    the shared-sensor pattern cheap — the first reader pays the driver
    round-trip, everyone else within the freshness window rides it.

    All public methods are thread-safe; the underlying read runs
    outside the lock so slow drivers never serialize unrelated keys.
    """

    metric_specs = (
        MetricSpec(
            "read_cache_hits_total",
            "_hits",
            stats_key="hits",
            resettable=True,
            help="Device reads served from the freshness cache.",
        ),
        MetricSpec(
            "read_cache_misses_total",
            "_misses",
            stats_key="misses",
            resettable=True,
            help="Device reads that went to the driver (cold or stale "
            "entry).",
        ),
        MetricSpec(
            "read_cache_coalesced_total",
            "_coalesced",
            stats_key="coalesced",
            resettable=True,
            help="Concurrent reads that shared another caller's "
            "in-flight driver read (single-flight).",
        ),
        MetricSpec(
            "read_cache_invalidations_total",
            "_invalidations",
            stats_key="invalidations",
            resettable=True,
            help="Cached entries dropped by actuations, publishes or "
            "explicit invalidation.",
        ),
        MetricSpec(
            "read_cache_entries",
            "entry_count",
            kind="gauge",
            help="Entries currently cached (fresh or expired-in-place).",
        ),
    )

    def __init__(
        self, clock, config: Optional[CacheConfig] = None, metrics=None
    ):
        self.clock = clock
        self.config = config if config is not None else CacheConfig()
        self._lock = threading.Lock()
        # key -> (value, stamp, shard); expired entries stay in place
        # until overwritten or invalidated (freshness is checked on
        # every hit, so staleness can never be served).
        self._entries: Dict[_CacheKey, Tuple[Any, float, Any]] = {}
        self._by_entity: Dict[str, Set[_CacheKey]] = {}
        self._by_shard: Dict[Tuple[str, Any], Set[_CacheKey]] = {}
        self._flights: Dict[_CacheKey, _Flight] = {}
        self._generation = 0
        self._hits = 0
        self._misses = 0
        self._coalesced = 0
        self._invalidations = 0
        self._m_age = None
        if metrics is not None:
            self.attach_metrics(metrics)

    # -- observability -------------------------------------------------------

    def attach_metrics(self, metrics, **labels: Any) -> None:
        """Counters via the Instrumented protocol, plus the cached-age
        histogram observed on every hit."""
        super().attach_metrics(metrics, **labels)
        self._m_age = metrics.histogram(
            "read_cache_age_seconds",
            help="Age of cached readings at the moment they were "
            "served (application-clock seconds).",
            buckets=CACHE_AGE_BUCKETS,
            **labels,
        )

    def entry_count(self) -> int:
        return len(self._entries)

    # -- live retuning -------------------------------------------------------

    def reconfigure(self, config: CacheConfig) -> None:
        """Swap the cache section live.

        TTLs, coalescing and invalidation scope are read per call, so
        swapping the record is the whole job — existing entries keep
        their stamps and are re-judged against the new TTL on their
        next hit.  The cache cannot be disabled live (its existence is
        structural wiring); ``Application.apply_config`` enforces that
        before calling here.
        """
        if not config.enabled:
            raise ValueError(
                "a live ReadCache cannot be reconfigured to disabled"
            )
        self.config = config

    def _extra_stats(self) -> Dict[str, Any]:
        return {
            "entries": len(self._entries),
            "generation": self._generation,
            "ttl_seconds": self.config.ttl_seconds,
            "coalesce": self.config.coalesce,
        }

    @property
    def generation(self) -> int:
        """Monotonic invalidation counter.

        Consumers memoizing values *derived from* cached reads (the
        application's context memoization) record the generation at
        compute time and treat any later invalidation as expiry."""
        return self._generation

    # -- the fast path -------------------------------------------------------

    def get_or_read(self, instance, source: str, read_fn) -> Any:
        """Serve ``(instance, source)`` from cache or via ``read_fn``.

        ``read_fn`` is the full supervised read (retries, timeouts,
        breaker accounting); it runs at most once per miss no matter
        how many callers coalesce onto it.  A hit never touches the
        driver, the circuit breaker or the supervisor — cached
        freshness is served even while the breaker is open, and a hit
        neither probes nor heals a degraded entity.
        """
        key = (instance.entity_id, source)
        ttl = self.config.ttl_seconds
        flight: Optional[_Flight] = None
        wait_for: Optional[_Flight] = None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                age = self.clock.now() - entry[1]
                if age <= ttl:
                    self._hits += 1
                    if self._m_age is not None:
                        self._m_age.observe(age)
                    return entry[0]
            if self.config.coalesce:
                wait_for = self._flights.get(key)
                if wait_for is None:
                    flight = _Flight()
                    self._flights[key] = flight
                    self._misses += 1
                else:
                    self._coalesced += 1
            else:
                self._misses += 1
        if wait_for is not None:
            wait_for.event.wait()
            if wait_for.error is not None:
                raise wait_for.error
            return wait_for.value
        try:
            value = read_fn()
        except BaseException as exc:
            # Failed reads cache nothing; followers see the same error
            # (one physical failure, one breaker tick, N callers told).
            if flight is not None:
                with self._lock:
                    self._flights.pop(key, None)
                flight.error = exc
                flight.event.set()
            raise
        self._store(key, value, instance)
        if flight is not None:
            flight.value = value
            with self._lock:
                self._flights.pop(key, None)
            flight.event.set()
        return value

    def peek(self, entity_id: str, source: str):
        """The fresh cached value as ``(value, age)``, else ``None``
        (wrapped so a cached ``None`` reading is distinguishable)."""
        with self._lock:
            entry = self._entries.get((entity_id, source))
            if entry is None:
                return None
            age = self.clock.now() - entry[1]
            if age > self.config.ttl_seconds:
                return None
            return entry[0], age

    def lookup(self, entity_id: str, source: str):
        """A *counting* peek: like :meth:`peek`, but a fresh entry is
        recorded as a hit (with its age observed) exactly as
        :meth:`get_or_read` would record it.

        The columnar gather path uses this to pull cache-fresh entities
        out of a batch cohort before the batch read — those reads are
        served by the cache, so they must count as cache hits.
        """
        with self._lock:
            entry = self._entries.get((entity_id, source))
            if entry is None:
                return None
            age = self.clock.now() - entry[1]
            if age > self.config.ttl_seconds:
                return None
            self._hits += 1
            if self._m_age is not None:
                self._m_age.observe(age)
            return entry[0], age

    def store(self, instance, source: str, value: Any) -> None:
        """Populate the cache from a read that bypassed
        :meth:`get_or_read` — one slot of a driver-level batch column.

        Counts as a miss (the driver was genuinely consulted), so
        hit/miss arithmetic stays comparable between scalar and batch
        runs.
        """
        with self._lock:
            self._misses += 1
        self._store((instance.entity_id, source), value, instance)

    def _store(self, key: _CacheKey, value: Any, instance) -> None:
        shard = None
        attr = self.config.shard_attribute
        if attr is not None:
            shard = instance.attributes.get(attr)
        with self._lock:
            old = self._entries.get(key)
            if old is not None and old[2] is not None and old[2] != shard:
                self._discard_from_shard(key, old[2])
            self._entries[key] = (value, self.clock.now(), shard)
            self._by_entity.setdefault(key[0], set()).add(key)
            if shard is not None:
                self._by_shard.setdefault((key[1], shard), set()).add(key)

    # -- invalidation --------------------------------------------------------

    def invalidate(self, entity_id: str, source: Optional[str] = None) -> int:
        """Drop the entity's cached sources (or just ``source``).

        Called by :meth:`DeviceInstance.act` after any actuation that
        reached the driver, and on unbind.  Bumps the generation even
        when nothing was cached: the actuation changed the world, so
        derived memoizations must expire regardless.
        """
        with self._lock:
            self._generation += 1
            keys = self._by_entity.get(entity_id)
            if not keys:
                return 0
            doomed = [
                key for key in keys if source is None or key[1] == source
            ]
            for key in doomed:
                self._remove(key)
            self._invalidations += len(doomed)
            return len(doomed)

    def invalidate_shard(self, source: str, shard: Any) -> int:
        """Drop every cached entry of ``source`` in one attribute shard."""
        with self._lock:
            self._generation += 1
            keys = self._by_shard.get((source, shard))
            if not keys:
                return 0
            doomed = list(keys)
            for key in doomed:
                self._remove(key)
            self._invalidations += len(doomed)
            return len(doomed)

    def on_publish(self, instance, source: str) -> int:
        """Invalidate after an event-driven publish from ``instance``.

        The push supersedes whatever was cached for the publisher; with
        a ``shard_attribute`` configured the publish also invalidates
        the publisher's whole attribute shard (one sensor announcing a
        change is evidence the shard's state moved).
        """
        if not self.config.invalidate_on_publish:
            return 0
        removed = self.invalidate(instance.entity_id, source)
        attr = self.config.shard_attribute
        if attr is not None:
            shard = instance.attributes.get(attr)
            if shard is not None:
                removed += self.invalidate_shard(source, shard)
        return removed

    def apply_invalidations(self, items) -> int:
        """Apply a batch of routed invalidation records.

        The process-sharded runtime piggybacks coordinator-side
        invalidation decisions on the next worker command instead of a
        dedicated round-trip; each record is either ``("entity",
        entity_id, source_or_None)`` or ``("cohort", source,
        shard_value)`` (the ``shard_attribute`` cohort drop a publish
        triggers).  Returns the number of entries removed.
        """
        removed = 0
        for record in items:
            kind = record[0]
            if kind == "entity":
                removed += self.invalidate(record[1], record[2])
            elif kind == "cohort":
                removed += self.invalidate_shard(record[1], record[2])
            else:
                raise ValueError(f"unknown invalidation record kind: {kind!r}")
        return removed

    def clear(self) -> int:
        """Drop every entry (counts as one generation bump)."""
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            self._by_entity.clear()
            self._by_shard.clear()
            self._generation += 1
            self._invalidations += removed
            return removed

    # -- internals -----------------------------------------------------------

    def _remove(self, key: _CacheKey) -> None:
        entry = self._entries.pop(key, None)
        entity_keys = self._by_entity.get(key[0])
        if entity_keys is not None:
            entity_keys.discard(key)
            if not entity_keys:
                del self._by_entity[key[0]]
        if entry is not None and entry[2] is not None:
            self._discard_from_shard(key, entry[2])

    def _discard_from_shard(self, key: _CacheKey, shard: Any) -> None:
        shard_keys = self._by_shard.get((key[1], shard))
        if shard_keys is not None:
            shard_keys.discard(key)
            if not shard_keys:
                del self._by_shard[(key[1], shard)]

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"<ReadCache entries={len(self._entries)} "
            f"ttl={self.config.ttl_seconds}s hits={self._hits} "
            f"misses={self._misses}>"
        )
