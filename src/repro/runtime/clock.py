"""Time sources for the runtime.

Designs speak in physical time (``<10 min>``, ``<24 hr>``), so the runtime
is built against an abstract :class:`Clock`.  Two implementations:

* :class:`SimulationClock` — a discrete-event virtual clock.  Jobs run when
  the test or benchmark *advances* time, so a 24-hour parking study
  executes in milliseconds and is perfectly deterministic (ties are broken
  by scheduling order).
* :class:`WallClock` — thin wrapper over real time and ``threading.Timer``
  for actual deployments.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol


@dataclass(order=True)
class ScheduledJob:
    """A pending callback.  Comparison orders by (time, sequence number)."""

    when: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    period: Optional[float] = field(compare=False, default=None)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class Clock(Protocol):
    """What the runtime needs from a time source."""

    def now(self) -> float:
        """Current time in seconds."""

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> ScheduledJob:
        """Run ``callback`` once, ``delay`` seconds from now."""

    def schedule_periodic(
        self, period: float, callback: Callable[[], None]
    ) -> ScheduledJob:
        """Run ``callback`` every ``period`` seconds, starting one period
        from now."""


class SimulationClock:
    """Deterministic discrete-event clock.

    >>> clock = SimulationClock()
    >>> fired = []
    >>> _ = clock.schedule(5.0, lambda: fired.append(clock.now()))
    >>> clock.advance(10.0)
    >>> fired
    [5.0]
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._heap: List[ScheduledJob] = []
        self._counter = itertools.count()

    def now(self) -> float:
        return self._now

    def schedule(self, delay, callback) -> ScheduledJob:
        if delay < 0:
            raise ValueError("delay must be >= 0")
        job = ScheduledJob(self._now + delay, next(self._counter), callback)
        heapq.heappush(self._heap, job)
        return job

    def schedule_periodic(self, period, callback) -> ScheduledJob:
        if period <= 0:
            raise ValueError("period must be > 0")
        job = ScheduledJob(
            self._now + period, next(self._counter), callback, period=period
        )
        heapq.heappush(self._heap, job)
        return job

    def advance(self, duration: float) -> int:
        """Advance virtual time by ``duration`` seconds, firing due jobs.

        Returns the number of callbacks executed.  Callbacks may schedule
        further jobs; anything falling within the window fires too.
        """
        if duration < 0:
            raise ValueError("cannot advance backwards")
        return self.run_until(self._now + duration)

    def run_until(self, deadline: float) -> int:
        """Advance virtual time to ``deadline``, firing due jobs."""
        fired = 0
        while self._heap and self._heap[0].when <= deadline:
            job = heapq.heappop(self._heap)
            if job.cancelled:
                continue
            self._now = job.when
            if job.period is not None:
                # Re-arm before running so a raising callback cannot kill
                # the periodic schedule; the caller's handle (this same
                # object) keeps working for cancellation.
                job.when += job.period
                job.sequence = next(self._counter)
                heapq.heappush(self._heap, job)
            job.callback()
            fired += 1
        self._now = max(self._now, deadline)
        return fired

    def pending(self) -> int:
        """Number of scheduled (non-cancelled) jobs."""
        return sum(1 for job in self._heap if not job.cancelled)

    def next_event_at(self) -> Optional[float]:
        for job in sorted(self._heap):
            if not job.cancelled:
                return job.when
        return None


class WallClock:
    """Real-time clock backed by ``threading.Timer``.

    Used for actual deployments; the simulation clock is preferred for
    tests and benchmarks.  ``cancel()`` on the returned job stops both
    one-shot and periodic schedules.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._counter = itertools.count()
        self._timers: List[threading.Timer] = []

    def now(self) -> float:
        return time.monotonic()

    def schedule(self, delay, callback) -> ScheduledJob:
        job = ScheduledJob(self.now() + delay, next(self._counter), callback)

        def fire():
            if not job.cancelled:
                callback()

        timer = threading.Timer(delay, fire)
        timer.daemon = True
        with self._lock:
            self._timers.append(timer)
        timer.start()
        return job

    def schedule_periodic(self, period, callback) -> ScheduledJob:
        job = ScheduledJob(
            self.now() + period, next(self._counter), callback, period=period
        )

        def fire():
            if job.cancelled:
                return
            rearm()
            callback()

        def rearm():
            timer = threading.Timer(period, fire)
            timer.daemon = True
            with self._lock:
                self._timers.append(timer)
            timer.start()

        rearm()
        return job

    def shutdown(self) -> None:
        with self._lock:
            for timer in self._timers:
                timer.cancel()
            self._timers.clear()
