"""Process-sharded runtime: multi-process sweeps with a cross-shard
event router.

The single-process runtime tops out at one interpreter: the
:class:`~repro.runtime.sweep.SweepEngine` overlaps device I/O on
threads, but the GIL caps compute and the registry/bus are single-copy.
This module takes the paper's small-to-large continuum literally — the
same orchestration design runs over a fleet partitioned into per-process
shards:

* the fleet is hash-partitioned by entity id
  (:func:`repro.mapreduce.partition.shard_index`, the same stable crc32
  the MapReduce shuffle uses), one shard per **worker process**;
* each worker hosts a full :class:`~repro.runtime.app.Application` that
  binds only its shard's entities — so supervision, read caching and
  columnar batch reads all keep working per shard, unchanged;
* the **coordinator** hosts the application logic (contexts,
  controllers, windows, periodic jobs) and no devices.  Periodic
  gathers fan out to the workers, which sweep, fold outcomes and run
  map-side combines locally; the coordinator merges replies back into
  exact registry order — the same ``(position, value)`` merge
  discipline the sweep engine uses for threads;
* a :class:`ShardRouter` forwards cross-shard traffic: publishes raised
  inside a worker are recorded at the device instance and replayed into
  the coordinator's bus, and coordinator-side reads/actions are routed
  to the owning shard.

Determinism guarantees (and their limits):

* Entity-to-shard assignment is a pure function of ``(entity_id,
  shards)`` — stable across runs and across processes.
* Worker clocks are :class:`~repro.runtime.clock.SimulationClock`
  instances advanced with **absolute** ``run_until(target)`` commands,
  never relative deltas, so simulated substrate values (pure functions
  of the clock reading) stay byte-identical to a single-process run.
* Ungrouped and grouped payloads merge by global registration position
  and are byte-identical to ``ShardConfig(enabled=False)``.
* MapReduce payloads are exact for jobs without a ``combine`` hook (raw
  map emissions are re-ordered into the single-process emission
  sequence before one final reduce).  With a combiner, each worker
  ships one partial per key and the final reduce sees one partial per
  contributing shard instead of one per fleet — value-identical for
  associative combine/reduce pairs, the same contract incremental
  windows already impose.

Spawn-safety: worker processes are started through
``multiprocessing.get_context(start_method)``.  Under ``spawn`` (and
``forkserver``) the :class:`ShardBootstrap` must be picklable and
importable — a module-level class, not a closure; under the POSIX
default ``fork`` any bootstrap works.  The bootstrap contract is the
heart of it: ``build(ctx)`` must construct the application from scratch
inside the calling process (fresh clock, fresh substrate, fresh
drivers) and bind only the entities ``ctx.owns``.
"""

from __future__ import annotations

import functools
import multiprocessing
import pickle
import weakref
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    TYPE_CHECKING,
    Tuple,
)

from repro.errors import BindingError, ShardError
from repro.mapreduce.api import (
    CombineCollector,
    MapCollector,
    job_combiner,
)
from repro.mapreduce.partition import shard_index
from repro.runtime.clock import SimulationClock
from repro.runtime.component import GatherReading, SourceEvent
from repro.runtime.configbase import ConfigBase
from repro.telemetry.instrument import Instrumented, MetricSpec

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.runtime.app import Application

__all__ = [
    "FleetScaleBootstrap",
    "ShardBootstrap",
    "ShardConfig",
    "ShardContext",
    "ShardRouter",
    "ShardedRuntime",
    "SimulatedFleetBootstrap",
]

_START_METHODS = (None, "fork", "spawn", "forkserver")
_WIRE_FORMATS = ("rows", "columnar")


@dataclass(frozen=True)
class ShardConfig(ConfigBase):
    """How a sharded runtime partitions and executes.

    * ``enabled`` — off by default: the runtime stays single-process
      and byte-identical to the unsharded code path (the
      :class:`ShardedRuntime` then binds the whole fleet into one local
      application and never spawns a worker).
    * ``workers`` — worker process count; also the shard count, so the
      fleet partitions into exactly ``workers`` hash shards.
    * ``start_method`` — ``multiprocessing`` start method; ``None``
      uses the platform default (``fork`` on POSIX).  ``spawn`` and
      ``forkserver`` require a picklable, importable bootstrap.
    * ``wire_format`` — how poll replies cross the worker pipes.
      ``"columnar"`` (default) ships per-attribute columns (tuples of
      arrays); ``"rows"`` ships one tuple per reading — the pre-delta
      wire format, kept as the comparison baseline.
    * ``delta_sync`` — with the columnar format, ship only changed or
      newly registered readings per sweep plus a quiescent count; the
      coordinator reconstructs the full payload from its
      registration-order mirror.  Live-tunable
      (``Application.apply_config``).
    * ``local_cache`` — give each worker its shard-local
      :class:`~repro.runtime.cache.ReadCache` (when the cache section
      is enabled), fed by the worker's own clock replica and kept
      honest by coordinator-routed invalidations piggybacked on the
      next command.  ``False`` strips the cache from workers — an
      ablation/ops escape hatch that is *not* identity-preserving
      when caching is on.
    """

    enabled: bool = False
    workers: int = 4
    start_method: Optional[str] = None
    wire_format: str = "columnar"
    delta_sync: bool = True
    local_cache: bool = True

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.start_method not in _START_METHODS:
            raise ValueError(
                f"start_method must be one of {_START_METHODS[1:]} or None"
            )
        if self.wire_format not in _WIRE_FORMATS:
            raise ValueError(f"wire_format must be one of {_WIRE_FORMATS}")
        # Integer knob values (the tuning controller moves delta_sync
        # as a 0/1 knob) normalize to bools so config equality works.
        object.__setattr__(self, "delta_sync", bool(self.delta_sync))
        object.__setattr__(self, "local_cache", bool(self.local_cache))


@dataclass(frozen=True)
class ShardContext:
    """Which slice of the fleet one process owns.

    Passed to :meth:`ShardBootstrap.build`: a worker receives its shard
    index and binds the entities it :meth:`owns`; the coordinator
    receives ``index=None`` and binds none.  When sharding is disabled
    the runtime builds with ``ShardContext(shards=1, index=0)``, which
    owns everything — the single-process degenerate case.
    """

    shards: int
    index: Optional[int] = None

    @property
    def is_coordinator(self) -> bool:
        return self.index is None

    def owns(self, entity_id: str) -> bool:
        """Does this process bind ``entity_id``?

        Pure function of ``(entity_id, shards)`` via the stable crc32
        partitioner, so every process in the gang agrees without
        coordination."""
        if self.index is None:
            return False
        return shard_index(entity_id, self.shards) == self.index


class ShardBootstrap:
    """Recipe for building one process's view of the application.

    Subclasses implement:

    * :meth:`fleet` — the **full** fleet's entity ids in global
      registration order.  Every process derives the same global
      positions from it; those positions are what the coordinator's
      merge sorts by.
    * :meth:`build` — construct a fresh, **unstarted**
      :class:`~repro.runtime.app.Application` in the calling process,
      installing every implementation but binding only the devices
      ``ctx.owns``.  The app's clock must be a
      :class:`~repro.runtime.clock.SimulationClock` (workers are driven
      by absolute clock-sync commands), and carrying a
      :class:`ShardConfig` on its :class:`RuntimeConfig` is how the
      runtime learns its worker count when none is passed explicitly.

    The bootstrap is pickled into worker processes under ``spawn``, so
    keep it a plain data record (design source, fleet size, seeds) —
    never live drivers or clocks.
    """

    def fleet(self) -> Sequence[str]:
        raise NotImplementedError  # pragma: no cover - interface

    def build(self, ctx: ShardContext) -> "Application":
        raise NotImplementedError  # pragma: no cover - interface

    def bind_entity(
        self, app: "Application", entity_id: str, position: int
    ) -> None:
        """Bind one more entity into a built application (dynamic
        re-partitioning).

        Called by :meth:`ShardedRuntime.rebind` — on the owning worker's
        application when sharded, on the local application otherwise —
        with the coordinator-assigned global registration ``position``.
        The default refuses: a bootstrap must opt into dynamic binding
        by knowing how to construct the entity's driver inside an
        already-built process.
        """
        raise ShardError(
            f"{type(self).__name__} does not support dynamic "
            "(re)binding; override ShardBootstrap.bind_entity"
        )


class ShardEntityProxy:
    """Coordinator-side handle on an entity living in a worker process.

    Mirrors the :class:`~repro.runtime.proxies.DeviceProxy` surface —
    ``entity_id`` / ``device_type`` / ``attributes`` properties, typed
    ``query``/``act``, and dynamic snake-case facets — but routes reads
    and actions through the :class:`ShardedRuntime` to the shard that
    owns the entity.  The ``repr`` matches ``DeviceProxy`` exactly so
    payload digests (context memoization) agree across modes.
    """

    __slots__ = ("_runtime", "_info", "_entity_id", "_attributes")

    def __init__(self, runtime, info, entity_id, attributes):
        object.__setattr__(self, "_runtime", runtime)
        object.__setattr__(self, "_info", info)
        object.__setattr__(self, "_entity_id", entity_id)
        object.__setattr__(self, "_attributes", dict(attributes))

    @property
    def entity_id(self) -> str:
        return self._entity_id

    @property
    def device_type(self) -> str:
        return self._info.name

    @property
    def attributes(self) -> Dict[str, Any]:
        return dict(self._attributes)

    def query(self, source: str) -> Any:
        """Query-driven read, served by the owning shard."""
        return self._runtime.query(self._entity_id, source)

    def act(self, action: str, **params: Any) -> Any:
        return self._runtime.act(self._entity_id, action, **params)

    def __getattr__(self, name: str) -> Any:
        from repro.naming import (
            action_method_name,
            camel_to_snake,
            query_method_name,
        )

        info = object.__getattribute__(self, "_info")
        for source in info.sources:
            if query_method_name(source) == name:
                return functools.partial(self.query, source)
        for action in info.actions:
            if action_method_name(action) == name:
                return functools.partial(self.act, action)
        attributes = object.__getattribute__(self, "_attributes")
        for attribute in attributes:
            if camel_to_snake(attribute) == name:
                return attributes[attribute]
        raise AttributeError(f"device {info.name} has no facet '{name}'")

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("device proxies are read-only handles")

    def __repr__(self) -> str:
        return f"<proxy {self.device_type} {self.entity_id}>"


# ----------------------------------------------------------------------
# Wire transport
# ----------------------------------------------------------------------
#
# Every pipe message — commands, replies, the ready handshake — is one
# explicitly pickled byte string sent with ``send_bytes``.  Doing the
# pickling by hand (instead of ``Connection.send``) is what lets the
# coordinator meter the wire: the router counts the bytes of every
# command it sends and every reply it receives into
# ``shard_wire_bytes_total``, which is the quantity the delta protocol
# exists to shrink and the fleet-scale benchmark gates on.

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


def _wire_send(conn, obj: Any) -> int:
    """Pickle ``obj`` onto the pipe; returns the byte count."""
    data = pickle.dumps(obj, _PICKLE_PROTOCOL)
    conn.send_bytes(data)
    return len(data)


def _wire_recv(conn) -> Tuple[Any, int]:
    """Receive one pickled message; returns ``(object, byte_count)``."""
    data = conn.recv_bytes()
    return pickle.loads(data), len(data)


def _pack_positions(positions: List[int]) -> List[int]:
    """Gap-encode an ascending position list: ``[first, gap, gap, ...]``.

    Worker reading positions are ascending (registry order is bind
    order is ascending coordinator position), so the gaps are small
    ints that pickle in 2 bytes where a million-device fleet's
    absolute positions cost 5."""
    if not positions:
        return positions
    packed = [positions[0]]
    prev = positions[0]
    for position in positions[1:]:
        packed.append(position - prev)
        prev = position
    return packed


def _unpack_positions(packed: List[int]) -> List[int]:
    """Inverse of :func:`_pack_positions`."""
    if not packed:
        return packed
    positions = [packed[0]]
    prev = packed[0]
    for gap in packed[1:]:
        prev += gap
        positions.append(prev)
    return positions


def _encode_group_keys(keys: List[Any]) -> Tuple[Any, ...]:
    """Dictionary-encode a group-key column.

    Fleets group a huge position space into a handful of cohorts, so
    the column is almost always ``("t", table, index_bytes)`` — each
    key string pickled once plus one byte per row.  Columns with more
    than 256 distinct (or unhashable) keys fall back to the plain list
    ``("k", keys)``."""
    table: List[Any] = []
    index_of: Dict[Any, int] = {}
    indexes = bytearray()
    try:
        for key in keys:
            index = index_of.get(key)
            if index is None:
                index = index_of[key] = len(table)
                if index > 255:
                    return ("k", keys)
                table.append(key)
            indexes.append(index)
    except TypeError:
        return ("k", keys)
    return ("t", table, bytes(indexes))


def _decode_group_keys(block: Tuple[Any, ...]) -> List[Any]:
    """Inverse of :func:`_encode_group_keys`."""
    if block[0] == "t":
        table = block[1]
        return [table[index] for index in block[2]]
    return block[1]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _ShardWorker:
    """One worker process: a shard-local application plus the command
    loop the coordinator drives over a pipe.

    The worker's application is never ``start()``-ed — its periodic
    jobs live at the coordinator — but all of its machinery below the
    wiring layer (registry, sweep engine, supervision, read cache,
    columnar batch path) is fully live, which is exactly what the
    coordinator's gather commands exercise.
    """

    def __init__(self, bootstrap: ShardBootstrap, ctx: ShardContext):
        self.ctx = ctx
        self.bootstrap = bootstrap
        self.app = bootstrap.build(ctx)
        if not isinstance(self.app.clock, SimulationClock):
            raise ShardError(
                "worker applications must run on a SimulationClock",
                shard=ctx.index,
            )
        if (
            not self.app.config.shard.local_cache
            and self.app.read_cache is not None
        ):
            # local_cache=False strips the shard-local read cache: the
            # worker then reads through to its drivers on every sweep
            # (an ablation knob — not identity-preserving vs the
            # single-process cached run).
            self.app.read_cache = None
            for instance in self.app.registry:
                instance.attach_cache(None)
        self.clock: SimulationClock = self.app.clock
        # entity id -> global registration position, derived from the
        # full-fleet enumeration so every shard agrees on merge order.
        self._gpos = {
            entity_id: position
            for position, entity_id in enumerate(bootstrap.fleet())
        }
        self._events: List[Tuple[Any, ...]] = []
        # Poll results parked between the poll and map rounds of a
        # MapReduce gather: (context, interaction) -> keyed readings.
        self._pending: Dict[Tuple[str, int], List[Tuple[Any, ...]]] = {}
        # Delta-sync state per (context, interaction): the registry
        # version the epoch started at plus the last value shipped per
        # global position.  A registry version bump (bind/unbind)
        # resets the epoch — the worker re-registers everything.
        self._sync: Dict[Tuple[str, int], Dict[str, Any]] = {}
        # Re-attach every instance's publish hook to the recorder so
        # pushes surface in command replies instead of dead-ending in
        # the worker's subscriber-less bus.  Recording happens at the
        # instance (one record per publish), not at the bus (which
        # would double-count ancestor-topic deliveries).
        for instance in self.app.registry:
            instance.attach(self._record_publish)

    # -- event recording ------------------------------------------------

    def _record_publish(self, instance, source, value, index) -> None:
        if self.app.read_cache is not None:
            # Keep the worker-local cache semantics of
            # ``_deliver_source_event``: the push supersedes cached
            # reads of this source.
            self.app.read_cache.on_publish(instance, source)
        self._events.append(
            (
                instance.info.name,
                instance.entity_id,
                dict(instance.attributes),
                source,
                value,
                index,
            )
        )

    def _drain_events(self) -> List[Tuple[Any, ...]]:
        events, self._events = self._events, []
        return events

    def _apply_invalidations(self, items) -> None:
        """Apply coordinator-routed cache invalidations.

        These piggyback on the next command instead of costing a
        dedicated round-trip: the router queues them (cross-shard
        cohort invalidations, unbind cleanups) and attaches the queue
        to whatever command reaches this shard next — which is always
        before the next read this shard serves, so the worker-local
        cache can never serve a value the coordinator knows is stale.
        """
        cache = self.app.read_cache
        if cache is None:
            return
        cache.apply_invalidations(items)

    # -- commands -------------------------------------------------------

    def _cmd_sync(self, target: float) -> Dict[str, Any]:
        self.clock.run_until(target)
        return {"events": self._drain_events()}

    def _cmd_poll(
        self,
        target: float,
        name: str,
        index: int,
        wire: str = "rows",
        delta: bool = False,
    ) -> Dict[str, Any]:
        """Sweep this shard for one periodic gather.

        Runs the exact per-shard half of
        ``Application._collect_payload``: sweep engine fan-out (serial
        under the simulation clock, columnar when the batch path is
        on), outcome folding with supervision/stale accounting, and
        group-key extraction.  Values stay in this process for
        MapReduce gathers — only ``{group: min gpos}`` crosses the pipe
        until the map round.

        ``wire`` picks the reply encoding for flat and grouped gathers
        (``"rows"`` — one tuple per reading, the pre-delta format — or
        ``"columnar"`` — per-attribute columns), and ``delta`` layers
        the delta protocol on columnar replies: identity columns ship
        once per registration epoch (``register``), values ship only
        when they differ from the last shipped value (``changed``),
        vanished positions retract, and everything else is a
        ``quiescent`` count.  MapReduce gathers already ship one
        combined partial per key, so they ignore both switches.
        """
        self.clock.run_until(target)
        app = self.app
        interaction = app.design.contexts[name].decl.interactions[index]
        source = interaction.source
        sampler = app._read_sampler(interaction)
        dropped_before = app._gather_network_dropped
        failed_before = app._gather_read_failed
        outcomes = app.sweeper.sweep(
            interaction.device,
            functools.partial(app._gather_read, source, sampler),
            read_column=(
                functools.partial(app._gather_read_column, source, sampler)
                if app._columnar_reads
                else None
            ),
        )
        readings = app._fold_read_outcomes(outcomes, source)
        reply: Dict[str, Any] = {
            "dropped": app._gather_network_dropped - dropped_before,
            "failed": app._gather_read_failed - failed_before,
            "events": self._drain_events(),
        }
        gpos = self._gpos
        group = interaction.group
        if group is not None and group.uses_mapreduce:
            keyed = []
            for instance, value in readings:
                keyed.append(
                    (
                        gpos[instance.entity_id],
                        self._group_key(instance, group),
                        value,
                    )
                )
            self._pending[(name, index)] = keyed
            mins: Dict[Any, int] = {}
            for position, key, __ in keyed:
                if key not in mins or position < mins[key]:
                    mins[key] = position
            reply["kind"] = "mapreduce"
            reply["keys"] = mins
            return reply
        kind = "flat" if group is None else "grouped"
        reply["kind"] = kind
        if wire != "columnar":
            self._sync.pop((name, index), None)
            self._encode_rows(reply, kind, readings, group, gpos)
            return reply
        if not delta:
            self._sync.pop((name, index), None)
            self._encode_columns(reply, kind, readings, group, gpos)
            return reply
        try:
            self._encode_delta(reply, kind, readings, group, gpos, name, index)
        except Exception:
            # A half-applied epoch (e.g. a BindingError halfway through
            # key extraction) must not leave ghost "already shipped"
            # digests: drop the state so the next poll re-registers.
            self._sync.pop((name, index), None)
            raise
        return reply

    def _group_key(self, instance, group):
        try:
            return instance.attributes[group.attribute]
        except KeyError:
            raise BindingError(
                f"entity '{instance.entity_id}' has no attribute "
                f"'{group.attribute}' to group by"
            ) from None

    def _encode_rows(self, reply, kind, readings, group, gpos) -> None:
        """The pre-delta wire format: one tuple per reading."""
        if kind == "flat":
            reply["data"] = [
                (
                    gpos[instance.entity_id],
                    instance.info.name,
                    instance.entity_id,
                    dict(instance.attributes),
                    value,
                )
                for instance, value in readings
            ]
            return
        reply["data"] = [
            (
                gpos[instance.entity_id],
                self._group_key(instance, group),
                value,
            )
            for instance, value in readings
        ]

    def _encode_columns(self, reply, kind, readings, group, gpos) -> None:
        """Stateless columnar encoding: per-attribute columns (tuples
        of arrays) instead of per-row tuples, full payload per sweep."""
        positions = [gpos[i.entity_id] for i, __ in readings]
        values = [value for __, value in readings]
        if kind == "flat":
            reply["columns"] = (
                positions,
                [i.info.name for i, __ in readings],
                [i.entity_id for i, __ in readings],
                [dict(i.attributes) for i, __ in readings],
                values,
            )
            return
        keys = [self._group_key(i, group) for i, __ in readings]
        reply["columns"] = (positions, keys, values)

    def _encode_delta(
        self, reply, kind, readings, group, gpos, name, index
    ) -> None:
        """Delta-sync columnar encoding.

        Reply blocks (all optional, all columnar, positions always
        gap-encoded via :func:`_pack_positions`):

        * ``register`` — rows never shipped this epoch, identity and
          first value together: ``(packed_positions, key_block,
          values)`` for grouped gathers (``key_block`` per
          :func:`_encode_group_keys`), ``(packed_positions,
          type_names, entity_ids, attribute_dicts, values)`` for flat
          ones.
        * ``changed`` — ``(packed_positions, values)`` for
          previously-registered readings that moved.  "Changed" is
          ``type(prev) is not type(value) or prev != value`` — NaN
          therefore always re-ships (never stale), at worst a handful
          of false re-sends.
        * ``retract`` — packed positions shipped earlier this epoch
          that have no reading this sweep (unbound, sampler-dropped,
          read-failed past the stale window); the coordinator drops
          them from its mirror.
        * ``quiescent`` — count of readings identical to the last
          shipped value; they cross the pipe as this single integer.
        * ``reset`` — set when the shard's registry version moved (or
          the epoch is new): the coordinator must clear this shard's
          slice of the mirror before applying the blocks.
        """
        version = self.app.registry.version
        state = self._sync.get((name, index))
        if state is None or state["version"] != version:
            state = {"version": version, "known": {}}
            self._sync[(name, index)] = state
            reply["reset"] = True
        known = state["known"]
        reg_pos: List[int] = []
        reg_ident: List[Any] = []
        reg_val: List[Any] = []
        changed_pos: List[int] = []
        changed_val: List[Any] = []
        quiescent = 0
        flat = kind == "flat"
        for instance, value in readings:
            position = gpos[instance.entity_id]
            if position not in known:
                reg_pos.append(position)
                if flat:
                    reg_ident.append(
                        (
                            instance.info.name,
                            instance.entity_id,
                            dict(instance.attributes),
                        )
                    )
                else:
                    reg_ident.append(self._group_key(instance, group))
                reg_val.append(value)
                known[position] = value
            else:
                prev = known[position]
                if type(prev) is type(value) and prev == value:
                    quiescent += 1
                else:
                    changed_pos.append(position)
                    changed_val.append(value)
                    known[position] = value
        vanished = len(known) - len(readings)
        if vanished:
            present = {gpos[i.entity_id] for i, __ in readings}
            retract = sorted(p for p in known if p not in present)
            for position in retract:
                del known[position]
            reply["retract"] = _pack_positions(retract)
        if reg_pos:
            if flat:
                reply["register"] = (
                    _pack_positions(reg_pos),
                    [ident[0] for ident in reg_ident],
                    [ident[1] for ident in reg_ident],
                    [ident[2] for ident in reg_ident],
                    reg_val,
                )
            else:
                reply["register"] = (
                    _pack_positions(reg_pos),
                    _encode_group_keys(reg_ident),
                    reg_val,
                )
        if changed_pos:
            reply["changed"] = (_pack_positions(changed_pos), changed_val)
        reply["quiescent"] = quiescent

    def _cmd_map(
        self, name: str, index: int, ranks: Dict[Any, int]
    ) -> Dict[str, Any]:
        """Map (and map-side combine) the parked poll readings.

        ``ranks`` is the coordinator's global group order — the rank of
        each group's first *surviving* reading across all shards — so
        sorting this shard's inputs by ``(rank, gpos)`` reproduces the
        exact slice of the single-process input sequence this shard
        owns, and the emission tags ``(rank, gpos, emission)`` are
        globally comparable.
        """
        keyed = self._pending.pop((name, index))
        job = self.app.implementation(name)
        keyed.sort(key=lambda row: (ranks[row[1]], row[0]))
        pairs: List[Tuple[Tuple[int, int, int], Any, Any]] = []
        for position, key, value in keyed:
            collector = MapCollector()
            job.map(key, value, collector)
            rank = ranks[key]
            emissions = enumerate(collector.pairs)
            for emission, (out_key, out_value) in emissions:
                tag = (rank, position, emission)
                pairs.append((tag, out_key, out_value))
        mapped = len(pairs)
        combine = job_combiner(job)
        if combine is not None and pairs:
            grouped: Dict[Any, List[Tuple[Any, Any]]] = {}
            for tag, out_key, out_value in pairs:
                grouped.setdefault(out_key, []).append((tag, out_value))
            combined = []
            for out_key, tagged in grouped.items():
                collector = CombineCollector()
                combine(out_key, [v for __, v in tagged], collector)
                first = min(tag for tag, __ in tagged)
                for pair_key, pair_value in collector.pairs:
                    combined.append((first, pair_key, pair_value))
            pairs = combined
        return {
            "data": pairs,
            "mapped": mapped,
            "events": self._drain_events(),
        }

    def _cmd_publish(
        self, target, entity_id, source, value, index
    ) -> Dict[str, Any]:
        self.clock.run_until(target)
        instance = self.app.registry.get(entity_id)
        instance.publish(source, value, index=index)
        return {"events": self._drain_events()}

    def _cmd_read(self, target, entity_id, source) -> Dict[str, Any]:
        self.clock.run_until(target)
        value = self.app.registry.get(entity_id).read(source)
        return {"value": value, "events": self._drain_events()}

    def _cmd_act(self, target, entity_id, action, params) -> Dict[str, Any]:
        self.clock.run_until(target)
        value = self.app.registry.get(entity_id).act(action, **params)
        return {"value": value, "events": self._drain_events()}

    def _cmd_bind(self, target, entity_id, position) -> Dict[str, Any]:
        """Dynamic re-partitioning: bind one more entity into this
        shard's running application.

        The bootstrap constructs the device (it knows the drivers); the
        worker wires the publish recorder and records the
        coordinator-assigned global position.  The registry version
        bump this causes invalidates the worker's cohort plans and
        resets its delta epochs, so the next poll re-registers — no
        static fleet required.
        """
        self.clock.run_until(target)
        self.bootstrap.bind_entity(self.app, entity_id, position)
        instance = self.app.registry.get(entity_id)
        instance.attach(self._record_publish)
        self._gpos[entity_id] = position
        return {
            "bound": len(self.app.registry),
            "events": self._drain_events(),
        }

    def _cmd_unbind(self, target, entity_id) -> Dict[str, Any]:
        self.clock.run_until(target)
        self.app.unbind_device(entity_id)
        self._gpos.pop(entity_id, None)
        return {
            "bound": len(self.app.registry),
            "events": self._drain_events(),
        }

    def _cmd_stats(self) -> Dict[str, Any]:
        app = self.app
        return {
            "value": {
                "shard": self.ctx.index,
                "bound_entities": len(app.registry),
                "gather_network_dropped": app._gather_network_dropped,
                "gather_read_failed": app._gather_read_failed,
                "sweep": app.sweeper.stats(),
                "supervision": app.supervision.stats(),
                "cache": (
                    app.read_cache.stats()
                    if app.read_cache is not None
                    else None
                ),
            },
            "events": self._drain_events(),
        }

    def serve(self, conn) -> None:
        """The command loop: recv, dispatch, reply, until ``stop``.

        Every message is ``(op, args, invalidations)``; piggybacked
        invalidations apply to the worker cache *before* the command
        dispatches, so a poll or read can never serve a cache entry
        the coordinator has already superseded.
        """
        handlers = {
            "sync": self._cmd_sync,
            "poll": self._cmd_poll,
            "map": self._cmd_map,
            "publish": self._cmd_publish,
            "read": self._cmd_read,
            "act": self._cmd_act,
            "bind": self._cmd_bind,
            "unbind": self._cmd_unbind,
            "stats": self._cmd_stats,
        }
        while True:
            try:
                message, __ = _wire_recv(conn)
            except EOFError:
                break
            op, args, invalidations = message
            if invalidations:
                self._apply_invalidations(invalidations)
            if op == "stop":
                _wire_send(conn, ("ok", {"events": self._drain_events()}))
                break
            try:
                reply = handlers[op](*args)
            except Exception as exc:  # noqa: BLE001 - shipped upstream
                try:
                    _wire_send(conn, ("error", exc))
                except Exception:  # unpicklable exception payload
                    _wire_send(
                        conn,
                        (
                            "error",
                            ShardError(repr(exc), shard=self.ctx.index),
                        ),
                    )
            else:
                _wire_send(conn, ("ok", reply))
        self.app.sweeper.close()
        conn.close()


def _shard_worker_main(conn, bootstrap, index, shards) -> None:
    """Worker process entry point (module-level for spawn pickling)."""
    try:
        worker = _ShardWorker(
            bootstrap, ShardContext(shards=shards, index=index)
        )
    except Exception as exc:  # noqa: BLE001 - surfaced as ShardError
        try:
            _wire_send(conn, ("error", exc))
        except Exception:
            _wire_send(conn, ("error", ShardError(repr(exc), shard=index)))
        conn.close()
        return
    _wire_send(conn, ("ok", {"bound": len(worker.app.registry)}))
    worker.serve(conn)


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class ShardRouter(Instrumented):
    """Coordinator-side transport: commands out, events back.

    Owns the worker pipes.  ``broadcast`` sends to every worker before
    receiving any reply, which is where the parallelism comes from —
    all shards sweep (and sleep on their modeled device I/O)
    concurrently while the coordinator waits.  Replies always arrive in
    shard order, so merge inputs are deterministic.
    """

    metric_specs = (
        MetricSpec(
            "shard_commands_total",
            "_commands",
            stats_key="commands",
            help="Commands sent to shard workers.",
        ),
        MetricSpec(
            "shard_events_routed_total",
            "_events_routed",
            stats_key="events_routed",
            help="Worker-side device publishes replayed into the "
            "coordinator bus.",
        ),
        MetricSpec(
            "shard_publishes_forwarded_total",
            "_publishes",
            stats_key="publishes_forwarded",
            help="Cross-shard publishes routed to their owning worker.",
        ),
        MetricSpec(
            "shard_errors_total",
            "_errors",
            stats_key="errors",
            help="Worker commands that failed or lost their worker.",
        ),
        MetricSpec(
            "shard_wire_bytes_total",
            "_wire_bytes",
            stats_key="wire_bytes",
            help="Pickled bytes crossing the worker pipes, both "
            "directions, measured at the coordinator.",
        ),
    )

    def __init__(self):
        self._workers: List[Tuple[Any, Any]] = []  # (process, conn)
        self._commands = 0
        self._events_routed = 0
        self._publishes = 0
        self._errors = 0
        self._wire_bytes = 0
        # Per-shard invalidation queues, drained onto the next command
        # that reaches each shard (see _ShardWorker.serve).
        self._invalidations: List[List[Tuple[Any, ...]]] = []

    def __len__(self) -> int:
        return len(self._workers)

    def attach(self, workers: List[Tuple[Any, Any]]) -> None:
        self._workers = list(workers)
        self._invalidations = [[] for __ in workers]

    def queue_invalidation(
        self, item: Tuple[Any, ...], skip: Optional[int] = None
    ) -> None:
        """Queue a cache invalidation for every shard (minus ``skip``,
        normally the origin shard that already invalidated locally).
        The queue rides piggyback on each shard's next command."""
        for shard, queue in enumerate(self._invalidations):
            if shard != skip:
                queue.append(item)

    def _take_invalidations(self, shard: int) -> Tuple[Tuple[Any, ...], ...]:
        queue = self._invalidations[shard]
        if not queue:
            return ()
        self._invalidations[shard] = []
        return tuple(queue)

    def _send_to(self, shard: int, op: str, args: Tuple[Any, ...]) -> None:
        __, conn = self._workers[shard]
        message = (op, args, self._take_invalidations(shard))
        try:
            self._wire_bytes += _wire_send(conn, message)
        except OSError:
            self._errors += 1
            raise ShardError(
                "worker pipe closed while sending a command", shard=shard
            ) from None

    def _receive(self, shard: int) -> Dict[str, Any]:
        __, conn = self._workers[shard]
        try:
            reply, size = _wire_recv(conn)
        except EOFError:
            self._errors += 1
            raise ShardError(
                "worker process died mid-command", shard=shard
            ) from None
        self._wire_bytes += size
        status, payload = reply
        if status == "error":
            self._errors += 1
            if isinstance(payload, BaseException):
                raise payload
            raise ShardError(repr(payload), shard=shard)
        return payload

    def send(
        self, shard: int, op: str, args: Tuple[Any, ...] = ()
    ) -> Dict[str, Any]:
        """One command to one shard; returns the reply payload."""
        self._commands += 1
        self._send_to(shard, op, args)
        return self._receive(shard)

    def broadcast(
        self, op: str, args: Tuple[Any, ...] = ()
    ) -> List[Dict[str, Any]]:
        """The same command to every shard; replies in shard order."""
        self._commands += len(self._workers)
        for shard in range(len(self._workers)):
            self._send_to(shard, op, args)
        return [self._receive(shard) for shard in range(len(self._workers))]

    def shutdown(self) -> None:
        for shard, (__, conn) in enumerate(self._workers):
            try:
                self._wire_bytes += _wire_send(
                    conn, ("stop", (), self._take_invalidations(shard))
                )
            except OSError:
                pass
        for process, conn in self._workers:
            try:
                conn.recv_bytes()
            except EOFError:
                pass
            conn.close()
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=10)
        self._workers = []
        self._invalidations = []


class _GroupedMirror:
    """Coordinator-side registration-order mirror of one grouped
    gather under delta sync.

    Holds the last applied ``position → group key`` and ``position →
    value`` maps (positions are globally unique, so one merged map
    serves all shards; per-shard position sets exist only so a shard
    ``reset`` can clear exactly its slice).  The grouped payload is
    maintained **incrementally**: value changes write through position
    slots into prebuilt per-group columns, and the full
    sort-and-regroup rebuild runs only when registration churn
    (register/retract/reset) dirties the order — steady-state merge
    cost is O(changed), not O(fleet).
    """

    __slots__ = (
        "keys",
        "values",
        "shard_positions",
        "order",
        "groups",
        "slots",
        "dirty",
    )

    def __init__(self, shards: int):
        self.keys: Dict[int, Any] = {}
        self.values: Dict[int, Any] = {}
        self.shard_positions: List[set] = [set() for __ in range(shards)]
        self.order: List[int] = []
        self.groups: Dict[Any, List[Any]] = {}
        self.slots: Dict[int, Tuple[List[Any], int]] = {}
        self.dirty = False

    def _register(self, shard: int, positions, idents) -> None:
        self.shard_positions[shard].update(positions)
        keys = self.keys
        for position, key in zip(positions, idents):
            keys[position] = key

    def apply(self, shard: int, reply: Dict[str, Any]) -> Tuple[int, int]:
        """Fold one shard's delta blocks in; returns ``(delta_rows,
        quiescent_rows)`` — rows that crossed the pipe (registered +
        changed + retracted) and rows that didn't."""
        delta_rows = 0
        if reply.get("reset"):
            mine = self.shard_positions[shard]
            if mine:
                for position in mine:
                    self.keys.pop(position, None)
                    self.values.pop(position, None)
                self.shard_positions[shard] = set()
                self.dirty = True
        register = reply.get("register")
        if register:
            packed, key_block, column = register
            positions = _unpack_positions(packed)
            self._register(shard, positions, _decode_group_keys(key_block))
            values = self.values
            for position, value in zip(positions, column):
                values[position] = value
            delta_rows += len(positions)
            self.dirty = True
        retract = reply.get("retract")
        if retract:
            retract = _unpack_positions(retract)
            self.shard_positions[shard].difference_update(retract)
            for position in retract:
                self.keys.pop(position, None)
                self.values.pop(position, None)
            self.dirty = True
            delta_rows += len(retract)
        changed = reply.get("changed")
        if changed:
            packed, column = changed
            positions = _unpack_positions(packed)
            delta_rows += len(positions)
            values = self.values
            if self.dirty:
                for position, value in zip(positions, column):
                    values[position] = value
            else:
                slots = self.slots
                for position, value in zip(positions, column):
                    values[position] = value
                    group_column, offset = slots[position]
                    group_column[offset] = value
        return delta_rows, reply.get("quiescent", 0)

    def _rebuild(self) -> None:
        keys = self.keys
        values = self.values
        order = sorted(keys)
        groups: Dict[Any, List[Any]] = {}
        slots: Dict[int, Tuple[List[Any], int]] = {}
        for position in order:
            column = groups.get(keys[position])
            if column is None:
                column = groups[keys[position]] = []
            slots[position] = (column, len(column))
            column.append(values[position])
        self.order = order
        self.groups = groups
        self.slots = slots
        self.dirty = False

    def payload(self) -> Dict[Any, List[Any]]:
        """The full grouped payload — fresh per-group lists (so a
        context implementation mutating its payload cannot corrupt the
        mirror), in first-occurrence-by-position key order, exactly as
        ``group_readings`` builds it."""
        if self.dirty:
            self._rebuild()
        return {key: list(column) for key, column in self.groups.items()}

    def value_pairs(self) -> List[Tuple[None, Any]]:
        """Per-reading pairs for placement byte accounting."""
        if self.dirty:
            self._rebuild()
        values = self.values
        return [(None, values[position]) for position in self.order]


class _FlatMirror:
    """Registration-order mirror of one ungrouped gather under delta
    sync: ``position → (type, entity id, attributes)`` identity plus
    the last shipped value, with the sorted position order cached
    across quiescent sweeps."""

    __slots__ = ("ident", "values", "shard_positions", "order", "dirty")

    def __init__(self, shards: int):
        self.ident: Dict[int, Tuple[str, str, Dict[str, Any]]] = {}
        self.values: Dict[int, Any] = {}
        self.shard_positions: List[set] = [set() for __ in range(shards)]
        self.order: List[int] = []
        self.dirty = False

    def apply(self, shard: int, reply: Dict[str, Any]) -> Tuple[int, int]:
        delta_rows = 0
        if reply.get("reset"):
            mine = self.shard_positions[shard]
            if mine:
                for position in mine:
                    self.ident.pop(position, None)
                    self.values.pop(position, None)
                self.shard_positions[shard] = set()
                self.dirty = True
        register = reply.get("register")
        if register:
            packed, type_names, entity_ids, attribute_dicts, column = register
            positions = _unpack_positions(packed)
            self.shard_positions[shard].update(positions)
            ident = self.ident
            values = self.values
            rows = zip(
                positions, type_names, entity_ids, attribute_dicts, column
            )
            for position, type_name, entity_id, attributes, value in rows:
                ident[position] = (type_name, entity_id, attributes)
                values[position] = value
            delta_rows += len(positions)
            self.dirty = True
        retract = reply.get("retract")
        if retract:
            retract = _unpack_positions(retract)
            self.shard_positions[shard].difference_update(retract)
            for position in retract:
                self.ident.pop(position, None)
                self.values.pop(position, None)
            self.dirty = True
            delta_rows += len(retract)
        changed = reply.get("changed")
        if changed:
            packed, column = changed
            positions = _unpack_positions(packed)
            delta_rows += len(positions)
            values = self.values
            for position, value in zip(positions, column):
                values[position] = value
        return delta_rows, reply.get("quiescent", 0)

    def positions(self) -> List[int]:
        if self.dirty:
            self.order = sorted(self.ident)
            self.dirty = False
        return self.order


class ShardedRuntime(Instrumented):
    """Coordinator for a process-sharded application.

    ::

        runtime = ShardedRuntime(bootstrap)   # ShardConfig from the app
        runtime.start()
        runtime.advance(600.0)
        runtime.stop()

    With ``ShardConfig(enabled=False)`` (the default) no worker is ever
    spawned: the bootstrap builds one local application owning the
    whole fleet, and ``start``/``advance``/``publish``/``query``/
    ``act`` degrade to direct calls on it — byte-identical to not using
    this class at all.  That degenerate mode is what the equivalence
    tests diff the sharded mode against.
    """

    metric_specs = (
        MetricSpec(
            "shard_sweeps_total",
            "_sweeps",
            stats_key="sweeps",
            help="Periodic gathers fanned out across shard workers.",
        ),
        MetricSpec(
            "shard_merge_pairs_total",
            "_merge_pairs",
            stats_key="merge_pairs",
            help="Map-side partial pairs merged at the coordinator.",
        ),
        MetricSpec(
            "shard_remote_reads_total",
            "_remote_reads",
            stats_key="remote_reads",
            help="Query-driven reads routed to an owning shard.",
        ),
        MetricSpec(
            "shard_delta_rows_total",
            "_delta_rows",
            stats_key="delta_rows",
            help="Changed or retracted readings shipped by the delta "
            "wire protocol (quiescent readings cross as one count).",
        ),
        MetricSpec(
            "shard_workers",
            "_worker_count",
            kind="gauge",
            stats_key="workers",
            help="Live shard worker processes.",
        ),
    )

    def __init__(
        self,
        bootstrap: ShardBootstrap,
        shard: Optional[ShardConfig] = None,
    ):
        self.bootstrap = bootstrap
        if shard is None:
            # Probe build: learn the ShardConfig the bootstrap puts on
            # its RuntimeConfig.  The probe binds nothing (coordinator
            # context) and is discarded.
            probe = bootstrap.build(ShardContext(shards=1, index=None))
            shard = probe.config.shard
        self.config = shard
        self.sharded = shard.enabled
        if self.sharded:
            ctx = ShardContext(shards=shard.workers, index=None)
        else:
            ctx = ShardContext(shards=1, index=0)
        self.app: "Application" = bootstrap.build(ctx)
        if self.sharded and not isinstance(self.app.clock, SimulationClock):
            raise ShardError(
                "the coordinator application must run on a "
                "SimulationClock (workers are driven by absolute "
                "clock-sync commands)"
            )
        self.router = ShardRouter()
        self._sweeps = 0
        self._merge_pairs = 0
        self._remote_reads = 0
        self._delta_rows = 0
        self._quiescent_rows = 0
        self._worker_count = 0
        self._started = False
        # Delta-sync mirrors per (context name, interaction index);
        # populated lazily on the first delta-encoded poll.
        self._mirrors: Dict[Tuple[str, int], Any] = {}
        # Next global registration position handed to a dynamic
        # rebind — the static fleet occupies [0, len(fleet)).
        self._next_position = len(bootstrap.fleet())
        # interaction identity -> (context name, interaction index);
        # how the delegate names a gather to the workers.
        self._interactions: Dict[int, Tuple[str, int]] = {}
        for name, info in self.app.design.contexts.items():
            interactions = info.decl.interactions
            for position, interaction in enumerate(interactions):
                self._interactions[id(interaction)] = (name, position)
        # entity id -> coordinator-side proxy, built lazily from worker
        # reply rows (attributes are static for the fleet's lifetime).
        self._proxies: Dict[str, ShardEntityProxy] = {}

    # -- life-cycle -----------------------------------------------------

    def start(self) -> "ShardedRuntime":
        if self._started:
            raise ShardError("sharded runtime already started")
        self.attach_metrics(self.app.metrics)
        self.router.attach_metrics(self.app.metrics)
        if self.sharded:
            self._spawn_workers()
            self.app.attach_gather_delegate(self._collect_sharded)
        self.app.start()
        self._started = True
        return self

    def _spawn_workers(self) -> None:
        mp = multiprocessing.get_context(self.config.start_method)
        workers = []
        for index in range(self.config.workers):
            parent, child = mp.Pipe()
            process = mp.Process(
                target=_shard_worker_main,
                args=(child, self.bootstrap, index, self.config.workers),
                daemon=True,
                name=f"repro-shard-{index}",
            )
            process.start()
            child.close()
            workers.append((process, parent))
        self.router.attach(workers)
        # Ready handshake: every worker reports its shard build (or the
        # exception that killed it) before the first command.
        for shard in range(len(workers)):
            self.router._receive(shard)
        self._worker_count = len(workers)

    def stop(self) -> None:
        if not self._started:
            return
        self.app.stop()
        if self.sharded:
            self.app.attach_gather_delegate(None)
            self.router.shutdown()
            self._worker_count = 0
        self._started = False

    def advance(self, seconds: float) -> int:
        """Drive the coordinator clock (gathers fan out to workers),
        then sync worker clocks to the final time and drain any events
        their own scheduled jobs raised."""
        fired = self.app.advance(seconds)
        if self.sharded and self._started:
            replies = self.router.broadcast("sync", (self.app.clock.now(),))
            for reply in replies:
                self._replay_events(reply["events"])
        return fired

    # -- cross-shard routing --------------------------------------------

    def _owning_shard(self, entity_id: str) -> int:
        return shard_index(entity_id, self.config.workers)

    def publish(
        self, entity_id: str, source: str, value: Any, index: Any = None
    ) -> None:
        """Event-driven publish on an entity, wherever it lives.

        Sharded: the command routes to the owning worker, the worker's
        device instance validates and records the publish, and the
        event replays into the coordinator bus.  Unsharded: a direct
        ``instance.publish`` — the identical single-process path.
        """
        if not self.sharded:
            self.app.registry.get(entity_id).publish(
                source, value, index=index
            )
            return
        self.router._publishes += 1
        reply = self.router.send(
            self._owning_shard(entity_id),
            "publish",
            (self.app.clock.now(), entity_id, source, value, index),
        )
        self._replay_events(reply["events"])

    def query(self, entity_id: str, source: str) -> Any:
        """Query-driven read routed to the owning shard."""
        if not self.sharded:
            return self.app.registry.get(entity_id).read(source)
        self._remote_reads += 1
        reply = self.router.send(
            self._owning_shard(entity_id),
            "read",
            (self.app.clock.now(), entity_id, source),
        )
        self._replay_events(reply["events"])
        return reply["value"]

    def act(self, entity_id: str, action: str, **params: Any) -> Any:
        """Actuation routed to the owning shard."""
        if not self.sharded:
            return self.app.registry.get(entity_id).act(action, **params)
        reply = self.router.send(
            self._owning_shard(entity_id),
            "act",
            (self.app.clock.now(), entity_id, action, params),
        )
        self._replay_events(reply["events"])
        return reply["value"]

    def rebind(self, entity_id: str) -> None:
        """Dynamically bind one more entity into the running fleet.

        The bind routes to the owning worker incrementally — no static
        fleet, no restart: the worker's registry version bump resets
        its delta epoch and cohort plans, and the entity joins the next
        sweep at the end of global registration order (exactly where a
        single-process late ``bind_device`` would put it).  Requires a
        bootstrap that implements
        :meth:`ShardBootstrap.bind_entity`.
        """
        position = self._next_position
        self._next_position += 1
        if not self.sharded:
            self.bootstrap.bind_entity(self.app, entity_id, position)
            return
        reply = self.router.send(
            self._owning_shard(entity_id),
            "bind",
            (self.app.clock.now(), entity_id, position),
        )
        self._replay_events(reply["events"])

    def unbind(self, entity_id: str) -> None:
        """Dynamically unbind an entity, wherever it lives."""
        if not self.sharded:
            self.app.unbind_device(entity_id)
            return
        reply = self.router.send(
            self._owning_shard(entity_id),
            "unbind",
            (self.app.clock.now(), entity_id),
        )
        self._replay_events(reply["events"])
        self._proxies.pop(entity_id, None)
        if self.app.read_cache is not None:
            self.app.read_cache.invalidate(entity_id)

    def worker_stats(self) -> List[Dict[str, Any]]:
        """Per-shard registry/sweep/supervision snapshots."""
        if not self.sharded:
            return []
        replies = self.router.broadcast("stats")
        return [reply["value"] for reply in replies]

    # -- event replay ---------------------------------------------------

    def _proxy_for(
        self, type_name: str, entity_id: str, attributes
    ) -> ShardEntityProxy:
        proxy = self._proxies.get(entity_id)
        if proxy is None:
            proxy = ShardEntityProxy(
                self,
                self.app.design.devices[type_name],
                entity_id,
                attributes,
            )
            self._proxies[entity_id] = proxy
        return proxy

    def _replay_events(self, events) -> None:
        """Publish worker-recorded device events into the coordinator
        bus, mirroring ``Application._on_device_publish`` (network
        model, delivery plans, cache invalidation) with a routed proxy
        in place of the local instance."""
        app = self.app
        cache = app.read_cache
        shard_attribute = None
        if cache is not None and cache.config.invalidate_on_publish:
            shard_attribute = cache.config.shard_attribute
        for type_name, entity_id, attributes, source, value, index in events:
            self._events_routed_bump()
            if cache is not None:
                cache.invalidate(entity_id, source)
            if shard_attribute is not None:
                # The publish supersedes every same-source entry in the
                # publisher's attribute cohort — in single-process mode
                # one on_publish call covers the whole fleet, but here
                # the other shards' local caches only learn through the
                # router.  Queue the cohort drop for every shard except
                # the origin (which already invalidated locally); it
                # piggybacks on each shard's next command, always
                # before its next read.
                shard_value = attributes.get(shard_attribute)
                if shard_value is not None:
                    self.router.queue_invalidation(
                        ("cohort", source, shard_value),
                        skip=self._owning_shard(entity_id),
                    )
            proxy = self._proxy_for(type_name, entity_id, attributes)
            deliver = functools.partial(
                self._dispatch_remote,
                type_name,
                proxy,
                source,
                value,
                index,
            )
            if app.network is None:
                deliver()
            else:
                app.network.transmit(app.clock, deliver)

    def _events_routed_bump(self) -> None:
        self.router._events_routed += 1

    def _dispatch_remote(self, type_name, proxy, source, value, index) -> None:
        app = self.app
        event = SourceEvent(
            device=proxy,
            source=source,
            value=value,
            index=index,
            timestamp=app.clock.now(),
        )
        planner = app.planner
        if planner is not None:
            plan = planner.source_plan(type_name, source)
            app.bus.dispatch_compiled(plan.targets, len(plan.topics), event)
            return
        info = app.design.devices[type_name]
        for topic in app._topics_for(info, source):
            app.bus.publish(topic, event)

    # -- the delegated gather -------------------------------------------

    def _collect_sharded(self, interaction, implementation) -> Any:
        """Collect one periodic gather across all shards.

        Replaces ``Application._collect_payload`` via the gather
        delegate: every worker sweeps its shard concurrently, and the
        replies merge back into the exact single-process payload —
        sorted by global registration position for flat and grouped
        gathers, re-sequenced map emissions with a coordinator-side
        final reduce for MapReduce gathers.
        """
        app = self.app
        name, index = self._interactions[id(interaction)]
        self._sweeps += 1
        target = app.clock.now()
        # The wire settings are read per sweep from the application's
        # live config — the tuning controller (or apply_config) can
        # flip delta_sync/wire_format between sweeps.
        shard_config = app.config.shard
        wire = shard_config.wire_format
        delta = shard_config.delta_sync and wire == "columnar"
        polls = self.router.broadcast(
            "poll", (target, name, index, wire, delta)
        )
        app._gather_network_dropped += sum(r["dropped"] for r in polls)
        app._gather_read_failed += sum(r["failed"] for r in polls)
        for reply in polls:
            self._replay_events(reply["events"])
        kind = polls[0]["kind"]
        placement = app.placement
        if kind != "mapreduce":
            if delta:
                return self._merge_delta(kind, name, index, polls, placement)
            # A stale mirror must not survive a live delta->full flip:
            # the next delta epoch starts from a worker reset anyway.
            self._mirrors.pop((name, index), None)
            if wire == "columnar":
                rows = [
                    row
                    for reply in polls
                    for row in zip(*reply["columns"])
                ]
            else:
                rows = [row for reply in polls for row in reply["data"]]
            rows.sort(key=lambda row: row[0])
            if kind == "flat":
                if placement is not None:
                    # Shards are cloud-side for ungrouped gathers:
                    # every raw reading crossed the continuum.
                    placement.account_cloud([(None, row[4]) for row in rows])
                return [
                    GatherReading(
                        self._proxy_for(type_name, entity_id, attributes),
                        value,
                    )
                    for __, type_name, entity_id, attributes, value in rows
                ]
            if placement is not None:
                placement.account_cloud([(None, row[2]) for row in rows])
            grouped: Dict[Any, List[Any]] = {}
            for __, key, value in rows:
                grouped.setdefault(key, []).append(value)
            return grouped
        # MapReduce: rank groups by their first surviving reading
        # across the whole fleet, then let each worker map+combine its
        # slice in that global order.
        mins: Dict[Any, int] = {}
        for reply in polls:
            for key, position in reply["keys"].items():
                if key not in mins or position < mins[key]:
                    mins[key] = position
        order = sorted(mins, key=mins.__getitem__)
        ranks = {key: rank for rank, key in enumerate(order)}
        maps = self.router.broadcast("map", (name, index, ranks))
        for reply in maps:
            self._replay_events(reply["events"])
        tagged = [pair for reply in maps for pair in reply["data"]]
        if placement is not None and id(interaction) in app._edge_interactions:
            # One edge node per shard: the worker-side map+combine *is*
            # the edge execution, so the shipped partials are the WAN
            # traffic — sample loss and account bytes per partial.
            placement.note_edge_sweep(len(maps))
            tagged = placement.deliver_partials(tagged)
        tagged.sort(key=lambda pair: pair[0])
        pairs = [(key, value) for __, key, value in tagged]
        mapped = sum(reply["mapped"] for reply in maps)
        self._merge_pairs += len(pairs)
        return app.mapreduce.merge_partials(implementation, pairs, mapped)

    def _merge_delta(
        self, kind: str, name: str, index: int, polls, placement
    ) -> Any:
        """Fold delta replies into the per-gather mirror and rebuild
        the exact single-process payload from registration order."""
        key = (name, index)
        mirror = self._mirrors.get(key)
        if mirror is None:
            mirror = (
                _GroupedMirror(len(self.router))
                if kind == "grouped"
                else _FlatMirror(len(self.router))
            )
            self._mirrors[key] = mirror
        for shard, reply in enumerate(polls):
            delta_rows, quiescent = mirror.apply(shard, reply)
            self._delta_rows += delta_rows
            self._quiescent_rows += quiescent
        if kind == "grouped":
            if placement is not None:
                placement.account_cloud(mirror.value_pairs())
            return mirror.payload()
        order = mirror.positions()
        ident = mirror.ident
        values = mirror.values
        if placement is not None:
            placement.account_cloud(
                [(None, values[position]) for position in order]
            )
        return [
            GatherReading(self._proxy_for(*ident[position]), values[position])
            for position in order
        ]

    def _extra_stats(self) -> Dict[str, Any]:
        return {
            "router": self.router.stats(),
            "quiescent_rows": self._quiescent_rows,
        }


# ----------------------------------------------------------------------
# A spawn-safe simulated fleet (benchmarks, smoke tests, examples)
# ----------------------------------------------------------------------


_FLEET_DESIGN = """\
device ShardSensor {
    attribute zone as ZoneEnum;
    source level as Integer;
}
enumeration ZoneEnum { Z0, Z1, Z2, Z3 }

context ZoneLoad as Integer {
    when periodic level from ShardSensor <1 min>
    grouped by zone
    with map as Integer reduce as Integer
    always publish;
}
"""

_ZONES = ("Z0", "Z1", "Z2", "Z3")

# app -> the GatewaySubstrate its bootstrap built, so bind_entity can
# attach late entities to the same per-process substrate without
# stashing live (unpicklable) objects on the frozen bootstrap record.
_FLEET_SUBSTRATES: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


class _ZoneLoadJob:
    """Associative sum-per-zone MapReduce (exact under sharding).

    The combiner keeps the cross-process shuffle O(zones): each worker
    ships one partial sum per zone instead of one pair per device."""

    def map(self, zone, level, collector):
        collector.emit_map(zone, level)

    def combine(self, zone, values, collector):
        collector.emit_combine(zone, sum(values))

    def reduce(self, zone, values, collector):
        collector.emit_reduce(zone, sum(values))


def _level_model(draw: float) -> int:
    return int(draw * 100.0)


@dataclass(frozen=True)
class SimulatedFleetBootstrap(ShardBootstrap):
    """A ready-made picklable bootstrap over a simulated sensor fleet.

    Builds a ``count``-device fleet of ``ShardSensor`` entities (zoned
    round-robin) over one :class:`~repro.simulation.sensors.
    GatewaySubstrate` per process, with a periodic grouped-MapReduce
    ``ZoneLoad`` context.  ``service_time`` models per-device gateway
    read latency — the quantity the shard-scaling benchmark overlaps
    across worker processes.  Module-level and frozen, so it survives
    ``spawn`` pickling; the shard-scaling benchmark and the spawn smoke
    test both build from it.
    """

    count: int = 1000
    seed: int = 0
    service_time: float = 0.0
    shard: Optional[ShardConfig] = None
    batch: bool = False
    cache: bool = False

    def fleet(self) -> Sequence[str]:
        return [f"shard-sensor-{index:06d}" for index in range(self.count)]

    def build(self, ctx: ShardContext) -> "Application":
        from repro.api import Application, RuntimeConfig, analyze
        from repro.runtime.cache import CacheConfig
        from repro.runtime.component import Context
        from repro.runtime.plan import BatchConfig
        from repro.simulation.sensors import GatewaySubstrate

        class ZoneLoadImpl(Context, _ZoneLoadJob):
            def on_periodic_level(self, by_zone, discover):
                return sum(by_zone.values())

        config = RuntimeConfig(
            shard=self.shard if self.shard is not None else ShardConfig(),
            batch=BatchConfig(enabled=self.batch),
            cache=CacheConfig(enabled=self.cache),
        )
        app = Application(analyze(_FLEET_DESIGN), config)
        app.implement("ZoneLoad", ZoneLoadImpl())
        substrate = GatewaySubstrate(
            app.clock,
            seed=self.seed,
            models={"level": _level_model},
            service_time=self.service_time,
        )
        _FLEET_SUBSTRATES[app] = substrate
        for position, entity_id in enumerate(self.fleet()):
            if ctx.owns(entity_id):
                app.create_device(
                    "ShardSensor",
                    entity_id,
                    substrate.driver("level"),
                    zone=_ZONES[position % len(_ZONES)],
                )
        return app

    def bind_entity(
        self, app: "Application", entity_id: str, position: int
    ) -> None:
        substrate = _FLEET_SUBSTRATES[app]
        app.create_device(
            "ShardSensor",
            entity_id,
            substrate.driver("level"),
            zone=_ZONES[position % len(_ZONES)],
        )


# ----------------------------------------------------------------------
# The fleet-scale benchmark bootstrap (million-device hot path)
# ----------------------------------------------------------------------


_FLEET_SCALE_DESIGN = """\
device FleetSensor {
    attribute zone as FleetZone;
    source level as Integer;
}
enumeration FleetZone { Z0, Z1, Z2, Z3, Z4, Z5, Z6, Z7 }

context ZoneLevels as Integer {
    when periodic level from FleetSensor <1 min>
    grouped by zone
    always publish;
}
"""

_FLEET_SCALE_ZONES = ("Z0", "Z1", "Z2", "Z3", "Z4", "Z5", "Z6", "Z7")


def _make_activity_model(activity: float):
    def model(draw: float) -> int:
        return 1 if draw < activity else 0

    return model


@dataclass(frozen=True)
class FleetScaleBootstrap(ShardBootstrap):
    """The million-device benchmark fleet: a plain grouped gather over
    a mostly-quiescent activity signal.

    Each ``FleetSensor`` reports a 0/1 ``level`` (active with
    probability ``activity`` per tick, deterministic in ``(seed,
    entity, time)``), grouped by one of eight zones — the payload shape
    where the delta wire protocol pays: between sweeps only the ~2 ·
    ``activity`` fraction of devices that flipped cross the pipe, the
    rest collapse into the quiescent count, and the columnar batch path
    plus memoized cohort plans keep the worker-side sweep cost flat.
    ``service_time`` models per-device gateway read latency — the
    quantity sharding overlaps across worker processes.  Frozen and
    module-level, so it survives ``spawn`` pickling.
    """

    count: int = 10_000
    seed: int = 0
    service_time: float = 0.0
    activity: float = 0.02
    shard: Optional[ShardConfig] = None

    def fleet(self) -> Sequence[str]:
        return [f"fleet-sensor-{index:07d}" for index in range(self.count)]

    def _create(self, app, substrate, entity_id: str, position: int) -> None:
        app.create_device(
            "FleetSensor",
            entity_id,
            substrate.driver("level"),
            zone=_FLEET_SCALE_ZONES[position % len(_FLEET_SCALE_ZONES)],
        )

    def build(self, ctx: ShardContext) -> "Application":
        from repro.api import Application, RuntimeConfig, analyze
        from repro.runtime.component import Context
        from repro.runtime.plan import BatchConfig
        from repro.simulation.sensors import GatewaySubstrate

        class ZoneLevelsImpl(Context):
            def on_periodic_level(self, by_zone, discover):
                return sum(sum(levels) for levels in by_zone.values())

        config = RuntimeConfig(
            shard=self.shard if self.shard is not None else ShardConfig(),
            batch=BatchConfig(enabled=True),
        )
        app = Application(analyze(_FLEET_SCALE_DESIGN), config)
        app.implement("ZoneLevels", ZoneLevelsImpl())
        substrate = GatewaySubstrate(
            app.clock,
            seed=self.seed,
            models={"level": _make_activity_model(self.activity)},
            service_time=self.service_time,
        )
        _FLEET_SUBSTRATES[app] = substrate
        for position, entity_id in enumerate(self.fleet()):
            if ctx.owns(entity_id):
                self._create(app, substrate, entity_id, position)
        return app

    def bind_entity(
        self, app: "Application", entity_id: str, position: int
    ) -> None:
        self._create(app, _FLEET_SUBSTRATES[app], entity_id, position)
