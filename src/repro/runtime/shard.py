"""Process-sharded runtime: multi-process sweeps with a cross-shard
event router.

The single-process runtime tops out at one interpreter: the
:class:`~repro.runtime.sweep.SweepEngine` overlaps device I/O on
threads, but the GIL caps compute and the registry/bus are single-copy.
This module takes the paper's small-to-large continuum literally — the
same orchestration design runs over a fleet partitioned into per-process
shards:

* the fleet is hash-partitioned by entity id
  (:func:`repro.mapreduce.partition.shard_index`, the same stable crc32
  the MapReduce shuffle uses), one shard per **worker process**;
* each worker hosts a full :class:`~repro.runtime.app.Application` that
  binds only its shard's entities — so supervision, read caching and
  columnar batch reads all keep working per shard, unchanged;
* the **coordinator** hosts the application logic (contexts,
  controllers, windows, periodic jobs) and no devices.  Periodic
  gathers fan out to the workers, which sweep, fold outcomes and run
  map-side combines locally; the coordinator merges replies back into
  exact registry order — the same ``(position, value)`` merge
  discipline the sweep engine uses for threads;
* a :class:`ShardRouter` forwards cross-shard traffic: publishes raised
  inside a worker are recorded at the device instance and replayed into
  the coordinator's bus, and coordinator-side reads/actions are routed
  to the owning shard.

Determinism guarantees (and their limits):

* Entity-to-shard assignment is a pure function of ``(entity_id,
  shards)`` — stable across runs and across processes.
* Worker clocks are :class:`~repro.runtime.clock.SimulationClock`
  instances advanced with **absolute** ``run_until(target)`` commands,
  never relative deltas, so simulated substrate values (pure functions
  of the clock reading) stay byte-identical to a single-process run.
* Ungrouped and grouped payloads merge by global registration position
  and are byte-identical to ``ShardConfig(enabled=False)``.
* MapReduce payloads are exact for jobs without a ``combine`` hook (raw
  map emissions are re-ordered into the single-process emission
  sequence before one final reduce).  With a combiner, each worker
  ships one partial per key and the final reduce sees one partial per
  contributing shard instead of one per fleet — value-identical for
  associative combine/reduce pairs, the same contract incremental
  windows already impose.

Spawn-safety: worker processes are started through
``multiprocessing.get_context(start_method)``.  Under ``spawn`` (and
``forkserver``) the :class:`ShardBootstrap` must be picklable and
importable — a module-level class, not a closure; under the POSIX
default ``fork`` any bootstrap works.  The bootstrap contract is the
heart of it: ``build(ctx)`` must construct the application from scratch
inside the calling process (fresh clock, fresh substrate, fresh
drivers) and bind only the entities ``ctx.owns``.
"""

from __future__ import annotations

import functools
import multiprocessing
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Sequence,
    TYPE_CHECKING,
    Tuple,
)

from repro.errors import BindingError, ShardError
from repro.mapreduce.api import (
    CombineCollector,
    MapCollector,
    job_combiner,
)
from repro.mapreduce.partition import shard_index
from repro.runtime.clock import SimulationClock
from repro.runtime.component import GatherReading, SourceEvent
from repro.runtime.configbase import ConfigBase
from repro.telemetry.instrument import Instrumented, MetricSpec

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.runtime.app import Application

__all__ = [
    "ShardBootstrap",
    "ShardConfig",
    "ShardContext",
    "ShardRouter",
    "ShardedRuntime",
    "SimulatedFleetBootstrap",
]

_START_METHODS = (None, "fork", "spawn", "forkserver")


@dataclass(frozen=True)
class ShardConfig(ConfigBase):
    """How a sharded runtime partitions and executes.

    * ``enabled`` — off by default: the runtime stays single-process
      and byte-identical to the unsharded code path (the
      :class:`ShardedRuntime` then binds the whole fleet into one local
      application and never spawns a worker).
    * ``workers`` — worker process count; also the shard count, so the
      fleet partitions into exactly ``workers`` hash shards.
    * ``start_method`` — ``multiprocessing`` start method; ``None``
      uses the platform default (``fork`` on POSIX).  ``spawn`` and
      ``forkserver`` require a picklable, importable bootstrap.
    """

    enabled: bool = False
    workers: int = 4
    start_method: Optional[str] = None

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.start_method not in _START_METHODS:
            raise ValueError(
                f"start_method must be one of {_START_METHODS[1:]} or None"
            )


@dataclass(frozen=True)
class ShardContext:
    """Which slice of the fleet one process owns.

    Passed to :meth:`ShardBootstrap.build`: a worker receives its shard
    index and binds the entities it :meth:`owns`; the coordinator
    receives ``index=None`` and binds none.  When sharding is disabled
    the runtime builds with ``ShardContext(shards=1, index=0)``, which
    owns everything — the single-process degenerate case.
    """

    shards: int
    index: Optional[int] = None

    @property
    def is_coordinator(self) -> bool:
        return self.index is None

    def owns(self, entity_id: str) -> bool:
        """Does this process bind ``entity_id``?

        Pure function of ``(entity_id, shards)`` via the stable crc32
        partitioner, so every process in the gang agrees without
        coordination."""
        if self.index is None:
            return False
        return shard_index(entity_id, self.shards) == self.index


class ShardBootstrap:
    """Recipe for building one process's view of the application.

    Subclasses implement:

    * :meth:`fleet` — the **full** fleet's entity ids in global
      registration order.  Every process derives the same global
      positions from it; those positions are what the coordinator's
      merge sorts by.
    * :meth:`build` — construct a fresh, **unstarted**
      :class:`~repro.runtime.app.Application` in the calling process,
      installing every implementation but binding only the devices
      ``ctx.owns``.  The app's clock must be a
      :class:`~repro.runtime.clock.SimulationClock` (workers are driven
      by absolute clock-sync commands), and carrying a
      :class:`ShardConfig` on its :class:`RuntimeConfig` is how the
      runtime learns its worker count when none is passed explicitly.

    The bootstrap is pickled into worker processes under ``spawn``, so
    keep it a plain data record (design source, fleet size, seeds) —
    never live drivers or clocks.
    """

    def fleet(self) -> Sequence[str]:
        raise NotImplementedError  # pragma: no cover - interface

    def build(self, ctx: ShardContext) -> "Application":
        raise NotImplementedError  # pragma: no cover - interface


class ShardEntityProxy:
    """Coordinator-side handle on an entity living in a worker process.

    Mirrors the :class:`~repro.runtime.proxies.DeviceProxy` surface —
    ``entity_id`` / ``device_type`` / ``attributes`` properties, typed
    ``query``/``act``, and dynamic snake-case facets — but routes reads
    and actions through the :class:`ShardedRuntime` to the shard that
    owns the entity.  The ``repr`` matches ``DeviceProxy`` exactly so
    payload digests (context memoization) agree across modes.
    """

    __slots__ = ("_runtime", "_info", "_entity_id", "_attributes")

    def __init__(self, runtime, info, entity_id, attributes):
        object.__setattr__(self, "_runtime", runtime)
        object.__setattr__(self, "_info", info)
        object.__setattr__(self, "_entity_id", entity_id)
        object.__setattr__(self, "_attributes", dict(attributes))

    @property
    def entity_id(self) -> str:
        return self._entity_id

    @property
    def device_type(self) -> str:
        return self._info.name

    @property
    def attributes(self) -> Dict[str, Any]:
        return dict(self._attributes)

    def query(self, source: str) -> Any:
        """Query-driven read, served by the owning shard."""
        return self._runtime.query(self._entity_id, source)

    def act(self, action: str, **params: Any) -> Any:
        return self._runtime.act(self._entity_id, action, **params)

    def __getattr__(self, name: str) -> Any:
        from repro.naming import (
            action_method_name,
            camel_to_snake,
            query_method_name,
        )

        info = object.__getattribute__(self, "_info")
        for source in info.sources:
            if query_method_name(source) == name:
                return functools.partial(self.query, source)
        for action in info.actions:
            if action_method_name(action) == name:
                return functools.partial(self.act, action)
        attributes = object.__getattribute__(self, "_attributes")
        for attribute in attributes:
            if camel_to_snake(attribute) == name:
                return attributes[attribute]
        raise AttributeError(f"device {info.name} has no facet '{name}'")

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("device proxies are read-only handles")

    def __repr__(self) -> str:
        return f"<proxy {self.device_type} {self.entity_id}>"


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


class _ShardWorker:
    """One worker process: a shard-local application plus the command
    loop the coordinator drives over a pipe.

    The worker's application is never ``start()``-ed — its periodic
    jobs live at the coordinator — but all of its machinery below the
    wiring layer (registry, sweep engine, supervision, read cache,
    columnar batch path) is fully live, which is exactly what the
    coordinator's gather commands exercise.
    """

    def __init__(self, bootstrap: ShardBootstrap, ctx: ShardContext):
        self.ctx = ctx
        self.app = bootstrap.build(ctx)
        if not isinstance(self.app.clock, SimulationClock):
            raise ShardError(
                "worker applications must run on a SimulationClock",
                shard=ctx.index,
            )
        self.clock: SimulationClock = self.app.clock
        # entity id -> global registration position, derived from the
        # full-fleet enumeration so every shard agrees on merge order.
        self._gpos = {
            entity_id: position
            for position, entity_id in enumerate(bootstrap.fleet())
        }
        self._events: List[Tuple[Any, ...]] = []
        # Poll results parked between the poll and map rounds of a
        # MapReduce gather: (context, interaction) -> keyed readings.
        self._pending: Dict[Tuple[str, int], List[Tuple[Any, ...]]] = {}
        # Re-attach every instance's publish hook to the recorder so
        # pushes surface in command replies instead of dead-ending in
        # the worker's subscriber-less bus.  Recording happens at the
        # instance (one record per publish), not at the bus (which
        # would double-count ancestor-topic deliveries).
        for instance in self.app.registry:
            instance.attach(self._record_publish)

    # -- event recording ------------------------------------------------

    def _record_publish(self, instance, source, value, index) -> None:
        if self.app.read_cache is not None:
            # Keep the worker-local cache semantics of
            # ``_deliver_source_event``: the push supersedes cached
            # reads of this source.
            self.app.read_cache.on_publish(instance, source)
        self._events.append(
            (
                instance.info.name,
                instance.entity_id,
                dict(instance.attributes),
                source,
                value,
                index,
            )
        )

    def _drain_events(self) -> List[Tuple[Any, ...]]:
        events, self._events = self._events, []
        return events

    # -- commands -------------------------------------------------------

    def _cmd_sync(self, target: float) -> Dict[str, Any]:
        self.clock.run_until(target)
        return {"events": self._drain_events()}

    def _cmd_poll(
        self, target: float, name: str, index: int
    ) -> Dict[str, Any]:
        """Sweep this shard for one periodic gather.

        Runs the exact per-shard half of
        ``Application._collect_payload``: sweep engine fan-out (serial
        under the simulation clock, columnar when the batch path is
        on), outcome folding with supervision/stale accounting, and
        group-key extraction.  Values stay in this process for
        MapReduce gathers — only ``{group: min gpos}`` crosses the pipe
        until the map round.
        """
        self.clock.run_until(target)
        app = self.app
        interaction = app.design.contexts[name].decl.interactions[index]
        source = interaction.source
        sampler = app._read_sampler(interaction)
        dropped_before = app._gather_network_dropped
        failed_before = app._gather_read_failed
        outcomes = app.sweeper.sweep(
            interaction.device,
            functools.partial(app._gather_read, source, sampler),
            read_column=(
                functools.partial(app._gather_read_column, source, sampler)
                if app._columnar_reads
                else None
            ),
        )
        readings = app._fold_read_outcomes(outcomes, source)
        reply: Dict[str, Any] = {
            "dropped": app._gather_network_dropped - dropped_before,
            "failed": app._gather_read_failed - failed_before,
            "events": self._drain_events(),
        }
        gpos = self._gpos
        group = interaction.group
        if group is None:
            reply["kind"] = "flat"
            reply["data"] = [
                (
                    gpos[instance.entity_id],
                    instance.info.name,
                    instance.entity_id,
                    dict(instance.attributes),
                    value,
                )
                for instance, value in readings
            ]
            return reply
        keyed = []
        for instance, value in readings:
            try:
                key = instance.attributes[group.attribute]
            except KeyError:
                raise BindingError(
                    f"entity '{instance.entity_id}' has no attribute "
                    f"'{group.attribute}' to group by"
                ) from None
            keyed.append((gpos[instance.entity_id], key, value))
        if not group.uses_mapreduce:
            reply["kind"] = "grouped"
            reply["data"] = keyed
            return reply
        self._pending[(name, index)] = keyed
        mins: Dict[Any, int] = {}
        for position, key, __ in keyed:
            if key not in mins or position < mins[key]:
                mins[key] = position
        reply["kind"] = "mapreduce"
        reply["keys"] = mins
        return reply

    def _cmd_map(
        self, name: str, index: int, ranks: Dict[Any, int]
    ) -> Dict[str, Any]:
        """Map (and map-side combine) the parked poll readings.

        ``ranks`` is the coordinator's global group order — the rank of
        each group's first *surviving* reading across all shards — so
        sorting this shard's inputs by ``(rank, gpos)`` reproduces the
        exact slice of the single-process input sequence this shard
        owns, and the emission tags ``(rank, gpos, emission)`` are
        globally comparable.
        """
        keyed = self._pending.pop((name, index))
        job = self.app.implementation(name)
        keyed.sort(key=lambda row: (ranks[row[1]], row[0]))
        pairs: List[Tuple[Tuple[int, int, int], Any, Any]] = []
        for position, key, value in keyed:
            collector = MapCollector()
            job.map(key, value, collector)
            rank = ranks[key]
            emissions = enumerate(collector.pairs)
            for emission, (out_key, out_value) in emissions:
                tag = (rank, position, emission)
                pairs.append((tag, out_key, out_value))
        mapped = len(pairs)
        combine = job_combiner(job)
        if combine is not None and pairs:
            grouped: Dict[Any, List[Tuple[Any, Any]]] = {}
            for tag, out_key, out_value in pairs:
                grouped.setdefault(out_key, []).append((tag, out_value))
            combined = []
            for out_key, tagged in grouped.items():
                collector = CombineCollector()
                combine(out_key, [v for __, v in tagged], collector)
                first = min(tag for tag, __ in tagged)
                for pair_key, pair_value in collector.pairs:
                    combined.append((first, pair_key, pair_value))
            pairs = combined
        return {
            "data": pairs,
            "mapped": mapped,
            "events": self._drain_events(),
        }

    def _cmd_publish(
        self, target, entity_id, source, value, index
    ) -> Dict[str, Any]:
        self.clock.run_until(target)
        instance = self.app.registry.get(entity_id)
        instance.publish(source, value, index=index)
        return {"events": self._drain_events()}

    def _cmd_read(self, target, entity_id, source) -> Dict[str, Any]:
        self.clock.run_until(target)
        value = self.app.registry.get(entity_id).read(source)
        return {"value": value, "events": self._drain_events()}

    def _cmd_act(self, target, entity_id, action, params) -> Dict[str, Any]:
        self.clock.run_until(target)
        value = self.app.registry.get(entity_id).act(action, **params)
        return {"value": value, "events": self._drain_events()}

    def _cmd_stats(self) -> Dict[str, Any]:
        app = self.app
        return {
            "value": {
                "shard": self.ctx.index,
                "bound_entities": len(app.registry),
                "gather_network_dropped": app._gather_network_dropped,
                "gather_read_failed": app._gather_read_failed,
                "sweep": app.sweeper.stats(),
                "supervision": app.supervision.stats(),
            },
            "events": self._drain_events(),
        }

    def serve(self, conn) -> None:
        """The command loop: recv, dispatch, reply, until ``stop``."""
        handlers = {
            "sync": self._cmd_sync,
            "poll": self._cmd_poll,
            "map": self._cmd_map,
            "publish": self._cmd_publish,
            "read": self._cmd_read,
            "act": self._cmd_act,
            "stats": self._cmd_stats,
        }
        while True:
            try:
                message = conn.recv()
            except EOFError:
                break
            op = message[0]
            if op == "stop":
                conn.send(("ok", {"events": self._drain_events()}))
                break
            try:
                reply = handlers[op](*message[1:])
            except Exception as exc:  # noqa: BLE001 - shipped upstream
                try:
                    conn.send(("error", exc))
                except Exception:  # unpicklable exception payload
                    conn.send(
                        (
                            "error",
                            ShardError(repr(exc), shard=self.ctx.index),
                        )
                    )
            else:
                conn.send(("ok", reply))
        self.app.sweeper.close()
        conn.close()


def _shard_worker_main(conn, bootstrap, index, shards) -> None:
    """Worker process entry point (module-level for spawn pickling)."""
    try:
        worker = _ShardWorker(
            bootstrap, ShardContext(shards=shards, index=index)
        )
    except Exception as exc:  # noqa: BLE001 - surfaced as ShardError
        try:
            conn.send(("error", exc))
        except Exception:
            conn.send(("error", ShardError(repr(exc), shard=index)))
        conn.close()
        return
    conn.send(("ok", {"bound": len(worker.app.registry)}))
    worker.serve(conn)


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class ShardRouter(Instrumented):
    """Coordinator-side transport: commands out, events back.

    Owns the worker pipes.  ``broadcast`` sends to every worker before
    receiving any reply, which is where the parallelism comes from —
    all shards sweep (and sleep on their modeled device I/O)
    concurrently while the coordinator waits.  Replies always arrive in
    shard order, so merge inputs are deterministic.
    """

    metric_specs = (
        MetricSpec(
            "shard_commands_total",
            "_commands",
            stats_key="commands",
            help="Commands sent to shard workers.",
        ),
        MetricSpec(
            "shard_events_routed_total",
            "_events_routed",
            stats_key="events_routed",
            help="Worker-side device publishes replayed into the "
            "coordinator bus.",
        ),
        MetricSpec(
            "shard_publishes_forwarded_total",
            "_publishes",
            stats_key="publishes_forwarded",
            help="Cross-shard publishes routed to their owning worker.",
        ),
        MetricSpec(
            "shard_errors_total",
            "_errors",
            stats_key="errors",
            help="Worker commands that failed or lost their worker.",
        ),
    )

    def __init__(self):
        self._workers: List[Tuple[Any, Any]] = []  # (process, conn)
        self._commands = 0
        self._events_routed = 0
        self._publishes = 0
        self._errors = 0

    def __len__(self) -> int:
        return len(self._workers)

    def attach(self, workers: List[Tuple[Any, Any]]) -> None:
        self._workers = list(workers)

    def _receive(self, shard: int) -> Dict[str, Any]:
        __, conn = self._workers[shard]
        try:
            reply = conn.recv()
        except EOFError:
            self._errors += 1
            raise ShardError(
                "worker process died mid-command", shard=shard
            ) from None
        status, payload = reply
        if status == "error":
            self._errors += 1
            if isinstance(payload, BaseException):
                raise payload
            raise ShardError(repr(payload), shard=shard)
        return payload

    def send(self, shard: int, command: Tuple[Any, ...]) -> Dict[str, Any]:
        """One command to one shard; returns the reply payload."""
        self._commands += 1
        __, conn = self._workers[shard]
        conn.send(command)
        return self._receive(shard)

    def broadcast(self, command: Tuple[Any, ...]) -> List[Dict[str, Any]]:
        """The same command to every shard; replies in shard order."""
        self._commands += len(self._workers)
        for __, conn in self._workers:
            conn.send(command)
        return [self._receive(shard) for shard in range(len(self._workers))]

    def shutdown(self) -> None:
        for __, conn in self._workers:
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for process, conn in self._workers:
            try:
                conn.recv()
            except EOFError:
                pass
            conn.close()
            process.join(timeout=10)
            if process.is_alive():  # pragma: no cover - hung worker
                process.terminate()
                process.join(timeout=10)
        self._workers = []


class ShardedRuntime(Instrumented):
    """Coordinator for a process-sharded application.

    ::

        runtime = ShardedRuntime(bootstrap)   # ShardConfig from the app
        runtime.start()
        runtime.advance(600.0)
        runtime.stop()

    With ``ShardConfig(enabled=False)`` (the default) no worker is ever
    spawned: the bootstrap builds one local application owning the
    whole fleet, and ``start``/``advance``/``publish``/``query``/
    ``act`` degrade to direct calls on it — byte-identical to not using
    this class at all.  That degenerate mode is what the equivalence
    tests diff the sharded mode against.
    """

    metric_specs = (
        MetricSpec(
            "shard_sweeps_total",
            "_sweeps",
            stats_key="sweeps",
            help="Periodic gathers fanned out across shard workers.",
        ),
        MetricSpec(
            "shard_merge_pairs_total",
            "_merge_pairs",
            stats_key="merge_pairs",
            help="Map-side partial pairs merged at the coordinator.",
        ),
        MetricSpec(
            "shard_remote_reads_total",
            "_remote_reads",
            stats_key="remote_reads",
            help="Query-driven reads routed to an owning shard.",
        ),
        MetricSpec(
            "shard_workers",
            "_worker_count",
            kind="gauge",
            stats_key="workers",
            help="Live shard worker processes.",
        ),
    )

    def __init__(
        self,
        bootstrap: ShardBootstrap,
        shard: Optional[ShardConfig] = None,
    ):
        self.bootstrap = bootstrap
        if shard is None:
            # Probe build: learn the ShardConfig the bootstrap puts on
            # its RuntimeConfig.  The probe binds nothing (coordinator
            # context) and is discarded.
            probe = bootstrap.build(ShardContext(shards=1, index=None))
            shard = probe.config.shard
        self.config = shard
        self.sharded = shard.enabled
        if self.sharded:
            ctx = ShardContext(shards=shard.workers, index=None)
        else:
            ctx = ShardContext(shards=1, index=0)
        self.app: "Application" = bootstrap.build(ctx)
        if self.sharded and not isinstance(self.app.clock, SimulationClock):
            raise ShardError(
                "the coordinator application must run on a "
                "SimulationClock (workers are driven by absolute "
                "clock-sync commands)"
            )
        self.router = ShardRouter()
        self._sweeps = 0
        self._merge_pairs = 0
        self._remote_reads = 0
        self._worker_count = 0
        self._started = False
        # interaction identity -> (context name, interaction index);
        # how the delegate names a gather to the workers.
        self._interactions: Dict[int, Tuple[str, int]] = {}
        for name, info in self.app.design.contexts.items():
            interactions = info.decl.interactions
            for position, interaction in enumerate(interactions):
                self._interactions[id(interaction)] = (name, position)
        # entity id -> coordinator-side proxy, built lazily from worker
        # reply rows (attributes are static for the fleet's lifetime).
        self._proxies: Dict[str, ShardEntityProxy] = {}

    # -- life-cycle -----------------------------------------------------

    def start(self) -> "ShardedRuntime":
        if self._started:
            raise ShardError("sharded runtime already started")
        self.attach_metrics(self.app.metrics)
        self.router.attach_metrics(self.app.metrics)
        if self.sharded:
            self._spawn_workers()
            self.app.attach_gather_delegate(self._collect_sharded)
        self.app.start()
        self._started = True
        return self

    def _spawn_workers(self) -> None:
        mp = multiprocessing.get_context(self.config.start_method)
        workers = []
        for index in range(self.config.workers):
            parent, child = mp.Pipe()
            process = mp.Process(
                target=_shard_worker_main,
                args=(child, self.bootstrap, index, self.config.workers),
                daemon=True,
                name=f"repro-shard-{index}",
            )
            process.start()
            child.close()
            workers.append((process, parent))
        self.router.attach(workers)
        # Ready handshake: every worker reports its shard build (or the
        # exception that killed it) before the first command.
        for shard in range(len(workers)):
            self.router._receive(shard)
        self._worker_count = len(workers)

    def stop(self) -> None:
        if not self._started:
            return
        self.app.stop()
        if self.sharded:
            self.app.attach_gather_delegate(None)
            self.router.shutdown()
            self._worker_count = 0
        self._started = False

    def advance(self, seconds: float) -> int:
        """Drive the coordinator clock (gathers fan out to workers),
        then sync worker clocks to the final time and drain any events
        their own scheduled jobs raised."""
        fired = self.app.advance(seconds)
        if self.sharded and self._started:
            sync = ("sync", self.app.clock.now())
            for reply in self.router.broadcast(sync):
                self._replay_events(reply["events"])
        return fired

    # -- cross-shard routing --------------------------------------------

    def _owning_shard(self, entity_id: str) -> int:
        return shard_index(entity_id, self.config.workers)

    def publish(
        self, entity_id: str, source: str, value: Any, index: Any = None
    ) -> None:
        """Event-driven publish on an entity, wherever it lives.

        Sharded: the command routes to the owning worker, the worker's
        device instance validates and records the publish, and the
        event replays into the coordinator bus.  Unsharded: a direct
        ``instance.publish`` — the identical single-process path.
        """
        if not self.sharded:
            self.app.registry.get(entity_id).publish(
                source, value, index=index
            )
            return
        self.router._publishes += 1
        reply = self.router.send(
            self._owning_shard(entity_id),
            (
                "publish",
                self.app.clock.now(),
                entity_id,
                source,
                value,
                index,
            ),
        )
        self._replay_events(reply["events"])

    def query(self, entity_id: str, source: str) -> Any:
        """Query-driven read routed to the owning shard."""
        if not self.sharded:
            return self.app.registry.get(entity_id).read(source)
        self._remote_reads += 1
        reply = self.router.send(
            self._owning_shard(entity_id),
            ("read", self.app.clock.now(), entity_id, source),
        )
        self._replay_events(reply["events"])
        return reply["value"]

    def act(self, entity_id: str, action: str, **params: Any) -> Any:
        """Actuation routed to the owning shard."""
        if not self.sharded:
            return self.app.registry.get(entity_id).act(action, **params)
        reply = self.router.send(
            self._owning_shard(entity_id),
            ("act", self.app.clock.now(), entity_id, action, params),
        )
        self._replay_events(reply["events"])
        return reply["value"]

    def worker_stats(self) -> List[Dict[str, Any]]:
        """Per-shard registry/sweep/supervision snapshots."""
        if not self.sharded:
            return []
        replies = self.router.broadcast(("stats",))
        return [reply["value"] for reply in replies]

    # -- event replay ---------------------------------------------------

    def _proxy_for(
        self, type_name: str, entity_id: str, attributes
    ) -> ShardEntityProxy:
        proxy = self._proxies.get(entity_id)
        if proxy is None:
            proxy = ShardEntityProxy(
                self,
                self.app.design.devices[type_name],
                entity_id,
                attributes,
            )
            self._proxies[entity_id] = proxy
        return proxy

    def _replay_events(self, events) -> None:
        """Publish worker-recorded device events into the coordinator
        bus, mirroring ``Application._on_device_publish`` (network
        model, delivery plans, cache invalidation) with a routed proxy
        in place of the local instance."""
        app = self.app
        for type_name, entity_id, attributes, source, value, index in events:
            self._events_routed_bump()
            if app.read_cache is not None:
                app.read_cache.invalidate(entity_id, source)
            proxy = self._proxy_for(type_name, entity_id, attributes)
            deliver = functools.partial(
                self._dispatch_remote,
                type_name,
                proxy,
                source,
                value,
                index,
            )
            if app.network is None:
                deliver()
            else:
                app.network.transmit(app.clock, deliver)

    def _events_routed_bump(self) -> None:
        self.router._events_routed += 1

    def _dispatch_remote(self, type_name, proxy, source, value, index) -> None:
        app = self.app
        event = SourceEvent(
            device=proxy,
            source=source,
            value=value,
            index=index,
            timestamp=app.clock.now(),
        )
        planner = app.planner
        if planner is not None:
            plan = planner.source_plan(type_name, source)
            app.bus.dispatch_compiled(plan.targets, len(plan.topics), event)
            return
        info = app.design.devices[type_name]
        for topic in app._topics_for(info, source):
            app.bus.publish(topic, event)

    # -- the delegated gather -------------------------------------------

    def _collect_sharded(self, interaction, implementation) -> Any:
        """Collect one periodic gather across all shards.

        Replaces ``Application._collect_payload`` via the gather
        delegate: every worker sweeps its shard concurrently, and the
        replies merge back into the exact single-process payload —
        sorted by global registration position for flat and grouped
        gathers, re-sequenced map emissions with a coordinator-side
        final reduce for MapReduce gathers.
        """
        app = self.app
        name, index = self._interactions[id(interaction)]
        self._sweeps += 1
        target = app.clock.now()
        polls = self.router.broadcast(("poll", target, name, index))
        app._gather_network_dropped += sum(r["dropped"] for r in polls)
        app._gather_read_failed += sum(r["failed"] for r in polls)
        for reply in polls:
            self._replay_events(reply["events"])
        kind = polls[0]["kind"]
        placement = app.placement
        if kind == "flat":
            rows = [row for reply in polls for row in reply["data"]]
            rows.sort(key=lambda row: row[0])
            if placement is not None:
                # Shards are cloud-side for ungrouped gathers: every
                # raw reading crossed the continuum.
                placement.account_cloud([(None, row[4]) for row in rows])
            return [
                GatherReading(
                    self._proxy_for(type_name, entity_id, attributes),
                    value,
                )
                for __, type_name, entity_id, attributes, value in rows
            ]
        if kind == "grouped":
            rows = [row for reply in polls for row in reply["data"]]
            rows.sort(key=lambda row: row[0])
            if placement is not None:
                placement.account_cloud([(None, row[2]) for row in rows])
            grouped: Dict[Any, List[Any]] = {}
            for __, key, value in rows:
                grouped.setdefault(key, []).append(value)
            return grouped
        # MapReduce: rank groups by their first surviving reading
        # across the whole fleet, then let each worker map+combine its
        # slice in that global order.
        mins: Dict[Any, int] = {}
        for reply in polls:
            for key, position in reply["keys"].items():
                if key not in mins or position < mins[key]:
                    mins[key] = position
        order = sorted(mins, key=mins.__getitem__)
        ranks = {key: rank for rank, key in enumerate(order)}
        maps = self.router.broadcast(("map", name, index, ranks))
        for reply in maps:
            self._replay_events(reply["events"])
        tagged = [pair for reply in maps for pair in reply["data"]]
        if placement is not None and id(interaction) in app._edge_interactions:
            # One edge node per shard: the worker-side map+combine *is*
            # the edge execution, so the shipped partials are the WAN
            # traffic — sample loss and account bytes per partial.
            placement.note_edge_sweep(len(maps))
            tagged = placement.deliver_partials(tagged)
        tagged.sort(key=lambda pair: pair[0])
        pairs = [(key, value) for __, key, value in tagged]
        mapped = sum(reply["mapped"] for reply in maps)
        self._merge_pairs += len(pairs)
        return app.mapreduce.merge_partials(implementation, pairs, mapped)

    def _extra_stats(self) -> Dict[str, Any]:
        return {"router": self.router.stats()}


# ----------------------------------------------------------------------
# A spawn-safe simulated fleet (benchmarks, smoke tests, examples)
# ----------------------------------------------------------------------


_FLEET_DESIGN = """\
device ShardSensor {
    attribute zone as ZoneEnum;
    source level as Integer;
}
enumeration ZoneEnum { Z0, Z1, Z2, Z3 }

context ZoneLoad as Integer {
    when periodic level from ShardSensor <1 min>
    grouped by zone
    with map as Integer reduce as Integer
    always publish;
}
"""

_ZONES = ("Z0", "Z1", "Z2", "Z3")


class _ZoneLoadJob:
    """Associative sum-per-zone MapReduce (exact under sharding).

    The combiner keeps the cross-process shuffle O(zones): each worker
    ships one partial sum per zone instead of one pair per device."""

    def map(self, zone, level, collector):
        collector.emit_map(zone, level)

    def combine(self, zone, values, collector):
        collector.emit_combine(zone, sum(values))

    def reduce(self, zone, values, collector):
        collector.emit_reduce(zone, sum(values))


def _level_model(draw: float) -> int:
    return int(draw * 100.0)


@dataclass(frozen=True)
class SimulatedFleetBootstrap(ShardBootstrap):
    """A ready-made picklable bootstrap over a simulated sensor fleet.

    Builds a ``count``-device fleet of ``ShardSensor`` entities (zoned
    round-robin) over one :class:`~repro.simulation.sensors.
    GatewaySubstrate` per process, with a periodic grouped-MapReduce
    ``ZoneLoad`` context.  ``service_time`` models per-device gateway
    read latency — the quantity the shard-scaling benchmark overlaps
    across worker processes.  Module-level and frozen, so it survives
    ``spawn`` pickling; the shard-scaling benchmark and the spawn smoke
    test both build from it.
    """

    count: int = 1000
    seed: int = 0
    service_time: float = 0.0
    shard: Optional[ShardConfig] = None
    batch: bool = False
    cache: bool = False

    def fleet(self) -> Sequence[str]:
        return [f"shard-sensor-{index:06d}" for index in range(self.count)]

    def build(self, ctx: ShardContext) -> "Application":
        from repro.api import Application, RuntimeConfig, analyze
        from repro.runtime.cache import CacheConfig
        from repro.runtime.component import Context
        from repro.runtime.plan import BatchConfig
        from repro.simulation.sensors import GatewaySubstrate

        class ZoneLoadImpl(Context, _ZoneLoadJob):
            def on_periodic_level(self, by_zone, discover):
                return sum(by_zone.values())

        config = RuntimeConfig(
            shard=self.shard if self.shard is not None else ShardConfig(),
            batch=BatchConfig(enabled=self.batch),
            cache=CacheConfig(enabled=self.cache),
        )
        app = Application(analyze(_FLEET_DESIGN), config)
        app.implement("ZoneLoad", ZoneLoadImpl())
        substrate = GatewaySubstrate(
            app.clock,
            seed=self.seed,
            models={"level": _level_model},
            service_time=self.service_time,
        )
        for position, entity_id in enumerate(self.fleet()):
            if ctx.owns(entity_id):
                app.create_device(
                    "ShardSensor",
                    entity_id,
                    substrate.driver("level"),
                    zone=_ZONES[position % len(_ZONES)],
                )
        return app
