"""Entity registry: which devices are bound to the environment.

Registration is the first orchestration activity (*binding entities*,
Section IV): "when sensors are deployed in a house or in a parking lot,
each sensor needs to be registered and attribute values defined".  The
registry indexes instances by device type — including ancestor types, so a
query for ``DisplayPanel`` finds ``ParkingEntrancePanel`` instances — and
notifies listeners, which is how runtime-time binding reaches running
applications.
"""

from __future__ import annotations

import warnings
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import BindingError
from repro.faults.policy import HEALTHY, QUARANTINED
from repro.runtime.device import DeviceInstance
from repro.telemetry.instrument import Instrumented, MetricSpec

Listener = Callable[[str, DeviceInstance], None]
HealthLookup = Callable[[str], str]


def _index_key(type_name: str, attribute: str, value: Any):
    """Index key for an attribute value, or None when unhashable
    (structure-typed attributes fall back to the type-bucket scan)."""
    try:
        hash(value)
    except TypeError:
        return None
    return (type_name, attribute, value)


class EntityRegistry(Instrumented):
    """Mutable index of bound :class:`DeviceInstance` objects.

    Instances are indexed by type (including ancestors) and by
    ``(type, attribute, value)`` so attribute-filtered discovery over a
    city-scale fleet touches only the matching entities rather than
    scanning the registry.  Attribute values are fixed at registration
    (the paper's binding model), which is what makes the index sound.

    The lookup/index counters are pull-time callback metrics declared
    through the shared :class:`Instrumented` protocol: discovery pays
    nothing per lookup for being observable.
    """

    metric_specs = (
        MetricSpec(
            "registry_lookups_total",
            "_lookups",
            stats_key="lookups",
            help="instances_of() discovery lookups served.",
        ),
        MetricSpec(
            "registry_index_hits_total",
            "_index_hits",
            stats_key="index_hits",
            help="Lookups served from a (type, attribute, value) index "
            "bucket instead of a type scan.",
        ),
        MetricSpec(
            "registry_registrations_total",
            "_registrations",
            stats_key="registrations",
            help="Entities registered over the registry's lifetime.",
        ),
        MetricSpec(
            "registry_unregistrations_total",
            "_unregistrations",
            stats_key="unregistrations",
            help="Entities unregistered over the registry's lifetime.",
        ),
        MetricSpec(
            "registry_entities",
            "__len__",
            kind="gauge",
            stats_key="entities",
            help="Entities currently bound.",
        ),
    )

    def __init__(self, metrics=None):
        self._by_id: Dict[str, DeviceInstance] = {}
        self._by_type: Dict[str, List[DeviceInstance]] = {}
        self._by_attribute: Dict[tuple, List[DeviceInstance]] = {}
        self._listeners: List[Listener] = []
        self._health_lookup: Optional[HealthLookup] = None
        self._lookups = 0
        self._index_hits = 0
        self._registrations = 0
        self._unregistrations = 0
        self._version = 0
        # iter_shards memo: argument tuple -> (version, partition).
        # Only consulted/populated when per-instance state (failed
        # flags, health views) cannot filter the partition — see
        # _shards_memoizable.
        self._shard_memo: Dict[Tuple[Any, ...], Tuple[int, Any]] = {}
        if metrics is not None:
            self.attach_metrics(metrics)

    @property
    def version(self) -> int:
        """Monotonic binding-change counter (bumped on every register
        and unregister).  Consumers caching values derived from the
        bound population — the delivery planner's grouping membership
        tables — capture the version at compile time and treat any
        later binding change as expiry."""
        return self._version

    def attach_health(self, lookup: HealthLookup) -> None:
        """Give discovery a health view (entity_id -> health state).

        The application wires its :class:`SupervisionManager` in here;
        without one, every entity reads as healthy and the health
        filters below are no-ops.
        """
        self._health_lookup = lookup

    def health_of(self, entity_id: str) -> str:
        lookup = self._health_lookup
        return HEALTHY if lookup is None else lookup(entity_id)

    def register(self, instance: DeviceInstance) -> DeviceInstance:
        """Bind an instance; rejects duplicate entity ids."""
        if instance.entity_id in self._by_id:
            raise BindingError(
                f"entity id '{instance.entity_id}' is already registered"
            )
        self._by_id[instance.entity_id] = instance
        for type_name in (instance.info.name, *instance.info.ancestors):
            self._by_type.setdefault(type_name, []).append(instance)
            for attribute, value in instance.attributes.items():
                key = _index_key(type_name, attribute, value)
                if key is not None:
                    self._by_attribute.setdefault(key, []).append(instance)
        self._registrations += 1
        self._version += 1
        for listener in list(self._listeners):
            listener("register", instance)
        return instance

    def unregister(self, entity_id: str) -> DeviceInstance:
        try:
            instance = self._by_id.pop(entity_id)
        except KeyError:
            raise BindingError(f"no entity with id '{entity_id}'") from None
        for type_name in (instance.info.name, *instance.info.ancestors):
            self._by_type[type_name].remove(instance)
            for attribute, value in instance.attributes.items():
                key = _index_key(type_name, attribute, value)
                if key is not None:
                    self._by_attribute[key].remove(instance)
        self._unregistrations += 1
        self._version += 1
        for listener in list(self._listeners):
            listener("unregister", instance)
        return instance

    def get(self, entity_id: str) -> DeviceInstance:
        try:
            return self._by_id[entity_id]
        except KeyError:
            raise BindingError(f"no entity with id '{entity_id}'") from None

    _FILTER_KEYWORDS = ("include_failed", "health", "include_quarantined")

    def instances_of(
        self,
        device_type: str,
        *legacy_positional: Any,
        include_failed: bool = False,
        health: Optional[str] = None,
        include_quarantined: bool = False,
        **attribute_filters: Any,
    ) -> List[DeviceInstance]:
        """All instances whose type is ``device_type`` or a subtype of it,
        optionally filtered by exact attribute values.

        **Iteration-order guarantee.**  Results are always returned in
        *registration order* (the order instances were bound), whatever
        index bucket served the lookup — this is the deterministic
        order the :class:`~repro.runtime.sweep.SweepEngine` merges
        threaded sweep results back into, so it is part of the public
        contract, not an implementation accident.

        The filter arguments (``include_failed``, ``health``,
        ``include_quarantined``) are keyword-only; passing them
        positionally still works for one release through a shim that
        emits a :class:`DeprecationWarning`.

        With filters, the narrowest ``(type, attribute, value)`` index
        bucket seeds the scan, so cost tracks the match count rather than
        the fleet size.  Every instance in an index bucket matches that
        bucket's attribute by construction, so only the *other* filters
        are re-checked — with a single indexed filter the scan degenerates
        to the failed-instance check alone.

        Health filtering (supervision layer): by default *quarantined*
        entities are hidden — chronically flapping devices drop out of
        discovery until a successful probe restores them.  Pass
        ``health='degraded'`` (or ``'healthy'``/``'quarantined'``) to
        select one state, or ``include_quarantined=True`` to see the
        whole fleet (the gather path does, so quarantined entities keep
        receiving recovery probes when their breaker half-opens).
        """
        if legacy_positional:
            if len(legacy_positional) > len(self._FILTER_KEYWORDS):
                raise TypeError(
                    "instances_of() takes at most "
                    f"{1 + len(self._FILTER_KEYWORDS)} positional "
                    f"arguments ({1 + len(legacy_positional)} given)"
                )
            names = self._FILTER_KEYWORDS[: len(legacy_positional)]
            warnings.warn(
                "passing instances_of() filter arguments positionally "
                f"({', '.join(names)}) is deprecated; pass them as "
                "keywords",
                DeprecationWarning,
                stacklevel=2,
            )
            supplied = {
                "include_failed": include_failed,
                "health": health,
                "include_quarantined": include_quarantined,
            }
            defaults = {
                "include_failed": False,
                "health": None,
                "include_quarantined": False,
            }
            for name, value in zip(names, legacy_positional):
                if supplied[name] != defaults[name]:
                    raise TypeError(
                        f"instances_of() got multiple values for "
                        f"argument '{name}'"
                    )
                supplied[name] = value
            include_failed = supplied["include_failed"]
            health = supplied["health"]
            include_quarantined = supplied["include_quarantined"]
        self._lookups += 1
        candidates: Iterable[DeviceInstance]
        buckets = []
        for name, value in attribute_filters.items():
            key = _index_key(device_type, name, value)
            if key is None:
                # Unhashable filter value: the index cannot serve it;
                # fall back to scanning the type bucket.
                buckets = []
                break
            buckets.append((name, self._by_attribute.get(key, [])))
        if buckets:
            self._index_hits += 1
            seed_name, candidates = min(
                buckets, key=lambda bucket: len(bucket[1])
            )
            remaining = [
                (name, value)
                for name, value in attribute_filters.items()
                if name != seed_name
            ]
        else:
            candidates = self._by_type.get(device_type, ())
            remaining = list(attribute_filters.items())
        lookup = self._health_lookup
        check_health = lookup is not None and (
            health is not None or not include_quarantined
        )
        results = []
        for instance in candidates:
            if instance.failed and not include_failed:
                continue
            if check_health:
                state = lookup(instance.entity_id)
                if health is not None:
                    if state != health:
                        continue
                elif state == QUARANTINED and not include_quarantined:
                    continue
            elif health is not None and health != HEALTHY:
                # No health view attached: everything is healthy.
                continue
            if remaining:
                attributes = instance.attributes
                if not all(
                    attributes.get(name) == value
                    for name, value in remaining
                ):
                    continue
            results.append(instance)
        return results

    def iter_shards(
        self,
        device_type: str,
        *,
        attribute: Optional[str] = None,
        shards: Optional[int] = None,
        include_failed: bool = False,
        include_quarantined: bool = False,
    ) -> List[Tuple[str, List[Tuple[int, DeviceInstance]]]]:
        """Instances of ``device_type`` partitioned into deterministic
        shards for sweep fan-out.

        Two partitioning modes:

        * **Attribute mode** (default) — shards are keyed by the value
          of one registry-indexed attribute (``attribute``, or the
          device type's first declared attribute when ``None``;
          attribute-less types collapse to one ``""`` shard).  Only
          shards with at least one member exist, and shard order is the
          registration order of each shard's first instance.
        * **Hash mode** (``shards=N``) — instances are partitioned by
          the stable crc32 hash of their entity id
          (:func:`repro.mapreduce.partition.shard_index`) into
          **exactly** ``N`` shards keyed ``"hash:0"`` .. ``"hash:N-1"``,
          in that fixed order.  When ``shards`` exceeds the entity
          count, the surplus shards are present and **empty** — never
          dropped, renumbered, or coalesced — so a process-sharded
          runtime can hold one worker per shard whatever the fleet size
          and the assignment of any one entity never depends on how
          many other entities exist.  ``shards`` and ``attribute`` are
          mutually exclusive.

        Each member is a ``(position, instance)`` pair where
        ``position`` is the instance's index in the registration-ordered
        ``instances_of`` result — shards may interleave in registration
        order, and the positions are what lets the
        :class:`~repro.runtime.sweep.SweepEngine` (and the sharded
        runtime's coordinator) merge per-shard results back into the
        exact registry iteration order.  Instances keep registration
        order within their shard in both modes.
        """
        if shards is not None:
            if attribute is not None:
                raise ValueError(
                    "iter_shards() takes either attribute= or shards=, "
                    "not both"
                )
            if shards < 1:
                raise ValueError("shards must be >= 1")
        # Partition memo: at fleet scale re-deriving the shard lists
        # every sweep dominates the sweep's own bookkeeping, yet the
        # partition is a pure function of the registry contents
        # whenever no per-instance state (failed flags, health views)
        # can filter members out.  In that case one version compare
        # plus a flag scan replaces the whole rebuild; callers must
        # treat the returned partition as immutable.
        memo_key = (
            device_type,
            attribute,
            shards,
            include_failed,
            include_quarantined,
        )
        memoizable = self._shards_memoizable(
            device_type, include_failed, include_quarantined
        )
        if memoizable:
            memo = self._shard_memo.get(memo_key)
            if memo is not None and memo[0] == self._version:
                # Still one discovery lookup served, just not recomputed.
                self._lookups += 1
                return memo[1]
        instances = self.instances_of(
            device_type,
            include_failed=include_failed,
            include_quarantined=include_quarantined,
        )
        if shards is not None:
            from repro.mapreduce.partition import shard_index

            buckets: List[List[Tuple[int, DeviceInstance]]] = [
                [] for __ in range(shards)
            ]
            for position, instance in enumerate(instances):
                buckets[shard_index(instance.entity_id, shards)].append(
                    (position, instance)
                )
            result = [
                (f"hash:{index}", members)
                for index, members in enumerate(buckets)
            ]
            if memoizable:
                self._shard_memo[memo_key] = (self._version, result)
            return result
        grouped: Dict[str, List[Tuple[int, DeviceInstance]]] = {}
        for position, instance in enumerate(instances):
            name = attribute
            if name is None:
                declared = instance.info.attributes
                name = next(iter(declared)) if declared else None
            value = (
                instance.attributes.get(name, "") if name is not None else ""
            )
            grouped.setdefault(str(value), []).append((position, instance))
        result = list(grouped.items())
        if memoizable:
            self._shard_memo[memo_key] = (self._version, result)
        return result

    def _shards_memoizable(
        self,
        device_type: str,
        include_failed: bool,
        include_quarantined: bool,
    ) -> bool:
        """Is the iter_shards partition a pure function of the registry
        version right now?

        Not when a health view is attached and quarantined instances
        would be excluded, and not when any instance of the type
        carries a failed flag that ``include_failed=False`` would
        filter (the flag flips without a version bump).  The flag scan
        is one attribute load per instance — two orders of magnitude
        cheaper than rebuilding the partition.
        """
        if self._health_lookup is not None and not include_quarantined:
            return False
        if not include_failed and any(
            instance.failed
            for instance in self._by_type.get(device_type, ())
        ):
            return False
        return True

    def add_listener(self, listener: Listener) -> Callable[[], None]:
        """Subscribe to register/unregister events; returns a remover."""
        self._listeners.append(listener)

        def remove() -> None:
            if listener in self._listeners:
                self._listeners.remove(listener)

        return remove

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self):
        return iter(self._by_id.values())

    def entity_ids(self) -> List[str]:
        return sorted(self._by_id)

    def clear(self) -> None:
        for entity_id in list(self._by_id):
            self.unregister(entity_id)
