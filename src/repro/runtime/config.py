"""Runtime configuration: one record instead of keyword sprawl.

``Application.__init__`` had grown a new keyword argument per release
(clock, executor, network knobs, error policy, streaming windows,
metrics, and now the supervision/stale policies of :mod:`repro.faults`).
:class:`RuntimeConfig` gathers them into a single validated dataclass::

    from repro.runtime.config import RuntimeConfig

    config = RuntimeConfig(
        clock=SimulationClock(),
        error_policy="isolate",
        supervision=SupervisionPolicy(failure_threshold=3),
        stale=StalePolicy("last_known", max_age_seconds=600),
    )
    app = Application(design, config)

Every section (and the record itself) speaks the
:class:`~repro.runtime.configbase.ConfigBase` protocol — validated
``replace()``, JSON-able ``to_dict()``/``from_dict()`` — which is what
lets the live-tuning controller derive neighbouring configs from a
running one and lets ``Application.apply_config`` swap them atomically.

The legacy keyword form (``Application(design, clock=...,
streaming_windows=...)``) and the pre-``NetworkConfig`` network
keywords still work for one release through a single shim entry point,
:meth:`RuntimeConfig.from_legacy_kwargs`, which emits one consolidated
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, TYPE_CHECKING

from repro.faults.policy import StalePolicy, SupervisionPolicy
from repro.runtime.cache import CacheConfig
from repro.runtime.configbase import ConfigBase
from repro.runtime.placement import NetworkConfig, PlacementConfig
from repro.runtime.plan import BatchConfig
from repro.runtime.shard import ShardConfig
from repro.runtime.sweep import SweepConfig
from repro.runtime.tuning import TuningConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, hints only
    from repro.runtime.clock import Clock
    from repro.telemetry import MetricsRegistry

__all__ = [
    "BatchConfig",
    "CacheConfig",
    "ConfigBase",
    "NetworkConfig",
    "PlacementConfig",
    "RuntimeConfig",
    "ShardConfig",
    "SweepConfig",
    "TuningConfig",
]

ERROR_POLICIES = ("raise", "isolate")


@dataclass(frozen=True)
class RuntimeConfig(ConfigBase):
    """Everything an :class:`~repro.runtime.app.Application` can tune.

    Every field has the historical default, so ``RuntimeConfig()`` is
    exactly the pre-redesign ``Application(design)`` behaviour.

    * ``clock`` — application clock; ``None`` means a fresh
      :class:`~repro.runtime.clock.SimulationClock`.
    * ``mapreduce_executor`` — executor for ``with map ... reduce ...``
      contexts (serial when ``None``).
    * ``network`` — a frozen :class:`NetworkConfig` describing the
      simulated delivery conditions (single hop or multi-hop fog
      topology); the application builds a fresh stateful model from it.
      Passing a pre-built ``NetworkConditions`` instance (the legacy
      form, together with ``apply_network_to_reads``) still works for
      one release with a :class:`DeprecationWarning`.
    * ``error_policy`` — ``'raise'`` propagates component failures,
      ``'isolate'`` contains them (see ``Application._run_component``).
    * ``streaming_windows`` — incremental window accumulation fast path.
    * ``metrics`` — shared telemetry registry (own registry when
      ``None``).
    * ``supervision`` — default :class:`SupervisionPolicy` applied to
      every bound device; ``None`` disables supervision entirely
      (legacy behaviour).
    * ``supervision_overrides`` — per-device-type policies; they apply
      to the named type and its subtypes, and win over ``supervision``.
    * ``supervision_seed`` — seed for the deterministic per-entity
      backoff jitter.
    * ``stale`` — degraded-delivery policy for periodic gathers when a
      supervised source is dark; ``None`` means ``StalePolicy('skip')``.
    * ``sweep`` — :class:`~repro.runtime.sweep.SweepConfig` governing
      how periodic gather sweeps execute (serial loop vs. bounded
      thread-pool fan-out); the default ``mode='auto'`` keeps
      simulation-clock runs serial and deterministic.
    * ``cache`` — :class:`~repro.runtime.cache.CacheConfig` governing
      the query-driven read fast path (freshness-aware read cache,
      single-flight coalescing, actuation/publish invalidation and
      context memoization); disabled by default, which keeps the read
      path byte-identical to the uncached runtime.
    * ``batch`` — :class:`~repro.runtime.plan.BatchConfig` governing
      the sweep/publish hot path (driver-level columnar batch reads and
      precompiled delivery plans); disabled by default, which keeps the
      scalar read path and per-publish topic resolution byte-identical
      to the unbatched runtime.
    * ``shard`` — :class:`~repro.runtime.shard.ShardConfig` governing
      the process-sharded runtime (hash-partitioned fleet, one worker
      process per shard, cross-shard event routing, and the coordinator
      wire protocol: ``wire_format``, ``delta_sync`` and
      ``local_cache``); disabled by default, which keeps the runtime
      single-process and byte-identical to the unsharded code path.
    * ``placement`` — :class:`~repro.runtime.placement.PlacementConfig`
      governing the edge/cloud placement tier (edge-local map+combine
      for grouped MapReduce gathers, WAN byte accounting); disabled by
      default, which keeps every gather cloud-only and byte-identical
      to the placement-less runtime.
    * ``tuning`` — :class:`~repro.runtime.tuning.TuningConfig`
      governing the adaptive controller that closes the telemetry →
      config loop online; disabled by default, which schedules no
      controller and keeps every run byte-identical to the untuned
      runtime.
    """

    clock: Optional["Clock"] = None
    mapreduce_executor: Any = None
    name: str = "app"
    network: Any = None
    apply_network_to_reads: bool = False
    error_policy: str = "raise"
    streaming_windows: bool = True
    metrics: Optional["MetricsRegistry"] = None
    supervision: Optional[SupervisionPolicy] = None
    supervision_overrides: Mapping[str, SupervisionPolicy] = field(
        default_factory=dict
    )
    supervision_seed: int = 0
    stale: Optional[StalePolicy] = None
    sweep: SweepConfig = SweepConfig()
    cache: CacheConfig = CacheConfig()
    batch: BatchConfig = BatchConfig()
    shard: ShardConfig = ShardConfig()
    placement: PlacementConfig = PlacementConfig()
    tuning: TuningConfig = TuningConfig()

    # Live runtime objects: wiring, not deployment data.
    _runtime_fields = ("clock", "mapreduce_executor", "metrics")
    _decoders = {
        "network": NetworkConfig.from_dict,
        "sweep": SweepConfig.from_dict,
        "cache": CacheConfig.from_dict,
        "batch": BatchConfig.from_dict,
        "shard": ShardConfig.from_dict,
        "placement": PlacementConfig.from_dict,
        "tuning": TuningConfig.from_dict,
        "supervision": lambda raw: SupervisionPolicy(**raw),
        "supervision_overrides": lambda raw: {
            name: SupervisionPolicy(**policy)
            for name, policy in raw.items()
        },
        "stale": lambda raw: StalePolicy(**raw),
    }

    def __post_init__(self):
        if self.error_policy not in ERROR_POLICIES:
            raise ValueError(
                f"error_policy must be one of {ERROR_POLICIES}"
            )
        # Validation only — the legacy-keyword DeprecationWarnings that
        # used to live here are consolidated in ``from_legacy_kwargs``,
        # keeping construction (and therefore ``replace``/``validate``)
        # warning-free.
        if self.network is not None and not isinstance(
            self.network, NetworkConfig
        ):
            if not callable(getattr(self.network, "transmit", None)):
                raise TypeError(
                    "network must be a NetworkConfig, a network model "
                    "with a transmit() method, or None"
                )
        if not isinstance(self.tuning, TuningConfig):
            raise TypeError("tuning must be a TuningConfig")
        if not isinstance(self.placement, PlacementConfig):
            raise TypeError("placement must be a PlacementConfig")
        if not isinstance(self.sweep, SweepConfig):
            raise TypeError("sweep must be a SweepConfig")
        if not isinstance(self.cache, CacheConfig):
            raise TypeError("cache must be a CacheConfig")
        if not isinstance(self.batch, BatchConfig):
            raise TypeError("batch must be a BatchConfig")
        if not isinstance(self.shard, ShardConfig):
            raise TypeError("shard must be a ShardConfig")
        if self.stale is not None and not isinstance(self.stale, StalePolicy):
            raise TypeError("stale must be a StalePolicy or None")
        if self.supervision is not None and not isinstance(
            self.supervision, SupervisionPolicy
        ):
            raise TypeError("supervision must be a SupervisionPolicy or None")

    def replace(self, **changes: Any) -> "RuntimeConfig":
        """A copy with ``changes`` applied and **fully re-validated**.

        Inherited :meth:`ConfigBase.replace` semantics: the copy goes
        back through ``__post_init__`` and :meth:`validate`, so a
        replace can never assemble a field combination construction
        would reject (e.g. a non-config network object, or — one level
        down — a flat-latency × hops ``NetworkConfig``).
        """
        return super().replace(**changes)

    def build_network(self) -> Tuple[Any, bool]:
        """The ``(model, apply_to_reads)`` pair an application attaches.

        A :class:`NetworkConfig` builds a fresh stateful model (or
        ``None`` when inert); a legacy pre-built instance passes
        through unchanged with the deprecated
        ``apply_network_to_reads`` flag.
        """
        network = self.network
        if isinstance(network, NetworkConfig):
            return (
                network.build(),
                network.apply_to_reads or self.apply_network_to_reads,
            )
        return network, self.apply_network_to_reads

    def supervised(self) -> bool:
        """Is any device type supervised under this configuration?"""
        return self.supervision is not None or bool(
            self.supervision_overrides
        )

    @property
    def stale_policy(self) -> StalePolicy:
        """The effective stale policy (``skip`` when unset)."""
        return self.stale if self.stale is not None else StalePolicy()

    @classmethod
    def from_legacy_kwargs(cls, **kwargs: Any) -> "RuntimeConfig":
        """The one shim for every deprecated keyword spelling.

        Folds the legacy ``Application(design, clock=..., ...)``
        keywords — including the pre-``NetworkConfig`` forms
        ``network=<model instance>`` and ``apply_network_to_reads`` —
        into a config, emitting a **single consolidated**
        :class:`DeprecationWarning` that spells out each migration.
        Unknown keywords raise ``TypeError`` exactly as the old
        constructor did.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(kwargs) - fields
        if unknown:
            raise TypeError(
                "Application() got unexpected keyword argument(s) "
                f"{sorted(unknown)}"
            )
        if not kwargs:
            return cls()
        notes = [
            "pass RuntimeConfig("
            + ", ".join(f"{name}=..." for name in sorted(kwargs))
            + ") instead of keyword argument(s)"
        ]
        network = kwargs.get("network")
        if network is not None and not isinstance(network, NetworkConfig):
            notes.append(
                "network=<model instance> becomes a frozen "
                "NetworkConfig (the application builds the model)"
            )
        if kwargs.get("apply_network_to_reads"):
            notes.append(
                "apply_network_to_reads=True becomes "
                "NetworkConfig(apply_to_reads=True)"
            )
        warnings.warn(
            "legacy Application/RuntimeConfig keywords are deprecated: "
            + "; ".join(notes),
            DeprecationWarning,
            stacklevel=3,
        )
        return cls(**kwargs)

    def describe(self) -> Dict[str, Any]:
        """Loggable summary (policies as reprs, objects as type names)."""
        summary: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value is None or isinstance(
                value, (str, int, float, bool)
            ):
                summary[f.name] = value
            elif isinstance(
                value, (ConfigBase, SupervisionPolicy, StalePolicy)
            ):
                summary[f.name] = repr(value)
            elif isinstance(value, Mapping):
                summary[f.name] = {
                    key: repr(item) for key, item in value.items()
                }
            else:
                summary[f.name] = type(value).__name__
        return summary
