"""Runtime configuration: one record instead of keyword sprawl.

``Application.__init__`` had grown a new keyword argument per release
(clock, executor, network knobs, error policy, streaming windows,
metrics, and now the supervision/stale policies of :mod:`repro.faults`).
:class:`RuntimeConfig` gathers them into a single validated dataclass::

    from repro.runtime.config import RuntimeConfig

    config = RuntimeConfig(
        clock=SimulationClock(),
        error_policy="isolate",
        supervision=SupervisionPolicy(failure_threshold=3),
        stale=StalePolicy("last_known", max_age_seconds=600),
    )
    app = Application(design, config)

The legacy keyword form (``Application(design, clock=...,
streaming_windows=...)``) still works for one release through a shim
that folds the keywords into a config and emits a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, TYPE_CHECKING

from repro.faults.policy import StalePolicy, SupervisionPolicy
from repro.runtime.cache import CacheConfig
from repro.runtime.placement import NetworkConfig, PlacementConfig
from repro.runtime.plan import BatchConfig
from repro.runtime.shard import ShardConfig
from repro.runtime.sweep import SweepConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, hints only
    from repro.runtime.clock import Clock
    from repro.telemetry import MetricsRegistry

__all__ = [
    "BatchConfig",
    "CacheConfig",
    "NetworkConfig",
    "PlacementConfig",
    "RuntimeConfig",
    "ShardConfig",
    "SweepConfig",
]

ERROR_POLICIES = ("raise", "isolate")


@dataclass(frozen=True)
class RuntimeConfig:
    """Everything an :class:`~repro.runtime.app.Application` can tune.

    Every field has the historical default, so ``RuntimeConfig()`` is
    exactly the pre-redesign ``Application(design)`` behaviour.

    * ``clock`` — application clock; ``None`` means a fresh
      :class:`~repro.runtime.clock.SimulationClock`.
    * ``mapreduce_executor`` — executor for ``with map ... reduce ...``
      contexts (serial when ``None``).
    * ``network`` — a frozen :class:`NetworkConfig` describing the
      simulated delivery conditions (single hop or multi-hop fog
      topology); the application builds a fresh stateful model from it.
      Passing a pre-built ``NetworkConditions`` instance (the legacy
      form, together with ``apply_network_to_reads``) still works for
      one release with a :class:`DeprecationWarning`.
    * ``error_policy`` — ``'raise'`` propagates component failures,
      ``'isolate'`` contains them (see ``Application._run_component``).
    * ``streaming_windows`` — incremental window accumulation fast path.
    * ``metrics`` — shared telemetry registry (own registry when
      ``None``).
    * ``supervision`` — default :class:`SupervisionPolicy` applied to
      every bound device; ``None`` disables supervision entirely
      (legacy behaviour).
    * ``supervision_overrides`` — per-device-type policies; they apply
      to the named type and its subtypes, and win over ``supervision``.
    * ``supervision_seed`` — seed for the deterministic per-entity
      backoff jitter.
    * ``stale`` — degraded-delivery policy for periodic gathers when a
      supervised source is dark; ``None`` means ``StalePolicy('skip')``.
    * ``sweep`` — :class:`~repro.runtime.sweep.SweepConfig` governing
      how periodic gather sweeps execute (serial loop vs. bounded
      thread-pool fan-out); the default ``mode='auto'`` keeps
      simulation-clock runs serial and deterministic.
    * ``cache`` — :class:`~repro.runtime.cache.CacheConfig` governing
      the query-driven read fast path (freshness-aware read cache,
      single-flight coalescing, actuation/publish invalidation and
      context memoization); disabled by default, which keeps the read
      path byte-identical to the uncached runtime.
    * ``batch`` — :class:`~repro.runtime.plan.BatchConfig` governing
      the sweep/publish hot path (driver-level columnar batch reads and
      precompiled delivery plans); disabled by default, which keeps the
      scalar read path and per-publish topic resolution byte-identical
      to the unbatched runtime.
    * ``shard`` — :class:`~repro.runtime.shard.ShardConfig` governing
      the process-sharded runtime (hash-partitioned fleet, one worker
      process per shard, cross-shard event routing); disabled by
      default, which keeps the runtime single-process and
      byte-identical to the unsharded code path.
    * ``placement`` — :class:`~repro.runtime.placement.PlacementConfig`
      governing the edge/cloud placement tier (edge-local map+combine
      for grouped MapReduce gathers, WAN byte accounting); disabled by
      default, which keeps every gather cloud-only and byte-identical
      to the placement-less runtime.
    """

    clock: Optional["Clock"] = None
    mapreduce_executor: Any = None
    name: str = "app"
    network: Any = None
    apply_network_to_reads: bool = False
    error_policy: str = "raise"
    streaming_windows: bool = True
    metrics: Optional["MetricsRegistry"] = None
    supervision: Optional[SupervisionPolicy] = None
    supervision_overrides: Mapping[str, SupervisionPolicy] = field(
        default_factory=dict
    )
    supervision_seed: int = 0
    stale: Optional[StalePolicy] = None
    sweep: SweepConfig = SweepConfig()
    cache: CacheConfig = CacheConfig()
    batch: BatchConfig = BatchConfig()
    shard: ShardConfig = ShardConfig()
    placement: PlacementConfig = PlacementConfig()

    def __post_init__(self):
        if self.error_policy not in ERROR_POLICIES:
            raise ValueError(
                f"error_policy must be one of {ERROR_POLICIES}"
            )
        if self.network is not None and not isinstance(
            self.network, NetworkConfig
        ):
            warnings.warn(
                "RuntimeConfig(network=<model instance>) is deprecated; "
                "pass a frozen NetworkConfig (the application builds "
                "the model)",
                DeprecationWarning,
                stacklevel=3,
            )
        if self.apply_network_to_reads:
            warnings.warn(
                "RuntimeConfig(apply_network_to_reads=...) is "
                "deprecated; use NetworkConfig(apply_to_reads=True)",
                DeprecationWarning,
                stacklevel=3,
            )
        if not isinstance(self.placement, PlacementConfig):
            raise TypeError("placement must be a PlacementConfig")
        if not isinstance(self.sweep, SweepConfig):
            raise TypeError("sweep must be a SweepConfig")
        if not isinstance(self.cache, CacheConfig):
            raise TypeError("cache must be a CacheConfig")
        if not isinstance(self.batch, BatchConfig):
            raise TypeError("batch must be a BatchConfig")
        if not isinstance(self.shard, ShardConfig):
            raise TypeError("shard must be a ShardConfig")
        if self.stale is not None and not isinstance(self.stale, StalePolicy):
            raise TypeError("stale must be a StalePolicy or None")
        if self.supervision is not None and not isinstance(
            self.supervision, SupervisionPolicy
        ):
            raise TypeError("supervision must be a SupervisionPolicy or None")

    def replace(self, **changes: Any) -> "RuntimeConfig":
        """A copy with ``changes`` applied (frozen-dataclass idiom)."""
        return dataclasses.replace(self, **changes)

    def build_network(self) -> Tuple[Any, bool]:
        """The ``(model, apply_to_reads)`` pair an application attaches.

        A :class:`NetworkConfig` builds a fresh stateful model (or
        ``None`` when inert); a legacy pre-built instance passes
        through unchanged with the deprecated
        ``apply_network_to_reads`` flag.
        """
        network = self.network
        if isinstance(network, NetworkConfig):
            return (
                network.build(),
                network.apply_to_reads or self.apply_network_to_reads,
            )
        return network, self.apply_network_to_reads

    def supervised(self) -> bool:
        """Is any device type supervised under this configuration?"""
        return self.supervision is not None or bool(
            self.supervision_overrides
        )

    @property
    def stale_policy(self) -> StalePolicy:
        """The effective stale policy (``skip`` when unset)."""
        return self.stale if self.stale is not None else StalePolicy()

    @classmethod
    def from_legacy_kwargs(cls, **kwargs: Any) -> "RuntimeConfig":
        """Build a config from the deprecated ``Application`` keywords.

        Unknown keywords raise ``TypeError`` exactly as the old
        constructor did.
        """
        fields = {f.name for f in dataclasses.fields(cls)}
        unknown = set(kwargs) - fields
        if unknown:
            raise TypeError(
                "Application() got unexpected keyword argument(s) "
                f"{sorted(unknown)}"
            )
        return cls(**kwargs)

    def describe(self) -> Dict[str, Any]:
        """Loggable summary (policies as reprs, objects as type names)."""
        summary: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value is None or isinstance(
                value, (str, int, float, bool)
            ):
                summary[f.name] = value
            elif isinstance(
                value,
                (
                    SupervisionPolicy,
                    StalePolicy,
                    SweepConfig,
                    CacheConfig,
                    BatchConfig,
                    ShardConfig,
                    PlacementConfig,
                    NetworkConfig,
                ),
            ):
                summary[f.name] = repr(value)
            elif isinstance(value, Mapping):
                summary[f.name] = {
                    key: repr(item) for key, item in value.items()
                }
            else:
                summary[f.name] = type(value).__name__
        return summary
