"""Concurrent sweep execution for periodic device gathers.

A periodic gather (``when periodic presence from PresenceSensor``) polls
every bound instance of a device type.  The naive loop is serial, so
sweep latency grows linearly with fleet size — at city scale (thousands
of parking sensors, Figures 4, 6, 8) the polling stage dwarfs the
MapReduce stage it feeds.  The :class:`SweepEngine` fans supervised
reads out to a bounded thread pool while keeping the result stream
indistinguishable from the serial loop:

* **Deterministic merge order.**  Results are returned in registry
  iteration order (registration order) regardless of which worker
  finished first, so grouping, MapReduce and window payloads are
  byte-identical across modes — the property test in
  ``tests/runtime/test_sweep.py`` holds this invariant.
* **Per-shard batching.**  Instances are grouped into shards keyed by
  the registry's indexed attributes (a parking fleet shards by
  ``parkingLot``) and each shard is split into batches of
  ``batch_size`` reads; one pool task polls one batch, amortizing
  submission overhead over many reads.
* **Serial fallback under simulation.**  ``mode='auto'`` (the default)
  selects the serial loop whenever the application runs on a
  :class:`~repro.runtime.clock.SimulationClock`, so traces, tests and
  chaos reports replay byte-identically; threaded fan-out engages under
  a wall clock, where reads have real latency worth hiding.  Forcing
  ``mode='threaded'`` is honoured even under simulation (the
  equivalence tests do exactly that).

The engine executes an arbitrary per-instance callable, so supervised
reads, circuit-breaker gating and stale-policy substitution behave
exactly as in the serial loop — :meth:`Application._gather` keeps
owning that policy and only delegates the fan-out here.

Observability follows the :class:`~repro.telemetry.instrument.Instrumented`
protocol: cumulative sweep/batch counters are pull-time callbacks, and
``attach_metrics`` additionally creates a sweep wall-time histogram
(``sweep_duration_seconds``), an in-flight batch gauge
(``sweep_in_flight_batches``) and per-shard read counters
(``sweep_shard_reads_total{shard=...}``).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.runtime.clock import SimulationClock
from repro.runtime.configbase import ConfigBase
from repro.runtime.device import DeviceInstance
from repro.runtime.plan import BATCH_COLUMN_BUCKETS
from repro.telemetry.instrument import Instrumented, MetricSpec

__all__ = ["SweepConfig", "SweepEngine"]

SWEEP_MODES = ("serial", "threaded", "auto")

# Histogram buckets for sweep wall time: a small simulated fleet sweeps
# in microseconds, a city fleet over real transports in whole seconds.
SWEEP_DURATION_BUCKETS = (
    0.000_1,
    0.000_5,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
)


@dataclass(frozen=True)
class SweepConfig(ConfigBase):
    """How periodic gather sweeps execute.

    * ``mode`` — ``'serial'`` polls in a plain loop; ``'threaded'``
      fans batches out to a bounded thread pool; ``'auto'`` (default)
      picks serial under a :class:`SimulationClock` (deterministic
      replay) and threaded otherwise.
    * ``workers`` — thread-pool size for threaded sweeps.
    * ``batch_size`` — reads per pool task.  Batches never span shards,
      so a shard with fewer reads than ``batch_size`` still gets its
      own task(s).
    * ``shard_attribute`` — attribute to shard by; ``None`` picks the
      device type's first declared attribute (deterministic), falling
      back to a single shard for attribute-less types.
    """

    mode: str = "auto"
    workers: int = 8
    batch_size: int = 16
    shard_attribute: Optional[str] = None

    def __post_init__(self):
        if self.mode not in SWEEP_MODES:
            raise ValueError(
                f"sweep mode must be one of {SWEEP_MODES}, got "
                f"'{self.mode}'"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")


class SweepEngine(Instrumented):
    """Bounded fan-out of per-instance reads with ordered merge.

    One engine serves all of an application's periodic gathers; it is
    stateless between sweeps apart from its cumulative counters and its
    lazily created thread pool.
    """

    metric_specs = (
        MetricSpec(
            "sweep_total",
            "_sweeps",
            stats_key="sweeps",
            help="Gather sweeps executed by the sweep engine.",
        ),
        MetricSpec(
            "sweep_serial_total",
            "_serial_sweeps",
            stats_key="serial_sweeps",
            help="Sweeps that ran the serial loop.",
        ),
        MetricSpec(
            "sweep_threaded_total",
            "_threaded_sweeps",
            stats_key="threaded_sweeps",
            help="Sweeps fanned out to the thread pool.",
        ),
        MetricSpec(
            "sweep_batches_total",
            "_batches",
            stats_key="batches",
            help="Pool tasks submitted by threaded sweeps.",
        ),
        MetricSpec(
            "sweep_reads_total",
            "_reads",
            stats_key="reads",
            help="Per-instance reads executed through the engine.",
        ),
        MetricSpec(
            "sweep_columnar_total",
            "_columnar_sweeps",
            stats_key="columnar_sweeps",
            help="Sweeps that took the columnar (batch-read) path.",
        ),
        MetricSpec(
            "sweep_batch_reads_total",
            "_batch_reads",
            stats_key="batch_reads",
            help="Driver-level read_batch calls issued during sweeps.",
        ),
        MetricSpec(
            "sweep_batch_demoted_total",
            "_batch_demoted",
            stats_key="batch_demoted",
            help="Reads demoted from a batch column to the scalar path "
            "(no driver support, unhealthy entity, cohort too small, or "
            "a failed batch read).",
        ),
    )

    def __init__(
        self,
        registry,
        clock,
        config: Optional[SweepConfig] = None,
        metrics=None,
    ):
        self.registry = registry
        self.clock = clock
        self.config = config if config is not None else SweepConfig()
        self._sweeps = 0
        self._serial_sweeps = 0
        self._threaded_sweeps = 0
        self._batches = 0
        self._reads = 0
        self._columnar_sweeps = 0
        self._batch_reads = 0
        self._batch_demoted = 0
        self._shard_reads: Dict[str, int] = {}
        self._pool: Optional[ThreadPoolExecutor] = None
        self._metrics = None
        self._m_duration = None
        self._m_in_flight = None
        self._m_column_size = None
        # note_batch_read / note_batch_demoted are called from pool
        # workers during threaded columnar sweeps.
        self._note_lock = threading.Lock()
        if metrics is not None:
            self.attach_metrics(metrics)

    # -- observability -------------------------------------------------------

    def attach_metrics(self, metrics, **labels: Any) -> None:
        """Counters via the Instrumented protocol, plus the push-style
        sweep wall-time histogram and in-flight batch gauge."""
        super().attach_metrics(metrics, **labels)
        self._metrics = metrics
        self._m_duration = metrics.histogram(
            "sweep_duration_seconds",
            help="Wall time of one gather sweep (poll + merge).",
            buckets=SWEEP_DURATION_BUCKETS,
            **labels,
        )
        self._m_in_flight = metrics.gauge(
            "sweep_in_flight_batches",
            help="Pool batches submitted and not yet merged.",
            **labels,
        )
        self._m_column_size = metrics.histogram(
            "sweep_batch_column_size",
            help="Entities per driver-level read_batch column.",
            buckets=BATCH_COLUMN_BUCKETS,
            **labels,
        )
        for shard in self._shard_reads:
            self._register_shard_metric(shard)

    def note_batch_read(self, size: int) -> None:
        """Record one driver-level batch read of ``size`` entities.

        Called by the gather path (possibly from a pool worker) each
        time it issues a read_batch, so batch counts and the column-size
        histogram stay truthful whoever drives the column."""
        with self._note_lock:
            self._batch_reads += 1
            if self._m_column_size is not None:
                self._m_column_size.observe(size)

    def note_batch_demoted(self, count: int = 1) -> None:
        """Record ``count`` reads that fell off a batch column onto the
        scalar path."""
        with self._note_lock:
            self._batch_demoted += count

    def _register_shard_metric(self, shard: str) -> None:
        self._metrics.callback(
            "sweep_shard_reads_total",
            lambda shard=shard: self._shard_reads.get(shard, 0),
            help="Reads executed per shard (registry-indexed attribute "
            "value).",
            shard=shard,
        )

    def _count_shard(self, shard: str, reads: int) -> None:
        if shard not in self._shard_reads and self._metrics is not None:
            self._shard_reads[shard] = 0
            self._register_shard_metric(shard)
        self._shard_reads[shard] = self._shard_reads.get(shard, 0) + reads

    def _extra_stats(self) -> Dict[str, Any]:
        return {
            "mode": self.config.mode,
            "workers": self.config.workers,
            "shard_reads": dict(self._shard_reads),
        }

    # -- mode selection ------------------------------------------------------

    def mode_for_clock(self) -> str:
        """The effective execution mode of the next sweep.

        ``auto`` resolves against the application clock: simulation
        clocks replay deterministically only when reads happen in
        registration order on the driving thread, so they force the
        serial loop.
        """
        mode = self.config.mode
        if mode != "auto":
            return mode
        if isinstance(self.clock, SimulationClock):
            return "serial"
        return "threaded"

    # -- execution -----------------------------------------------------------

    def sweep(
        self,
        device_type: str,
        read_one: Callable[[DeviceInstance], Any],
        include_quarantined: bool = True,
        read_column: Optional[
            Callable[[Sequence[DeviceInstance]], List[Any]]
        ] = None,
    ) -> List[Tuple[DeviceInstance, Any]]:
        """Run ``read_one`` over every bound instance of ``device_type``.

        Returns ``(instance, result)`` pairs **in registry iteration
        order** whatever the execution mode — downstream grouping and
        windowing see the same stream either way.  Exceptions raised by
        ``read_one`` propagate (callers wanting per-read containment
        catch inside the callable, as ``Application._gather`` does).

        With ``read_column`` (the columnar batch-read path), the engine
        hands each shard's instances to it in one call and expects a
        result column aligned with the input; one pool task per shard
        replaces one task per ``batch_size`` reads.  The caller owns
        cohort formation, eligibility and scalar demotion inside
        ``read_column`` — the engine only owns fan-out and the ordered
        merge, exactly as on the scalar path.
        """
        started = time.perf_counter()
        self._sweeps += 1
        shards = self.registry.iter_shards(
            device_type,
            attribute=self.config.shard_attribute,
            include_quarantined=include_quarantined,
        )
        for shard_key, members in shards:
            self._reads += len(members)
            self._count_shard(shard_key, len(members))
        if read_column is not None:
            self._columnar_sweeps += 1
            if self.mode_for_clock() == "threaded":
                self._threaded_sweeps += 1
                results = self._sweep_threaded_columnar(shards, read_column)
            else:
                self._serial_sweeps += 1
                results = self._sweep_serial_columnar(shards, read_column)
        elif self.mode_for_clock() == "threaded":
            self._threaded_sweeps += 1
            results = self._sweep_threaded(shards, read_one)
        else:
            self._serial_sweeps += 1
            results = self._sweep_serial(shards, read_one)
        if self._m_duration is not None:
            self._m_duration.observe(time.perf_counter() - started)
        return results

    def _sweep_serial(self, shards, read_one):
        """The reference loop.  Shards may interleave in registration
        order, so reads are re-ordered by position first — the loop then
        polls in exactly the historical registry iteration order, which
        keeps every stateful side effect (network-drop RNG draws,
        breaker probes) in the byte-identical sequence."""
        ordered = sorted(
            (pair for __, members in shards for pair in members),
            key=lambda pair: pair[0],
        )
        return [
            (instance, read_one(instance)) for __, instance in ordered
        ]

    def _sweep_threaded(self, shards, read_one):
        pool = self._ensure_pool()
        batch_size = self.config.batch_size
        # One pool task per batch; batches never span shards.  Each
        # member keeps its registry position so the merge below restores
        # registry iteration order no matter which future finishes first.
        batches: List[List[Tuple[int, DeviceInstance]]] = []
        total = 0
        for __, members in shards:
            total += len(members)
            for offset in range(0, len(members), batch_size):
                batches.append(members[offset:offset + batch_size])
        slots: List[Any] = [None] * total
        instances_in_order: List[Optional[DeviceInstance]] = [None] * total
        self._batches += len(batches)
        in_flight = self._m_in_flight
        pending = set()
        for batch in batches:
            pending.add(pool.submit(self._run_batch, batch, read_one))
            if in_flight is not None:
                in_flight.inc()
        first_error: Optional[BaseException] = None
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                if in_flight is not None:
                    in_flight.dec()
                error = future.exception()
                if error is not None:
                    if first_error is None:
                        first_error = error
                    continue
                for index, instance, value in future.result():
                    slots[index] = value
                    instances_in_order[index] = instance
        if first_error is not None:
            raise first_error
        return list(zip(instances_in_order, slots))

    @staticmethod
    def _run_batch(batch, read_one):
        return [
            (index, instance, read_one(instance))
            for index, instance in batch
        ]

    def _sweep_serial_columnar(self, shards, read_column):
        """One read_column call per shard, merged by registry position."""
        total = sum(len(members) for __, members in shards)
        slots: List[Any] = [None] * total
        instances: List[Optional[DeviceInstance]] = [None] * total
        for __, members in shards:
            column = read_column([instance for __, instance in members])
            for (index, instance), value in zip(members, column):
                slots[index] = value
                instances[index] = instance
        return list(zip(instances, slots))

    def _sweep_threaded_columnar(self, shards, read_column):
        """One pool task per shard; the batch read spans the shard, so
        finer-grained tasks would just split the column for no gain."""
        pool = self._ensure_pool()
        total = sum(len(members) for __, members in shards)
        slots: List[Any] = [None] * total
        instances: List[Optional[DeviceInstance]] = [None] * total
        self._batches += len(shards)
        in_flight = self._m_in_flight
        pending = set()
        for __, members in shards:
            pending.add(
                pool.submit(self._run_column, members, read_column)
            )
            if in_flight is not None:
                in_flight.inc()
        first_error: Optional[BaseException] = None
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                if in_flight is not None:
                    in_flight.dec()
                error = future.exception()
                if error is not None:
                    if first_error is None:
                        first_error = error
                    continue
                for index, instance, value in future.result():
                    slots[index] = value
                    instances[index] = instance
        if first_error is not None:
            raise first_error
        return list(zip(instances, slots))

    @staticmethod
    def _run_column(members, read_column):
        column = read_column([instance for __, instance in members])
        return [
            (index, instance, value)
            for (index, instance), value in zip(members, column)
        ]

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="sweep",
            )
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent; pool recreates on the
        next threaded sweep)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def reconfigure(self, config: SweepConfig) -> None:
        """Swap the sweep section live (between sweeps).

        Mode, batch size and shard attribute are read per sweep, so the
        swap alone suffices; a worker-count change additionally retires
        the current pool, which lazily recreates at the new size on the
        next threaded sweep.
        """
        if config.workers != self.config.workers:
            self.close()
        self.config = config

    def __repr__(self) -> str:
        return (
            f"<SweepEngine mode={self.config.mode} "
            f"workers={self.config.workers} sweeps={self._sweeps}>"
        )
