"""Self-tuning orchestration: closing the telemetry → config loop.

The paper's large-scale story assumes operators hand-pick deployment
parameters; the runtime grew every knob that matters (sweep workers,
columnar ``min_column``, cache TTLs, breaker thresholds) plus the
telemetry to measure each one.  This module closes the loop online:

* :class:`TuningConfig` — frozen section of
  :class:`~repro.runtime.config.RuntimeConfig`; off by default, so a
  run with ``tuning.enabled = False`` is byte-identical to one that
  predates this module.
* :class:`Knob` / :class:`KnobRegistry` — the named tunables
  (``sweep.workers``, ``batch.min_column``, ``cache.ttl_seconds``,
  ``supervision.failure_threshold`` …), each with a safe range, a step
  rule and the metric signal that moves it.  A knob never mutates a
  config: it derives a *replaced and re-validated* copy through the
  :class:`~repro.runtime.configbase.ConfigBase` protocol, and the
  application swaps the whole record atomically between sweeps.
* :class:`TuningController` — a drift-gated hill climb with an
  epsilon-greedy tie-break.  Each interval it measures an objective
  (built-in: p99 sweep latency from the ``sweep_duration_seconds``
  histogram, mean sweep latency, gather errors; or a pluggable
  cumulative-cost callable).  While **settled** it only watches for
  drift; a drift beyond tolerance opens a **search**: one bounded step
  per interval, rolled back (and cooled down) when the objective
  regresses, accepted otherwise.  Neutral steps are kept so the climb
  can cross plateaus (``min_column`` values between two behaviour
  changes measure identically); the search closes when every direction
  is exhausted, and the controller goes quiet again.

Everything runs on the application clock.  The controller's periodic
job is scheduled *after* the gather jobs, so at every shared timestamp
the sweep completes first and the tick observes it — under a
:class:`~repro.runtime.clock.SimulationClock` the whole feedback loop
is exactly reproducible.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
)

from repro.errors import TuningError
from repro.runtime.configbase import ConfigBase
from repro.telemetry.instrument import Instrumented, MetricSpec

__all__ = [
    "Knob",
    "KnobRegistry",
    "TuningConfig",
    "TuningController",
    "TUNING_OBJECTIVES",
    "run_parking_tuning",
]

DOWN = "down"
UP = "up"

#: Built-in objective signals (all minimised).  ``custom`` requires
#: :meth:`TuningController.set_objective` before the first tick.
TUNING_OBJECTIVES = (
    "sweep_p99",
    "sweep_mean",
    "gather_errors",
    "custom",
)

_SCALES = ("linear", "geometric")


@dataclass(frozen=True)
class TuningConfig(ConfigBase):
    """How (and whether) the adaptive controller runs.

    * ``enabled`` — master switch; ``False`` (default) creates no
      controller, schedules no job, and leaves every run byte-identical
      to the untuned runtime.
    * ``interval_seconds`` — application-clock period between ticks;
      align it with the slowest periodic gather so every tick observes
      fresh sweeps.
    * ``knobs`` — names to tune (must exist in the application's
      :class:`KnobRegistry`); empty tunes every registered knob.
    * ``objective`` — one of :data:`TUNING_OBJECTIVES`.
    * ``epsilon`` — probability of exploring a random eligible move
      instead of the greedy choice while searching.  ``0`` (default)
      keeps the controller fully deterministic.
    * ``warmup_intervals`` — measured intervals to observe before the
      first adjustment.
    * ``cooldown_intervals`` — ticks a knob sits out after a rollback.
    * ``rollback_tolerance`` — relative regression that triggers a
      rollback of the last step (and, symmetrically, the relative
      improvement required to lower the accepted baseline).
    * ``drift_tolerance`` — relative change of the settled baseline
      that re-opens a search.
    * ``seed`` — RNG seed for epsilon exploration.
    """

    enabled: bool = False
    interval_seconds: float = 60.0
    knobs: Tuple[str, ...] = ()
    objective: str = "sweep_p99"
    epsilon: float = 0.0
    warmup_intervals: int = 1
    cooldown_intervals: int = 3
    rollback_tolerance: float = 0.05
    drift_tolerance: float = 0.25
    seed: int = 0

    def __post_init__(self):
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be > 0")
        if not isinstance(self.knobs, tuple):
            object.__setattr__(self, "knobs", tuple(self.knobs))
        if self.objective not in TUNING_OBJECTIVES:
            raise ValueError(
                f"objective must be one of {TUNING_OBJECTIVES}, "
                f"not '{self.objective}'"
            )
        if not 0.0 <= self.epsilon <= 1.0:
            raise ValueError("epsilon must be within [0, 1]")
        if self.warmup_intervals < 0:
            raise ValueError("warmup_intervals must be >= 0")
        if self.cooldown_intervals < 0:
            raise ValueError("cooldown_intervals must be >= 0")
        if self.rollback_tolerance < 0:
            raise ValueError("rollback_tolerance must be >= 0")
        if self.drift_tolerance < 0:
            raise ValueError("drift_tolerance must be >= 0")

    _decoders = {"knobs": tuple}


@dataclass(frozen=True)
class Knob(ConfigBase):
    """One named tunable: where it lives, its safe range, how it steps.

    ``name`` is the public dotted identifier; ``section``/``attribute``
    locate the value inside :class:`RuntimeConfig` (``section`` is a
    top-level field, ``attribute`` a field of that section).  ``step``
    is an additive increment under ``scale='linear'`` and a multiplier
    under ``scale='geometric'`` (coarse knobs such as ``min_column``
    cross their whole range in a handful of moves).  ``signal`` names
    the metric family an operator would watch to tune this by hand —
    it is documentation carried next to the range, surfaced by
    ``repro tune`` and the knob catalog docs.
    """

    name: str
    section: str
    attribute: str
    minimum: float
    maximum: float
    step: float = 1.0
    scale: str = "linear"
    integer: bool = True
    signal: str = ""

    def __post_init__(self):
        if not self.name:
            raise ValueError("a knob needs a name")
        if not self.section or not self.attribute:
            raise ValueError(f"knob '{self.name}' needs section.attribute")
        if self.scale not in _SCALES:
            raise ValueError(
                f"knob '{self.name}': scale must be one of {_SCALES}"
            )
        if self.minimum > self.maximum:
            raise ValueError(
                f"knob '{self.name}': minimum {self.minimum} exceeds "
                f"maximum {self.maximum}"
            )
        if self.scale == "geometric":
            if self.step <= 1:
                raise ValueError(
                    f"knob '{self.name}': geometric step must be > 1"
                )
            if self.minimum <= 0:
                raise ValueError(
                    f"knob '{self.name}': geometric scale needs a "
                    "positive minimum"
                )
        elif self.step <= 0:
            raise ValueError(f"knob '{self.name}': step must be > 0")

    # -- value arithmetic ----------------------------------------------------

    def clamp(self, value: float) -> Any:
        """``value`` forced into the safe range (and integer domain)."""
        clamped = min(self.maximum, max(self.minimum, value))
        return round(clamped) if self.integer else clamped

    def step_toward(self, value: float, direction: str) -> Any:
        """The neighbouring value one bounded step away.

        Returns the current value unchanged when the step is a no-op
        (already clamped at the bound) — callers treat that as "this
        direction is exhausted".
        """
        if direction not in (DOWN, UP):
            raise ValueError(f"direction must be '{DOWN}' or '{UP}'")
        if self.scale == "geometric":
            moved = value * self.step if direction == UP else value / self.step
        else:
            moved = value + self.step if direction == UP else value - self.step
        return self.clamp(moved)

    # -- config access -------------------------------------------------------

    def read(self, config: Any) -> Any:
        """Current value of this knob inside a ``RuntimeConfig``."""
        return getattr(getattr(config, self.section), self.attribute)

    def apply(self, config: Any, value: float) -> Any:
        """A re-validated config copy with this knob set (clamped).

        Sections speaking :class:`ConfigBase` replace through the
        protocol; plain frozen policy records (``SupervisionPolicy``)
        go through ``dataclasses.replace``, whose reconstruction
        re-runs their ``__post_init__`` validation just the same.
        """
        section = getattr(config, self.section)
        if section is None:
            raise TuningError(
                f"knob '{self.name}': config section '{self.section}' "
                "is not enabled on this config"
            )
        changed = {self.attribute: self.clamp(value)}
        if isinstance(section, ConfigBase):
            replaced = section.replace(**changed)
        elif dataclasses.is_dataclass(section):
            replaced = dataclasses.replace(section, **changed)
        else:
            raise TuningError(
                f"knob '{self.name}': config section '{self.section}' "
                "is not a frozen config record"
            )
        return config.replace(**{self.section: replaced})


class KnobRegistry:
    """Named tunables of one application, in registration order.

    The registry is the boundary between "a string in a config file"
    and "a field inside the frozen config record": it resolves names,
    clamps values into declared safe ranges, and derives replaced
    configs without ever mutating the running one.
    """

    def __init__(self, knobs: Iterable[Knob] = ()):
        self._knobs: Dict[str, Knob] = {}
        for knob in knobs:
            self.register(knob)

    def register(self, knob: Knob) -> Knob:
        if knob.name in self._knobs:
            raise TuningError(f"knob '{knob.name}' is already registered")
        self._knobs[knob.name] = knob
        return knob

    def get(self, name: str) -> Knob:
        try:
            return self._knobs[name]
        except KeyError:
            known = ", ".join(sorted(self._knobs)) or "<none>"
            raise TuningError(
                f"unknown knob '{name}' (registered: {known})"
            ) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._knobs)

    def value_of(self, config: Any, name: str) -> Any:
        return self.get(name).read(config)

    def with_value(self, config: Any, name: str, value: float) -> Any:
        """Re-validated config copy with ``name`` set to ``value``
        (clamped into the knob's safe range)."""
        return self.get(name).apply(config, value)

    def describe(self, config: Any = None) -> List[Dict[str, Any]]:
        """Knob catalog rows (current values when ``config`` given)."""
        rows = []
        for knob in self._knobs.values():
            row: Dict[str, Any] = {
                "name": knob.name,
                "minimum": knob.minimum,
                "maximum": knob.maximum,
                "step": knob.step,
                "scale": knob.scale,
                "signal": knob.signal,
            }
            if config is not None:
                row["value"] = knob.read(config)
            rows.append(row)
        return rows

    def __iter__(self) -> Iterator[Knob]:
        return iter(self._knobs.values())

    def __len__(self) -> int:
        return len(self._knobs)

    def __contains__(self, name: str) -> bool:
        return name in self._knobs

    @classmethod
    def for_config(cls, config: Any) -> "KnobRegistry":
        """The standard catalog, filtered to the subsystems a config
        actually enables (a knob on a disabled subsystem would burn
        trial intervals changing nothing)."""
        registry = cls()
        registry.register(
            Knob(
                name="sweep.workers",
                section="sweep",
                attribute="workers",
                minimum=1,
                maximum=64,
                step=2,
                scale="geometric",
                signal="sweep_duration_seconds",
            )
        )
        registry.register(
            Knob(
                name="sweep.batch_size",
                section="sweep",
                attribute="batch_size",
                minimum=1,
                maximum=1024,
                step=2,
                scale="geometric",
                signal="sweep_batches_total",
            )
        )
        if config.batch.enabled:
            registry.register(
                Knob(
                    name="batch.min_column",
                    section="batch",
                    attribute="min_column",
                    minimum=2,
                    maximum=4096,
                    step=8,
                    scale="geometric",
                    signal="sweep_batch_demoted_total",
                )
            )
        if config.cache.enabled:
            registry.register(
                Knob(
                    name="cache.ttl_seconds",
                    section="cache",
                    attribute="ttl_seconds",
                    minimum=0.05,
                    maximum=600.0,
                    step=2,
                    scale="geometric",
                    integer=False,
                    signal="read_cache_hits_total",
                )
            )
        if config.shard.enabled:
            registry.register(
                Knob(
                    name="shard.delta_sync",
                    section="shard",
                    attribute="delta_sync",
                    minimum=0,
                    maximum=1,
                    step=1,
                    scale="linear",
                    signal="shard_wire_bytes_total",
                )
            )
        if config.supervised():
            registry.register(
                Knob(
                    name="supervision.failure_threshold",
                    section="supervision",
                    attribute="failure_threshold",
                    minimum=1,
                    maximum=10,
                    step=1,
                    scale="linear",
                    signal="supervision_breaker_opens_total",
                )
            )
            registry.register(
                Knob(
                    name="supervision.backoff_base_seconds",
                    section="supervision",
                    attribute="backoff_base_seconds",
                    minimum=1.0,
                    maximum=600.0,
                    step=2,
                    scale="geometric",
                    integer=False,
                    signal="supervision_breaker_half_opens_total",
                )
            )
        return registry


@dataclass
class _Trial:
    """One in-flight adjustment awaiting its next-interval verdict."""

    knob: str
    direction: str
    previous_value: Any


# Controller phases.
_WARMUP = "warmup"
_SETTLED = "settled"
_SEARCHING = "searching"


def _opposite(direction: str) -> str:
    return DOWN if direction == UP else UP


class TuningController(Instrumented):
    """Drift-gated hill climb over the application's declared knobs.

    One instance serves one application.  :meth:`start` schedules the
    periodic tick on the application clock *after* the gather jobs so
    every tick observes the sweeps of its own interval; :meth:`tick`
    is also callable directly by tests and offline replays.

    The policy, interval by interval:

    1. **Measure** the objective level for the interval that just
       ended (built-in signals derive it from ``app.metrics``; a
       custom callable supplies a cumulative cost and the controller
       takes deltas).  No observations → no action.
    2. **Warmup / settled** — record the baseline; while the level
       stays within ``drift_tolerance`` of it, do nothing.  Drift
       beyond the band opens a search anchored at the drifted level.
    3. **Searching** — evaluate the pending trial first: a regression
       beyond ``rollback_tolerance`` rolls the knob back, cools it
       down and marks the direction dead; an improvement lowers the
       baseline and keeps momentum; a neutral step is kept (plateau
       traversal) without moving the baseline.  Then propose the next
       move — momentum first, otherwise greedy on observed per-move
       reward with optional epsilon exploration — never proposing a
       dead direction, a cooling knob, the exact undo of the last
       accepted move, or a clamped no-op.  When nothing is proposable
       the search closes and the controller settles at the best point
       found.
    """

    metric_specs = (
        MetricSpec(
            "tuning_ticks_total",
            "_ticks",
            stats_key="ticks",
            help="Controller intervals elapsed (including warmup and "
            "intervals without objective observations).",
        ),
        MetricSpec(
            "tuning_evaluations_total",
            "_evaluations",
            stats_key="evaluations",
            help="Intervals with a measurable objective level.",
        ),
        MetricSpec(
            "tuning_rollbacks_total",
            "_rollbacks",
            stats_key="rollbacks",
            help="Adjustments undone because the objective regressed "
            "beyond the rollback tolerance.",
        ),
        MetricSpec(
            "tuning_drifts_total",
            "_drifts",
            stats_key="drifts",
            help="Settled baselines broken by objective drift (each "
            "one opens a new search).",
        ),
    )

    def __init__(
        self,
        app: Any,
        config: TuningConfig,
        registry: Optional[KnobRegistry] = None,
        objective: Optional[Callable[[], float]] = None,
    ):
        self.app = app
        self.config = config
        self.registry = registry if registry is not None else app.knobs
        names = config.knobs or self.registry.names()
        for name in names:
            self.registry.get(name)  # unknown names fail at wiring time
        self._names: Tuple[str, ...] = tuple(names)
        self._rng = random.Random(config.seed)
        self._objective_fn = objective
        self._job = None
        self._phase = _WARMUP
        self._baseline: Optional[float] = None
        self._trial: Optional[_Trial] = None
        self._dead: set = set()
        self._momentum: Optional[Tuple[str, str]] = None
        self._blocked: Optional[Tuple[str, str]] = None
        self._cooldowns: Dict[str, int] = {}
        self._rewards: Dict[Tuple[str, str], List[float]] = {}
        self._last_cumulative: Optional[float] = None
        self._histogram_counts: Optional[Tuple[Tuple[float, int], ...]] = None
        self._histogram_sum = 0.0
        self._ticks = 0
        self._evaluations = 0
        self._rollbacks = 0
        self._drifts = 0
        self._adjustments: Dict[Tuple[str, str], int] = {}
        self._metrics = None
        self._metric_labels: Dict[str, Any] = {}
        self._trajectory: List[Dict[str, Any]] = []

    # -- wiring ---------------------------------------------------------------

    def set_objective(self, fn: Callable[[], float]) -> None:
        """Install a cumulative-cost objective (monotone callable; the
        controller minimises its per-interval increments).  Required
        before the first tick when ``objective='custom'``."""
        self._objective_fn = fn

    def attach_metrics(self, metrics, **labels: Any) -> None:
        """Counters via the Instrumented protocol, plus a per-knob
        current-value gauge; adjustment counters materialise per
        ``{knob, direction}`` on first use."""
        super().attach_metrics(metrics, **labels)
        self._metrics = metrics
        self._metric_labels = dict(labels)
        for name in self._names:
            metrics.callback(
                "tuning_knob_value",
                lambda name=name: float(
                    self.registry.value_of(self.app.config, name)
                ),
                kind="gauge",
                help="Current value of each tunable knob.",
                knob=name,
                **labels,
            )

    def start(self) -> None:
        """Schedule the periodic tick on the application clock.

        Must run after the gather jobs are scheduled: the simulation
        clock breaks same-timestamp ties by scheduling order, so a
        later-scheduled job with the same period observes every sweep
        of its own interval, every interval.
        """
        if self._job is not None:
            return
        if self.config.objective == "custom" and self._objective_fn is None:
            raise TuningError(
                "objective='custom' requires set_objective() before start()"
            )
        self._job = self.app.clock.schedule_periodic(
            self.config.interval_seconds, self.tick
        )

    def stop(self) -> None:
        if self._job is not None:
            self._job.cancel()
            self._job = None

    # -- the control loop -----------------------------------------------------

    def tick(self) -> None:
        """One controller interval (idempotent against missing data)."""
        self._ticks += 1
        level = self._measure()
        if level is None:
            return
        self._evaluations += 1
        self._decay_cooldowns()

        if self._phase is _WARMUP:
            self._baseline = level
            if self._evaluations > self.config.warmup_intervals:
                self._phase = _SETTLED
            return

        if self._phase is _SETTLED:
            assert self._baseline is not None
            if self._within(level, self._baseline, self.config.drift_tolerance):
                self._baseline = level  # absorb in-band drift
                return
            self._drifts += 1
            self._begin_search(level)
            self._propose()
            return

        # _SEARCHING: judge the pending trial, then keep climbing.
        trial, self._trial = self._trial, None
        if trial is not None:
            if self._judge(trial, level) is False:
                return  # rolled back; let the restored config settle
        self._propose()

    # -- search mechanics -----------------------------------------------------

    def _begin_search(self, level: float) -> None:
        self._phase = _SEARCHING
        self._baseline = level
        self._dead = set()
        self._momentum = None
        self._blocked = None
        self._rewards = {}

    def _judge(self, trial: _Trial, level: float) -> bool:
        """Accept or roll back ``trial`` given the level it produced.

        Returns ``False`` on rollback (the caller pauses proposing for
        one interval so the restored config is what the next
        measurement sees).
        """
        assert self._baseline is not None
        baseline = self._baseline
        move = (trial.knob, trial.direction)
        tolerance = self.config.rollback_tolerance
        band = tolerance * max(abs(baseline), 1e-12)
        self._note_reward(move, baseline - level)
        if level > baseline + band:
            # Regression: undo the step, cool the knob down.
            self.app.apply_config(
                self.registry.with_value(
                    self.app.config, trial.knob, trial.previous_value
                )
            )
            self._rollbacks += 1
            self._record(trial.knob, trial.previous_value, "rollback")
            self._cooldowns[trial.knob] = self.config.cooldown_intervals
            self._dead.add(move)
            self._momentum = None
            return False
        if level < baseline - band:
            # Improvement: new anchor; never undo your own move within
            # this search, and keep pushing the same way first.
            self._baseline = level
            self._dead.discard(move)
            self._blocked = (trial.knob, _opposite(trial.direction))
            self._momentum = move
        else:
            # Neutral plateau step: keep it, keep walking.
            self._momentum = move
        return True

    def _propose(self) -> None:
        """Pick and apply the next trial move, or settle."""
        candidates: List[Tuple[str, str, Any, Any]] = []
        for name in self._names:
            knob = self.registry.get(name)
            current = knob.read(self.app.config)
            for direction in (DOWN, UP):
                move = (name, direction)
                if move in self._dead or move == self._blocked:
                    continue
                if self._cooldowns.get(name):
                    continue
                candidate = knob.step_toward(current, direction)
                if candidate == current:
                    self._dead.add(move)  # clamped at the bound
                    continue
                candidates.append((name, direction, current, candidate))
        if not candidates:
            self._settle()
            return
        chosen = self._choose(candidates)
        name, direction, current, candidate = chosen
        self.app.apply_config(
            self.registry.with_value(self.app.config, name, candidate)
        )
        self._count_adjustment(name, direction)
        self._record(name, candidate, direction)
        self._trial = _Trial(name, direction, current)

    def _choose(
        self, candidates: List[Tuple[str, str, Any, Any]]
    ) -> Tuple[str, str, Any, Any]:
        if self._momentum is not None:
            for entry in candidates:
                if (entry[0], entry[1]) == self._momentum:
                    return entry
        if self.config.epsilon and self._rng.random() < self.config.epsilon:
            return candidates[self._rng.randrange(len(candidates))]
        # Greedy on mean observed reward; untried moves score 0 so a
        # known-good move wins, a known-bad one loses to fresh ground.
        def score(entry):
            history = self._rewards.get((entry[0], entry[1]))
            if not history:
                return 0.0
            return sum(history) / len(history)

        best = candidates[0]
        best_score = score(best)
        for entry in candidates[1:]:
            entry_score = score(entry)
            if entry_score > best_score:
                best, best_score = entry, entry_score
        return best

    def _settle(self) -> None:
        self._phase = _SETTLED
        self._trial = None
        self._momentum = None
        self._blocked = None
        self._dead = set()

    # -- measurement ----------------------------------------------------------

    def _measure(self) -> Optional[float]:
        """Objective level for the interval that just ended, or
        ``None`` when there is nothing to measure yet."""
        objective = self.config.objective
        if self._objective_fn is not None:
            cumulative = float(self._objective_fn())
            previous = self._last_cumulative
            self._last_cumulative = cumulative
            if previous is None:
                return None
            return cumulative - previous
        if objective == "custom":
            raise TuningError(
                "objective='custom' requires set_objective() first"
            )
        if objective == "gather_errors":
            cumulative = float(self.app.metrics.value("app_gather_errors_total"))
            previous = self._last_cumulative
            self._last_cumulative = cumulative
            if previous is None:
                return None
            return cumulative - previous
        return self._measure_sweep_histogram(objective)

    def _measure_sweep_histogram(self, objective: str) -> Optional[float]:
        family = self.app.metrics.get("sweep_duration_seconds")
        if family is None:
            return None
        merged: Dict[float, int] = {}
        total_sum = 0.0
        for _labels, histogram in family.samples():
            for bound, cumulative in histogram.bucket_counts():
                merged[bound] = merged.get(bound, 0) + cumulative
            total_sum += histogram.sum
        counts = tuple(sorted(merged.items()))
        previous, self._histogram_counts = self._histogram_counts, counts
        previous_sum, self._histogram_sum = self._histogram_sum, total_sum
        if previous is None:
            return None
        before = dict(previous)
        deltas = [
            (bound, cumulative - before.get(bound, 0))
            for bound, cumulative in counts
        ]
        observed = deltas[-1][1] if deltas else 0
        if observed <= 0:
            return None
        if objective == "sweep_mean":
            return (total_sum - previous_sum) / observed
        # p99 over the interval's observations, walked through the
        # cumulative-delta buckets; the overflow bucket reports twice
        # the last finite bound (a pessimistic but monotone stand-in).
        rank = 0.99 * observed
        last_finite = 0.0
        for bound, cumulative in deltas:
            if bound != float("inf"):
                last_finite = bound
            if cumulative >= rank:
                return bound if bound != float("inf") else 2 * last_finite
        return 2 * last_finite

    # -- accounting -----------------------------------------------------------

    def _within(self, level: float, baseline: float, tolerance: float) -> bool:
        band = tolerance * max(abs(baseline), 1e-12)
        return abs(level - baseline) <= band

    def _decay_cooldowns(self) -> None:
        for name in list(self._cooldowns):
            self._cooldowns[name] -= 1
            if self._cooldowns[name] <= 0:
                del self._cooldowns[name]

    def _note_reward(self, move: Tuple[str, str], reward: float) -> None:
        self._rewards.setdefault(move, []).append(reward)

    def _count_adjustment(self, name: str, direction: str) -> None:
        move = (name, direction)
        if move not in self._adjustments and self._metrics is not None:
            self._metrics.callback(
                "tuning_adjustments_total",
                lambda move=move: self._adjustments.get(move, 0),
                kind="counter",
                help="Knob adjustments applied, by knob and direction.",
                knob=name,
                direction=direction,
                **self._metric_labels,
            )
        self._adjustments[move] = self._adjustments.get(move, 0) + 1

    def _record(self, name: str, value: Any, event: str) -> None:
        self._trajectory.append(
            {
                "tick": self._ticks,
                "clock": self.app.clock.now(),
                "knob": name,
                "value": value,
                "event": event,
            }
        )

    # -- introspection --------------------------------------------------------

    @property
    def phase(self) -> str:
        return self._phase

    @property
    def trajectory(self) -> List[Dict[str, Any]]:
        """Chronological adjustment/rollback log (JSON-able rows)."""
        return list(self._trajectory)

    def _extra_stats(self) -> Dict[str, Any]:
        return {
            "phase": self._phase,
            "baseline": self._baseline,
            "adjustments": {
                f"{name}:{direction}": count
                for (name, direction), count in sorted(
                    self._adjustments.items()
                )
            },
            "values": {
                name: self.registry.value_of(self.app.config, name)
                for name in self._names
            },
        }

    def report(self) -> Dict[str, Any]:
        """JSON-able summary for the ``repro tune`` CLI."""
        return {
            "objective": self.config.objective,
            "interval_seconds": self.config.interval_seconds,
            "stats": self.stats(),
            "knobs": self.registry.describe(self.app.config),
            "trajectory": self.trajectory,
        }


def run_parking_tuning(
    seed: int = 7,
    duration_seconds: float = 21600.0,
    interval_seconds: float = 600.0,
    flap_fraction: float = 0.5,
    flap_start: float = 1800.0,
    flap_period: float = 300.0,
    knobs: Tuple[str, ...] = (
        "supervision.failure_threshold",
        "supervision.backoff_base_seconds",
    ),
) -> Dict[str, Any]:
    """Run the parking study with the adaptive controller closed over a
    connection-flap plan, and report the tuning trajectory.

    Half the presence sensors flap down/up every ``flap_period`` seconds
    from ``flap_start`` to the end of the run.  The controller minimises
    the number of reads that reach flapping hardware (the injector's
    failure counter — each one is a wasted RPC against a dark device),
    which it can only do by retuning the supervision policy live: trip
    breakers sooner (``failure_threshold`` down) and probe less eagerly
    (``backoff_base_seconds`` up).  The whole loop runs on a
    :class:`~repro.runtime.clock.SimulationClock`, so the report is a
    deterministic function of the arguments; ``repro tune`` prints it.
    """
    # Imported lazily: apps.parking imports the runtime, which imports
    # this module through the config layer.
    from repro.apps.parking.app import build_parking_app
    from repro.faults.chaos import ChaosInjector, FaultPlan
    from repro.faults.policy import StalePolicy, SupervisionPolicy
    from repro.runtime.clock import SimulationClock
    from repro.runtime.config import RuntimeConfig

    clock = SimulationClock()
    config = RuntimeConfig(
        clock=clock,
        name="ParkingTuning",
        supervision=SupervisionPolicy(
            failure_threshold=5,
            backoff_base_seconds=60.0,
            backoff_max_seconds=3600.0,
            jitter=0.0,
            quarantine_after=None,
        ),
        supervision_seed=seed,
        stale=StalePolicy("last_known"),
        tuning=TuningConfig(
            enabled=True,
            interval_seconds=interval_seconds,
            knobs=tuple(knobs),
            objective="custom",
            epsilon=0.0,
            seed=seed,
        ),
    )
    parking = build_parking_app(
        clock=clock,
        availability_period="1 min",
        seed=seed,
        start=False,
        config=config,
    )
    app = parking.application

    flap_duration = duration_seconds - flap_start
    plan = FaultPlan(seed=seed).flap(
        "PresenceSensor",
        start=flap_start,
        duration=flap_duration,
        flap_period=flap_period,
        fraction=flap_fraction,
    )
    injector = ChaosInjector(app, plan).attach()
    # Cumulative cost: every read the flapping hardware still receives.
    app.tuner.set_objective(lambda: float(injector.injected_failures))
    app.start()
    app.advance(duration_seconds)

    tuning = app.tuner.report()
    report: Dict[str, Any] = {
        "seed": seed,
        "duration_seconds": duration_seconds,
        "flap_window": [flap_start, flap_start + flap_duration],
        "flap_period_seconds": flap_period,
        "sensors_total": parking.sensor_count,
        "sensors_flapping": len(injector.targeted_entities),
        "injected_read_failures": injector.injected_failures,
        "gather_errors": app.stats["gather_errors"],
        "tuning": tuning,
        "adjusted": bool(tuning["stats"]["adjustments"]),
    }
    injector.detach()
    app.stop()
    return report
