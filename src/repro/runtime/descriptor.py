"""Declarative deployment descriptors.

Entity binding starts with registration: "when sensors are deployed in a
house or in a parking lot, each sensor needs to be registered and
attribute values defined" (§IV).  A deployment descriptor is that
registration record in data form — a JSON-compatible structure listing
every entity with its type, identity, attribute values, driver, and
binding time — so a deployment can be versioned, validated, and applied
to an application without code.

::

    {
      "name": "downtown-pilot",
      "entities": [
        {"type": "PresenceSensor", "id": "s-A22-0",
         "attributes": {"parkingLot": "A22"},
         "driver": "presence", "config": {"lot": "A22", "space": 0},
         "binding": "deployment"}
      ]
    }

Driver names resolve through a :class:`DriverCatalog` of factories, the
code-side counterpart of the descriptor.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Union

from repro.errors import BindingError
from repro.runtime.binding import BindingTime, Deployment
from repro.runtime.device import DeviceDriver, DeviceInstance


class DriverCatalog:
    """Named driver factories referenced by descriptors."""

    def __init__(self):
        self._factories: Dict[str, Callable[..., DeviceDriver]] = {}

    def register(
        self, name: str, factory: Callable[..., DeviceDriver]
    ) -> None:
        if name in self._factories:
            raise BindingError(f"driver '{name}' is already registered")
        self._factories[name] = factory

    def create(self, name: str, **config: Any) -> DeviceDriver:
        try:
            factory = self._factories[name]
        except KeyError:
            raise BindingError(
                f"no driver factory named '{name}' in the catalog"
            ) from None
        return factory(**config)

    def names(self) -> List[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories


@dataclass(frozen=True)
class EntityRecord:
    """One entity entry of a descriptor."""

    device_type: str
    entity_id: str
    driver: str
    attributes: Dict[str, Any] = field(default_factory=dict)
    config: Dict[str, Any] = field(default_factory=dict)
    binding: BindingTime = BindingTime.DEPLOYMENT


@dataclass(frozen=True)
class DeploymentDescriptor:
    """A parsed, structurally valid deployment description."""

    name: str
    entities: tuple

    @property
    def entity_count(self) -> int:
        return len(self.entities)

    def by_binding(self, when: BindingTime) -> List[EntityRecord]:
        return [e for e in self.entities if e.binding is when]


def load_descriptor(
    source: Union[str, Dict[str, Any]]
) -> DeploymentDescriptor:
    """Parse a descriptor from a JSON string or an already-loaded dict."""
    if isinstance(source, str):
        try:
            data = json.loads(source)
        except json.JSONDecodeError as exc:
            raise BindingError(f"descriptor is not valid JSON: {exc}")
    else:
        data = source
    if not isinstance(data, dict):
        raise BindingError("descriptor must be a JSON object")
    raw_entities = data.get("entities")
    if not isinstance(raw_entities, list):
        raise BindingError("descriptor needs an 'entities' list")

    entities = []
    seen_ids = set()
    for index, raw in enumerate(raw_entities):
        where = f"entities[{index}]"
        if not isinstance(raw, dict):
            raise BindingError(f"{where}: entries must be objects")
        for required in ("type", "id", "driver"):
            if required not in raw:
                raise BindingError(f"{where}: missing '{required}'")
        entity_id = raw["id"]
        if entity_id in seen_ids:
            raise BindingError(f"{where}: duplicate entity id '{entity_id}'")
        seen_ids.add(entity_id)
        binding_name = raw.get("binding", "deployment")
        try:
            binding = BindingTime(binding_name)
        except ValueError:
            valid = ", ".join(t.value for t in BindingTime)
            raise BindingError(
                f"{where}: unknown binding time '{binding_name}' "
                f"(expected one of: {valid})"
            ) from None
        entities.append(
            EntityRecord(
                device_type=raw["type"],
                entity_id=entity_id,
                driver=raw["driver"],
                attributes=dict(raw.get("attributes", {})),
                config=dict(raw.get("config", {})),
                binding=binding,
            )
        )
    return DeploymentDescriptor(
        name=data.get("name", "deployment"), entities=tuple(entities)
    )


def apply_descriptor(
    application,
    descriptor: DeploymentDescriptor,
    catalog: DriverCatalog,
) -> Deployment:
    """Stage every descriptor entity into a :class:`Deployment`.

    Device types, attribute names/values and driver names are validated
    against the design and the catalog before anything binds, so a bad
    descriptor fails atomically.
    """
    instances = []
    for record in descriptor.entities:
        if record.device_type not in application.design.devices:
            raise BindingError(
                f"entity '{record.entity_id}': device type "
                f"'{record.device_type}' is not in the design"
            )
        if record.driver not in catalog:
            raise BindingError(
                f"entity '{record.entity_id}': unknown driver "
                f"'{record.driver}'"
            )
        driver = catalog.create(record.driver, **record.config)
        instance = DeviceInstance(
            application.design.devices[record.device_type],
            record.entity_id,
            driver,
            record.attributes,
        )
        instances.append((record, instance))

    deployment = Deployment(application)
    for record, instance in instances:
        deployment.stage(instance, record.binding)
    return deployment
