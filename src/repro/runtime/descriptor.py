"""Declarative deployment descriptors.

Entity binding starts with registration: "when sensors are deployed in a
house or in a parking lot, each sensor needs to be registered and
attribute values defined" (§IV).  A deployment descriptor is that
registration record in data form — a JSON-compatible structure listing
every entity with its type, identity, attribute values, driver, and
binding time — so a deployment can be versioned, validated, and applied
to an application without code.

::

    {
      "name": "downtown-pilot",
      "entities": [
        {"type": "PresenceSensor", "id": "s-A22-0",
         "attributes": {"parkingLot": "A22"},
         "driver": "presence", "config": {"lot": "A22", "space": 0},
         "binding": "deployment"}
      ]
    }

Driver names resolve through a :class:`DriverCatalog` of factories, the
code-side counterpart of the descriptor.

A descriptor may also carry the *where* of a deployment: a ``topology``
section describing the device→edge→cloud path and the edge nodes of the
site, and a per-entity ``placement`` record pinning an entity to a tier
and node::

    {
      "name": "downtown-pilot",
      "topology": {
        "seed": 7,
        "edge_attribute": "parkingLot",
        "hops": {"access": {"latency": 0.002},
                 "wan": {"latency": 0.08, "bandwidth": 1000000.0}},
        "edge_nodes": [{"id": "cab-A22", "values": ["A22"]}]
      },
      "entities": [
        {"type": "PresenceSensor", "id": "s-A22-0", "driver": "presence",
         "attributes": {"parkingLot": "A22"},
         "placement": {"tier": "edge", "node": "cab-A22"}}
      ]
    }

:meth:`DeploymentDescriptor.network_config` and
:meth:`DeploymentDescriptor.placement_config` turn the topology section
into the frozen config objects :class:`repro.runtime.config.RuntimeConfig`
expects, so one JSON file describes both the fleet and the continuum it
runs on.

A ``shard`` entry inside ``topology`` declares that the site runs the
process-sharded runtime and with which wire settings::

    "topology": {
      "shard": {"workers": 4, "wire_format": "columnar",
                "delta_sync": true, "local_cache": true}
    }

:meth:`DeploymentDescriptor.shard_config` turns it into an enabled
:class:`~repro.runtime.shard.ShardConfig` (``None`` when the section is
absent), so case-study apps can opt a deployment into sharding from the
descriptor alone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import BindingError, PlacementError
from repro.runtime.binding import BindingTime, Deployment
from repro.runtime.device import DeviceDriver, DeviceInstance
from repro.runtime.placement import (
    EdgeNode,
    EntityPlacement,
    NetworkConfig,
    PlacementConfig,
)
from repro.runtime.shard import ShardConfig
from repro.simulation.network import HopProfile


class DriverCatalog:
    """Named driver factories referenced by descriptors."""

    def __init__(self):
        self._factories: Dict[str, Callable[..., DeviceDriver]] = {}

    def register(
        self, name: str, factory: Callable[..., DeviceDriver]
    ) -> None:
        if name in self._factories:
            raise BindingError(f"driver '{name}' is already registered")
        self._factories[name] = factory

    def create(self, name: str, **config: Any) -> DeviceDriver:
        try:
            factory = self._factories[name]
        except KeyError:
            raise BindingError(
                f"no driver factory named '{name}' in the catalog"
            ) from None
        return factory(**config)

    def names(self) -> List[str]:
        return sorted(self._factories)

    def __contains__(self, name: str) -> bool:
        return name in self._factories


@dataclass(frozen=True)
class EntityRecord:
    """One entity entry of a descriptor."""

    device_type: str
    entity_id: str
    driver: str
    attributes: Dict[str, Any] = field(default_factory=dict)
    config: Dict[str, Any] = field(default_factory=dict)
    binding: BindingTime = BindingTime.DEPLOYMENT
    placement: Optional[EntityPlacement] = None


@dataclass(frozen=True)
class TopologySection:
    """The parsed ``topology`` section of a descriptor."""

    hops: Tuple[Tuple[str, HopProfile], ...] = ()
    edge_nodes: Tuple[EdgeNode, ...] = ()
    edge_attribute: Optional[str] = None
    seed: int = 0
    shard: Optional[Tuple[Tuple[str, Any], ...]] = None

    def network_config(self, **overrides: Any) -> NetworkConfig:
        """Build the :class:`NetworkConfig` this topology describes."""
        settings: Dict[str, Any] = {"hops": self.hops, "seed": self.seed}
        settings.update(overrides)
        return NetworkConfig(**settings)

    def placement_config(self, **overrides: Any) -> PlacementConfig:
        """Build an enabled :class:`PlacementConfig` for this site."""
        settings: Dict[str, Any] = {
            "enabled": True,
            "edge_nodes": self.edge_nodes,
            "edge_attribute": self.edge_attribute,
        }
        settings.update(overrides)
        return PlacementConfig(**settings)

    def shard_config(self, **overrides: Any) -> Optional[ShardConfig]:
        """Build an enabled :class:`ShardConfig` for this site.

        ``None`` when the descriptor declares no ``shard`` section — the
        deployment runs single-process.
        """
        if self.shard is None:
            return None
        settings: Dict[str, Any] = {"enabled": True}
        settings.update(self.shard)
        settings.update(overrides)
        return ShardConfig(**settings)


@dataclass(frozen=True)
class DeploymentDescriptor:
    """A parsed, structurally valid deployment description."""

    name: str
    entities: tuple
    topology: Optional[TopologySection] = None

    @property
    def entity_count(self) -> int:
        return len(self.entities)

    def by_binding(self, when: BindingTime) -> List[EntityRecord]:
        return [e for e in self.entities if e.binding is when]

    def network_config(self, **overrides: Any) -> Optional[NetworkConfig]:
        if self.topology is None:
            return None
        return self.topology.network_config(**overrides)

    def placement_config(self, **overrides: Any) -> Optional[PlacementConfig]:
        if self.topology is None:
            return None
        return self.topology.placement_config(**overrides)

    def shard_config(self, **overrides: Any) -> Optional[ShardConfig]:
        if self.topology is None:
            return None
        return self.topology.shard_config(**overrides)


_HOP_FIELDS = ("latency", "jitter", "loss", "bandwidth")
_SHARD_FIELDS = (
    "enabled",
    "workers",
    "start_method",
    "wire_format",
    "delta_sync",
    "local_cache",
)


def _parse_shard(raw: Any) -> Tuple[Tuple[str, Any], ...]:
    if not isinstance(raw, dict):
        raise BindingError("topology 'shard' must be a JSON object")
    unknown = sorted(set(raw) - set(_SHARD_FIELDS))
    if unknown:
        raise BindingError(
            f"topology shard: unknown fields {unknown} "
            f"(expected any of: {', '.join(_SHARD_FIELDS)})"
        )
    # Fail at load time, not first use: the section must describe a
    # valid ShardConfig (an enabled one unless it says otherwise).
    try:
        ShardConfig(**{"enabled": True, **raw})
    except (TypeError, ValueError) as exc:
        raise BindingError(f"topology shard: {exc}") from None
    return tuple(sorted(raw.items()))


def _parse_topology(raw: Any) -> TopologySection:
    if not isinstance(raw, dict):
        raise BindingError("'topology' must be a JSON object")
    raw_hops = raw.get("hops", {})
    if not isinstance(raw_hops, dict):
        raise BindingError("topology 'hops' must be an object of profiles")
    hops = []
    for hop_name, settings in raw_hops.items():
        where = f"topology hop '{hop_name}'"
        if not isinstance(settings, dict):
            raise BindingError(f"{where}: profile must be an object")
        unknown = sorted(set(settings) - set(_HOP_FIELDS))
        if unknown:
            raise BindingError(
                f"{where}: unknown profile fields {unknown} "
                f"(expected any of: {', '.join(_HOP_FIELDS)})"
            )
        try:
            profile = HopProfile(**settings)
        except (TypeError, ValueError) as exc:
            raise BindingError(f"{where}: {exc}") from None
        hops.append((hop_name, profile))

    raw_nodes = raw.get("edge_nodes", [])
    if not isinstance(raw_nodes, list):
        raise BindingError("topology 'edge_nodes' must be a list")
    nodes = []
    for index, entry in enumerate(raw_nodes):
        where = f"topology edge_nodes[{index}]"
        if not isinstance(entry, dict) or "id" not in entry:
            raise BindingError(f"{where}: entries must be objects with 'id'")
        values = entry.get("values", ())
        if not isinstance(values, (list, tuple)):
            raise BindingError(f"{where}: 'values' must be a list")
        nodes.append(EdgeNode(entry["id"], tuple(values)))

    edge_attribute = raw.get("edge_attribute")
    if edge_attribute is not None and not isinstance(edge_attribute, str):
        raise BindingError("topology 'edge_attribute' must be a string")
    seed = raw.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise BindingError("topology 'seed' must be an integer")
    shard = None
    if "shard" in raw:
        shard = _parse_shard(raw["shard"])
    return TopologySection(
        hops=tuple(hops),
        edge_nodes=tuple(nodes),
        edge_attribute=edge_attribute,
        seed=seed,
        shard=shard,
    )


def _parse_placement(
    where: str, raw: Any, entity_id: str, node_ids: set
) -> EntityPlacement:
    if not isinstance(raw, dict):
        raise BindingError(f"{where}: 'placement' must be an object")
    unknown = sorted(set(raw) - {"tier", "node"})
    if unknown:
        raise BindingError(
            f"{where}: unknown placement fields {unknown} "
            "(expected 'tier' and/or 'node')"
        )
    node = raw.get("node")
    if node is not None and not isinstance(node, str):
        raise BindingError(f"{where}: placement 'node' must be a string")
    if node is not None and node_ids and node not in node_ids:
        raise PlacementError(
            f"{where}: placement node '{node}' is not a declared edge "
            f"node (declared: {', '.join(sorted(node_ids))})",
            entity_id=entity_id,
            node=node,
        )
    # Tier.parse raises a typed PlacementError on unknown tier names.
    return EntityPlacement(tier=raw.get("tier", "device"), node=node)


def load_descriptor(
    source: Union[str, Dict[str, Any]]
) -> DeploymentDescriptor:
    """Parse a descriptor from a JSON string or an already-loaded dict."""
    if isinstance(source, str):
        try:
            data = json.loads(source)
        except json.JSONDecodeError as exc:
            raise BindingError(f"descriptor is not valid JSON: {exc}")
    else:
        data = source
    if not isinstance(data, dict):
        raise BindingError("descriptor must be a JSON object")
    raw_entities = data.get("entities")
    if not isinstance(raw_entities, list):
        raise BindingError("descriptor needs an 'entities' list")

    topology = None
    if "topology" in data:
        topology = _parse_topology(data["topology"])
    node_ids = (
        {node.node_id for node in topology.edge_nodes} if topology else set()
    )

    entities = []
    seen_ids = set()
    for index, raw in enumerate(raw_entities):
        where = f"entities[{index}]"
        if not isinstance(raw, dict):
            raise BindingError(f"{where}: entries must be objects")
        for required in ("type", "id", "driver"):
            if required not in raw:
                raise BindingError(f"{where}: missing '{required}'")
        entity_id = raw["id"]
        if entity_id in seen_ids:
            raise BindingError(f"{where}: duplicate entity id '{entity_id}'")
        seen_ids.add(entity_id)
        binding_name = raw.get("binding", "deployment")
        try:
            binding = BindingTime(binding_name)
        except ValueError:
            valid = ", ".join(t.value for t in BindingTime)
            raise BindingError(
                f"{where}: unknown binding time '{binding_name}' "
                f"(expected one of: {valid})"
            ) from None
        placement = None
        if "placement" in raw:
            placement = _parse_placement(
                where, raw["placement"], entity_id, node_ids
            )
        entities.append(
            EntityRecord(
                device_type=raw["type"],
                entity_id=entity_id,
                driver=raw["driver"],
                attributes=dict(raw.get("attributes", {})),
                config=dict(raw.get("config", {})),
                binding=binding,
                placement=placement,
            )
        )
    return DeploymentDescriptor(
        name=data.get("name", "deployment"),
        entities=tuple(entities),
        topology=topology,
    )


def apply_descriptor(
    application,
    descriptor: DeploymentDescriptor,
    catalog: DriverCatalog,
) -> Deployment:
    """Stage every descriptor entity into a :class:`Deployment`.

    Device types, attribute names/values and driver names are validated
    against the design and the catalog before anything binds, so a bad
    descriptor fails atomically.
    """
    instances = []
    for record in descriptor.entities:
        if record.device_type not in application.design.devices:
            raise BindingError(
                f"entity '{record.entity_id}': device type "
                f"'{record.device_type}' is not in the design"
            )
        if record.driver not in catalog:
            raise BindingError(
                f"entity '{record.entity_id}': unknown driver "
                f"'{record.driver}'"
            )
        driver = catalog.create(record.driver, **record.config)
        instance = DeviceInstance(
            application.design.devices[record.device_type],
            record.entity_id,
            driver,
            record.attributes,
        )
        instances.append((record, instance))

    deployment = Deployment(application)
    for record, instance in instances:
        deployment.stage(instance, record.binding)
    if getattr(application, "placement", None) is not None:
        for record, _ in instances:
            if record.placement is not None and record.placement.node:
                application.assign_edge_node(
                    record.entity_id, record.placement.node
                )
    return deployment
