"""Edge/cloud placement tier: the fog continuum.

The paper's large-scale story (Section VI) assumes sensor readings cross
a wide-area network before they are aggregated; until this module the
runtime ran every map/combine/reduce at the coordinator and modeled the
network as one flat hop.  The placement tier lets a deployment put the
map and map-side combine of a ``grouped by … with map … reduce …``
context *at the edge* — one :class:`EdgeNode` per shard-attribute value
(a parking lot, a building, a cell) — so only per-group partial
aggregates transit the simulated edge→cloud WAN hop while raw readings
stop at the access network:

* :class:`Tier` — the continuum: ``DEVICE`` / ``EDGE`` / ``CLOUD``.
* :class:`EdgeNode` — one edge execution site and the shard-attribute
  values it owns.
* :class:`NetworkConfig` — frozen description of the simulated network;
  builds a single-hop :class:`~repro.simulation.network.NetworkConditions`
  or a multi-hop :class:`~repro.simulation.network.TopologyModel` per
  application (replacing the deprecated ``RuntimeConfig(network=…,
  apply_network_to_reads=…)`` pair).
* :class:`PlacementConfig` — frozen placement policy on
  :class:`~repro.runtime.config.RuntimeConfig`, off by default like
  ``SweepConfig``/``CacheConfig``/``BatchConfig``/``ShardConfig``.
* :class:`PlacementExecutor` — the runtime half: partitions a sweep's
  readings across edge nodes, runs map + combine per node with the
  sharded runtime's ``(rank, gpos, emission)`` tag discipline, ships the
  surviving partials over the WAN hop with byte accounting, and hands
  them to :meth:`MapReduceEngine.merge_partials` for the cloud-side
  final reduce.

Determinism contract: with every hop at zero loss, edge-placed
execution produces **byte-identical** context payloads to the cloud-only
path when the job has no combiner, and associative-identical payloads
with one — exactly the guarantee the process-sharded runtime makes,
because both reuse the same tag protocol and the same final reduce.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import BindingError, PlacementError
from repro.mapreduce.api import (
    CombineCollector,
    MapCollector,
    job_combiner,
)
from repro.runtime.configbase import ConfigBase
from repro.simulation.network import (
    HopProfile,
    NetworkConditions,
    TopologyModel,
)
from repro.telemetry.instrument import Instrumented, MetricSpec

__all__ = [
    "EdgeNode",
    "EntityPlacement",
    "NetworkConfig",
    "PlacementConfig",
    "PlacementExecutor",
    "Tier",
    "payload_nbytes",
]

# Conventional hop names of the two-level continuum.  A topology may
# declare any hops; these are the defaults the placement policy routes
# reads (access) and partials (wan) over.
ACCESS_HOP = "access"
WAN_HOP = "wan"


class Tier(enum.Enum):
    """Where on the device/edge/cloud continuum a computation runs."""

    DEVICE = "device"
    EDGE = "edge"
    CLOUD = "cloud"

    @classmethod
    def parse(cls, value: Any) -> "Tier":
        """Coerce a tier name (or Tier) with a typed placement error."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            names = ", ".join(tier.value for tier in cls)
            raise PlacementError(
                f"unknown placement tier {value!r} (expected one of "
                f"{names})"
            ) from None


def payload_nbytes(value: Any) -> int:
    """Modeled wire size of a payload: bytes of its canonical repr.

    Deliberately representation-level, not serialization-level — the
    simulation compares traffic *shapes* (raw readings vs partial
    aggregates), and ``repr`` is already the runtime's canonical content
    form (payload digests, trace output)."""
    return len(repr(value).encode("utf-8"))


@dataclass(frozen=True)
class EdgeNode:
    """One edge execution site and the shard-attribute values it owns.

    ``values`` are entity attribute values (e.g. ``parkingLot`` names)
    whose readings aggregate at this node.  A placement with no declared
    nodes creates one implicit node per distinct attribute value.
    """

    node_id: str
    values: Tuple[Any, ...] = ()

    def __post_init__(self):
        if not self.node_id:
            raise PlacementError("an EdgeNode needs a non-empty node_id")
        object.__setattr__(self, "values", tuple(self.values))


@dataclass(frozen=True)
class EntityPlacement:
    """Per-entity placement from a deployment descriptor.

    ``tier`` is where the entity itself lives (devices are
    ``Tier.DEVICE``); ``node`` names the :class:`EdgeNode` that fronts
    it, overriding attribute-based node assignment.
    """

    tier: Tier = Tier.DEVICE
    node: Optional[str] = None

    def __post_init__(self):
        object.__setattr__(self, "tier", Tier.parse(self.tier))


@dataclass(frozen=True)
class NetworkConfig(ConfigBase):
    """Frozen description of the simulated network.

    The flat form (``latency``/``jitter``/``loss``) describes the
    classic single-hop model; ``hops`` describes a multi-hop fog
    topology instead (conventionally ``access`` + ``wan``).  The two
    forms are mutually exclusive.  ``apply_to_reads`` extends loss to
    polled gather reads, replacing the deprecated
    ``RuntimeConfig(apply_network_to_reads=…)`` flag.

    The config is immutable deployment data; :meth:`build` constructs a
    fresh stateful model (RNG streams, counters) per application, so
    two apps never share delivery state by accident.
    """

    latency: float = 0.0
    jitter: float = 0.0
    loss: float = 0.0
    seed: int = 0
    apply_to_reads: bool = False
    hops: Any = ()

    _decoders = {
        "hops": lambda raw: tuple(
            (
                name,
                profile
                if isinstance(profile, HopProfile)
                else HopProfile(**profile),
            )
            for name, profile in (
                raw.items() if isinstance(raw, Mapping) else raw
            )
        )
    }

    def __post_init__(self):
        hops = self.hops
        items = tuple(
            hops.items() if isinstance(hops, Mapping) else hops
        )
        for item in items:
            if len(item) != 2 or not isinstance(item[0], str):
                raise TypeError(
                    "hops must map hop names to HopProfile records"
                )
            if not isinstance(item[1], HopProfile):
                raise TypeError(
                    f"hop '{item[0]}' must be a HopProfile, got "
                    f"{type(item[1]).__name__}"
                )
        object.__setattr__(self, "hops", items)
        if items and (self.latency or self.jitter or self.loss):
            raise ValueError(
                "pass either flat latency/jitter/loss or hops, not both"
            )
        if not items:
            # Reuse the single-hop validation (ranges, jitter bound).
            NetworkConditions(self.latency, self.jitter, self.loss)

    @property
    def enabled(self) -> bool:
        """Whether :meth:`build` attaches a model at all."""
        return bool(
            self.hops
            or self.latency
            or self.jitter
            or self.loss
            or self.apply_to_reads
        )

    def hop_names(self) -> Tuple[str, ...]:
        return tuple(name for name, __ in self.hops)

    def build(self):
        """A fresh stateful network model, or ``None`` when inert."""
        if self.hops:
            return TopologyModel(self.hops, seed=self.seed)
        if not self.enabled:
            return None
        return NetworkConditions(
            self.latency, self.jitter, self.loss, seed=self.seed
        )


@dataclass(frozen=True)
class PlacementConfig(ConfigBase):
    """Where grouped MapReduce gathers execute on the continuum.

    * ``enabled`` — master switch; ``False`` (default) keeps every
      gather cloud-only and byte-identical to the placement-less
      runtime.
    * ``edge_attribute`` — entity attribute naming each entity's edge
      node; ``None`` falls back to the interaction's ``grouped by``
      attribute (the natural edge boundary of the paper's parking
      fleet).
    * ``default_tier`` — placement for contexts without an ``at edge`` /
      ``at cloud`` annotation in the design.
    * ``access_hop`` / ``wan_hop`` — topology hop names for the
      device→edge and edge→cloud links.
    * ``edge_nodes`` — explicit :class:`EdgeNode` declarations; empty
      means one implicit node per distinct attribute value.
    """

    enabled: bool = False
    edge_attribute: Optional[str] = None
    default_tier: Tier = Tier.CLOUD
    access_hop: str = ACCESS_HOP
    wan_hop: str = WAN_HOP
    edge_nodes: Tuple[EdgeNode, ...] = ()

    _decoders = {
        "default_tier": Tier.parse,
        "edge_nodes": lambda raw: tuple(
            node
            if isinstance(node, EdgeNode)
            else EdgeNode(
                node_id=node["node_id"], values=tuple(node["values"])
            )
            for node in raw
        ),
    }

    def __post_init__(self):
        object.__setattr__(
            self, "default_tier", Tier.parse(self.default_tier)
        )
        nodes = tuple(self.edge_nodes)
        seen_ids: set = set()
        seen_values: set = set()
        for node in nodes:
            if not isinstance(node, EdgeNode):
                raise TypeError("edge_nodes must be EdgeNode records")
            if node.node_id in seen_ids:
                raise PlacementError(
                    f"duplicate edge node '{node.node_id}'",
                    node=node.node_id,
                )
            seen_ids.add(node.node_id)
            for value in node.values:
                if value in seen_values:
                    raise PlacementError(
                        f"attribute value {value!r} is owned by more "
                        "than one edge node",
                        node=node.node_id,
                    )
                seen_values.add(value)
        object.__setattr__(self, "edge_nodes", nodes)


class PlacementExecutor(Instrumented):
    """Runtime half of the placement tier, one per application.

    Owns the entity→node assignment state and the WAN-side accounting;
    the application calls :meth:`run_edge` for edge-placed MapReduce
    gathers and :meth:`account_cloud` for everything else, so
    ``placement_bytes_wan_total`` compares the two execution shapes
    directly.
    """

    metric_specs = (
        MetricSpec(
            "placement_edge_sweeps_total",
            "_edge_sweeps",
            stats_key="edge_sweeps",
            resettable=True,
            help="Periodic gathers executed with the edge split.",
        ),
        MetricSpec(
            "placement_partials_sent_total",
            "_partials_sent",
            stats_key="partials_sent",
            resettable=True,
            help="Per-group partial aggregates shipped edge->cloud.",
        ),
        MetricSpec(
            "placement_partials_dropped_total",
            "_partials_dropped",
            stats_key="partials_dropped",
            resettable=True,
            help="Partial aggregates lost on the WAN hop.",
        ),
        MetricSpec(
            "placement_raw_readings_total",
            "_raw_sent",
            stats_key="raw_readings",
            resettable=True,
            help="Raw readings shipped over the WAN by cloud-placed "
            "gathers.",
        ),
        MetricSpec(
            "placement_bytes_wan_total",
            "_wan_bytes",
            stats_key="wan_bytes",
            resettable=True,
            help="Modeled gather bytes crossing the edge->cloud hop "
            "(raw readings or partials, by placement).",
        ),
        MetricSpec(
            "placement_edge_nodes",
            "_last_nodes",
            kind="gauge",
            stats_key="edge_nodes",
            help="Edge nodes that participated in the last edge sweep.",
        ),
    )

    def __init__(
        self,
        config: PlacementConfig,
        network: Any = None,
        metrics=None,
    ):
        self.config = config
        # Only a topology has addressable hops; the flat single-hop
        # model keeps its legacy role (event delivery + read loss) and
        # the placement layer accounts bytes model-free.
        self.topology: Optional[TopologyModel] = (
            network if isinstance(network, TopologyModel) else None
        )
        self._has_access = (
            self.topology is not None
            and config.access_hop in self.topology.hop_names
        )
        self._has_wan = (
            self.topology is not None
            and config.wan_hop in self.topology.hop_names
        )
        self._owner: Dict[Any, str] = {
            value: node.node_id
            for node in config.edge_nodes
            for value in node.values
        }
        self._node_ids = {node.node_id for node in config.edge_nodes}
        self._assignments: Dict[str, str] = {}
        self._edge_sweeps = 0
        self._partials_sent = 0
        self._partials_dropped = 0
        self._raw_sent = 0
        self._wan_bytes = 0
        self._last_nodes = 0
        if metrics is not None:
            self.attach_metrics(metrics)

    # -- assignment -----------------------------------------------------

    def assign(self, entity_id: str, node_id: str) -> None:
        """Pin an entity to an edge node (descriptor ``placement:``).

        Explicit assignments win over attribute-based ownership.  When
        the config declares edge nodes, the node must be one of them.
        """
        if self._node_ids and node_id not in self._node_ids:
            raise PlacementError(
                f"entity '{entity_id}' is placed on unknown edge node "
                f"'{node_id}'",
                entity_id=entity_id,
                node=node_id,
            )
        self._assignments[entity_id] = node_id

    def node_for(self, instance, fallback_attribute: str) -> str:
        """The edge node owning one entity's readings."""
        node = self._assignments.get(instance.entity_id)
        if node is not None:
            return node
        attribute = self.config.edge_attribute or fallback_attribute
        try:
            value = instance.attributes[attribute]
        except KeyError:
            raise PlacementError(
                f"entity '{instance.entity_id}' has no attribute "
                f"'{attribute}' to place it on an edge node",
                entity_id=instance.entity_id,
            ) from None
        owner = self._owner.get(value)
        if owner is not None:
            return owner
        if self._owner:
            raise PlacementError(
                f"attribute value {value!r} of entity "
                f"'{instance.entity_id}' is owned by no declared edge "
                "node",
                entity_id=instance.entity_id,
            )
        return str(value)

    # -- placement resolution -------------------------------------------

    def tier_for(self, decl) -> Tier:
        """Effective tier of a context declaration."""
        annotation = getattr(decl, "placement", None)
        if annotation:
            return Tier.parse(annotation)
        return self.config.default_tier

    def splits(self, decl, interaction) -> bool:
        """Whether this periodic interaction runs the edge split."""
        group = getattr(interaction, "group", None)
        return (
            group is not None
            and group.uses_mapreduce
            and self.tier_for(decl) is Tier.EDGE
        )

    # -- WAN accounting --------------------------------------------------

    def account_cloud(self, readings: List[Tuple[Any, Any]]) -> None:
        """Account a cloud-placed gather: raw readings cross the WAN."""
        topology = self.topology
        for __, value in readings:
            nbytes = payload_nbytes(value)
            self._raw_sent += 1
            self._wan_bytes += nbytes
            if topology is not None:
                topology.account(None, nbytes)

    def _account_access(self, nbytes: int) -> None:
        if self._has_access:
            self.topology.account((self.config.access_hop,), nbytes)

    def _send_wan(self, nbytes: int) -> bool:
        self._wan_bytes += nbytes
        if self._has_wan:
            return self.topology.send(self.config.wan_hop, nbytes)
        return True

    def note_edge_sweep(self, node_count: int) -> None:
        """Record one edge-split sweep driven elsewhere (shard
        coordinator: one edge node per worker shard)."""
        self._edge_sweeps += 1
        self._last_nodes = node_count

    def deliver_partials(self, tagged_pairs):
        """Ship tagged partials edge->cloud; returns the survivors.

        One WAN message per partial pair — loss on the WAN drops whole
        partial aggregates, never raw readings (they stopped at the
        access network)."""
        survivors = []
        for tag, key, value in tagged_pairs:
            self._partials_sent += 1
            if self._send_wan(payload_nbytes((key, value))):
                survivors.append((tag, key, value))
            else:
                self._partials_dropped += 1
        return survivors

    # -- the edge split --------------------------------------------------

    def run_edge(
        self,
        engine,
        job,
        readings: List[Tuple[Any, Any]],
        group_attribute: str,
    ):
        """Edge-placed MapReduce over one sweep's readings.

        Reproduces the sharded runtime's discipline with edge nodes in
        place of shards: groups are ranked by their first reading
        across the whole sweep, each node maps (and map-side combines)
        its slice sorted by ``(rank, gpos)`` with globally comparable
        ``(rank, gpos, emission)`` tags, and the surviving partials
        merge through the engine's coordinator-side final reduce.
        """
        self._edge_sweeps += 1
        keyed: List[Tuple[int, Any, Any, str]] = []
        ranks: Dict[Any, int] = {}
        for position, (instance, value) in enumerate(readings):
            self._account_access(payload_nbytes(value))
            try:
                key = instance.attributes[group_attribute]
            except KeyError:
                raise BindingError(
                    f"entity '{instance.entity_id}' has no attribute "
                    f"'{group_attribute}' to group by"
                ) from None
            if key not in ranks:
                ranks[key] = len(ranks)
            node = self.node_for(instance, group_attribute)
            keyed.append((position, key, value, node))
        nodes: Dict[str, List[Tuple[int, Any, Any]]] = {}
        for position, key, value, node in keyed:
            nodes.setdefault(node, []).append((position, key, value))
        self._last_nodes = len(nodes)
        combine = job_combiner(job)
        tagged: List[Tuple[Tuple[int, int, int], Any, Any]] = []
        mapped = 0
        for node in sorted(nodes):
            rows = nodes[node]
            rows.sort(key=lambda row: (ranks[row[1]], row[0]))
            pairs: List[Tuple[Tuple[int, int, int], Any, Any]] = []
            for position, key, value in rows:
                collector = MapCollector()
                job.map(key, value, collector)
                rank = ranks[key]
                for emission, (out_key, out_value) in enumerate(
                    collector.pairs
                ):
                    pairs.append(
                        ((rank, position, emission), out_key, out_value)
                    )
            mapped += len(pairs)
            if combine is not None and pairs:
                grouped: Dict[Any, List[Tuple[Any, Any]]] = {}
                for tag, out_key, out_value in pairs:
                    grouped.setdefault(out_key, []).append(
                        (tag, out_value)
                    )
                combined = []
                for out_key, pairs_for_key in grouped.items():
                    collector = CombineCollector()
                    combine(
                        out_key,
                        [value for __, value in pairs_for_key],
                        collector,
                    )
                    first = min(tag for tag, __ in pairs_for_key)
                    for pair_key, pair_value in collector.pairs:
                        combined.append((first, pair_key, pair_value))
                pairs = combined
            tagged.extend(self.deliver_partials(pairs))
        tagged.sort(key=lambda pair: pair[0])
        pairs = [(key, value) for __, key, value in tagged]
        return engine.merge_partials(job, pairs, mapped)
