"""Device proxies: how application code touches entities.

Figure 11 of the paper shows a controller displaying availability with::

    discover.parkingEntrancePanels().whereLocation(lot).update(status)

— "a set of proxies for invoking remote devices without the need for
managing distributed systems details".  :class:`DeviceProxy` wraps one
instance; :class:`ProxySet` is an immutable collection with chainable
attribute filters (``where_location(...)``) and broadcast actions.

Proxy methods are resolved dynamically from the device declaration:
sources become query methods (``proxy.consumption()``), actions become
action methods (``panel.update(status="FULL: 0")``), attributes become
read-only properties (``sensor.parking_lot``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Tuple

from repro.errors import ActuationError, DiscoveryError
from repro.naming import action_method_name, camel_to_snake, query_method_name
from repro.runtime.device import DeviceInstance


class DeviceProxy:
    """A typed handle on a single bound device instance."""

    __slots__ = ("_instance", "_sources", "_actions", "_attributes")

    def __init__(self, instance: DeviceInstance):
        object.__setattr__(self, "_instance", instance)
        info = instance.info
        object.__setattr__(
            self,
            "_sources",
            {query_method_name(name): name for name in info.sources},
        )
        object.__setattr__(
            self,
            "_actions",
            {action_method_name(name): name for name in info.actions},
        )
        object.__setattr__(
            self,
            "_attributes",
            {camel_to_snake(name): name for name in info.attributes},
        )

    @property
    def entity_id(self) -> str:
        return self._instance.entity_id

    @property
    def device_type(self) -> str:
        return self._instance.info.name

    @property
    def attributes(self) -> Dict[str, Any]:
        return dict(self._instance.attributes)

    @property
    def instance(self) -> DeviceInstance:
        """Escape hatch for tooling; applications should not need it."""
        return self._instance

    def query(self, source: str) -> Any:
        """Query-driven delivery of one source reading."""
        return self._instance.read(source)

    def act(self, action: str, **params: Any) -> Any:
        return self._instance.act(action, **params)

    def __getattr__(self, name: str) -> Any:
        sources = object.__getattribute__(self, "_sources")
        if name in sources:
            source = sources[name]
            return lambda: self._instance.read(source)
        actions = object.__getattribute__(self, "_actions")
        if name in actions:
            action = actions[name]
            return lambda **params: self._instance.act(action, **params)
        attributes = object.__getattribute__(self, "_attributes")
        if name in attributes:
            return self._instance.attributes[attributes[name]]
        raise AttributeError(
            f"device {self.device_type} has no facet '{name}'"
        )

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("device proxies are read-only handles")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DeviceProxy)
            and other._instance is self._instance
        )

    def __hash__(self) -> int:
        return hash(id(self._instance))

    def __repr__(self) -> str:
        return f"<proxy {self.device_type} {self.entity_id}>"


class ProxySet:
    """An immutable, order-preserving set of device proxies.

    Filters return new sets; calling an action method broadcasts to every
    member and returns the per-entity results.
    """

    def __init__(self, device_type: str, proxies: List[DeviceProxy]):
        self._device_type = device_type
        self._proxies: Tuple[DeviceProxy, ...] = tuple(proxies)

    # -- collection protocol --------------------------------------------------

    def __iter__(self) -> Iterator[DeviceProxy]:
        return iter(self._proxies)

    def __len__(self) -> int:
        return len(self._proxies)

    def __bool__(self) -> bool:
        return bool(self._proxies)

    def __getitem__(self, index: int) -> DeviceProxy:
        return self._proxies[index]

    @property
    def device_type(self) -> str:
        return self._device_type

    def entity_ids(self) -> List[str]:
        return [proxy.entity_id for proxy in self._proxies]

    # -- selection -------------------------------------------------------------

    def where(self, **attribute_filters: Any) -> "ProxySet":
        """Keep proxies whose attributes match all given values (snake-case
        attribute names)."""
        kept = []
        for proxy in self._proxies:
            attrs = {
                camel_to_snake(k): v for k, v in proxy.attributes.items()
            }
            if all(
                attrs.get(name) == value
                for name, value in attribute_filters.items()
            ):
                kept.append(proxy)
        return ProxySet(self._device_type, kept)

    def one(self) -> DeviceProxy:
        """Exactly one match, or :class:`DiscoveryError`."""
        if len(self._proxies) != 1:
            raise DiscoveryError(
                f"expected exactly one {self._device_type}, found "
                f"{len(self._proxies)}"
            )
        return self._proxies[0]

    def first(self) -> DeviceProxy:
        if not self._proxies:
            raise DiscoveryError(f"no {self._device_type} entity is bound")
        return self._proxies[0]

    # -- dynamic filter / broadcast methods --------------------------------------

    def __getattr__(self, name: str) -> Any:
        if name.startswith("where_"):
            attribute = name[len("where_") :]
            return lambda value: self.where(**{attribute: value})
        if self._proxies:
            sample = self._proxies[0]
            if name in object.__getattribute__(sample, "_actions"):
                def broadcast(**params: Any) -> Dict[str, Any]:
                    return {
                        proxy.entity_id: proxy.act(
                            object.__getattribute__(proxy, "_actions")[name],
                            **params,
                        )
                        for proxy in self._proxies
                    }

                return broadcast
            if name in object.__getattribute__(sample, "_sources"):
                def gather() -> Dict[str, Any]:
                    return {
                        proxy.entity_id: proxy.query(
                            object.__getattribute__(proxy, "_sources")[name]
                        )
                        for proxy in self._proxies
                    }

                return gather
        raise AttributeError(
            f"proxy set of {self._device_type} has no method '{name}' "
            "(empty sets only support filtering)"
        )

    def act(self, action: str, **params: Any) -> Dict[str, Any]:
        """Broadcast an action by its DiaSpec name."""
        if not self._proxies:
            raise ActuationError(
                f"no {self._device_type} entity to receive '{action}'"
            )
        return {
            proxy.entity_id: proxy.act(action, **params)
            for proxy in self._proxies
        }

    def __repr__(self) -> str:
        return f"<proxies {self._device_type} x{len(self._proxies)}>"


def make_proxy(instance: DeviceInstance) -> DeviceProxy:
    """Proxy for ``instance``, cached on the instance.

    Proxies are immutable views (facet tables derive from the device
    *declaration*; attribute reads go through to the live instance), so
    one proxy per instance is safe and saves rebuilding the facet tables
    on every event and every gathering sweep.
    """
    proxy = getattr(instance, "_cached_proxy", None)
    if proxy is None:
        proxy = DeviceProxy(instance)
        instance._cached_proxy = proxy
    return proxy


def make_proxy_set(
    device_type: str, instances: List[DeviceInstance]
) -> ProxySet:
    """Proxy set over ``instances``, reusing each instance's cached
    proxy so repeated discovery over a large fleet allocates no new
    facet tables."""
    return ProxySet(device_type, [make_proxy(i) for i in instances])
