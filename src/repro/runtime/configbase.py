"""Shared protocol of the frozen configuration family.

Every section of :class:`~repro.runtime.config.RuntimeConfig`
(``SweepConfig``, ``CacheConfig``, ``BatchConfig``, ``ShardConfig``,
``PlacementConfig``, ``NetworkConfig``, ``TuningConfig``) and the config
record itself are frozen dataclasses.  Before this module each grew its
own ad-hoc copy/validation idioms; the live-tuning controller needs one
uniform contract to derive neighbouring configs from a running one:

* :meth:`ConfigBase.replace` — ``dataclasses.replace`` **plus a full
  re-validation** of the copy.  ``__post_init__`` checks re-run on
  construction, and :meth:`ConfigBase.validate` is re-invoked explicitly
  so subclasses can add cross-field checks beyond what construction
  enforces.  A replaced config is exactly as trustworthy as a freshly
  constructed one.
* :meth:`ConfigBase.to_dict` / :meth:`ConfigBase.from_dict` — JSON-able
  round-trip for every *data* field.  Nested configs, frozen policy
  records, enums and tuples encode structurally; live runtime objects
  (clocks, executors, metric registries) are declared in
  ``_runtime_fields`` and omitted — they are wiring, not deployment
  data.
* :meth:`ConfigBase.validate` — explicit re-run of the construction
  checks on an existing instance (the default delegates to
  ``__post_init__``, which every config keeps idempotent).

The protocol is deliberately dependency-free: config modules across the
runtime and faults packages can adopt it without import cycles.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Callable, ClassVar, Dict, Mapping, Tuple

__all__ = ["ConfigBase", "encode_config_value"]

_ATOMIC = (str, int, float, bool, type(None))


def encode_config_value(value: Any) -> Any:
    """Encode one config field value into JSON-able data.

    Understands the vocabulary the config family is built from: nested
    :class:`ConfigBase` records, plain frozen dataclasses
    (``HopProfile``, ``EdgeNode``), enums, mappings and sequences.
    Anything else (a live clock, an executor, a pre-built network
    model) is not deployment data and raises ``TypeError``.
    """
    if isinstance(value, _ATOMIC):
        return value
    if isinstance(value, ConfigBase):
        return value.to_dict()
    if isinstance(value, enum.Enum):
        return value.value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: encode_config_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        return {
            key: encode_config_value(item) for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [encode_config_value(item) for item in value]
    raise TypeError(
        f"{type(value).__name__} is not encodable config data; runtime "
        "objects belong in _runtime_fields, not in to_dict() output"
    )


class ConfigBase:
    """Mixin giving a frozen config dataclass the uniform protocol.

    Subclasses may declare two class-level hooks:

    * ``_runtime_fields`` — field names holding live runtime objects;
      they are omitted from :meth:`to_dict` and left to their defaults
      by :meth:`from_dict`.
    * ``_decoders`` — per-field callables rebuilding rich values
      (nested configs, enums, policy records) from their encoded form.
    """

    _runtime_fields: ClassVar[Tuple[str, ...]] = ()
    _decoders: ClassVar[Mapping[str, Callable[[Any], Any]]] = {}

    def validate(self) -> None:
        """Re-run construction-time validation on this instance.

        The default re-invokes ``__post_init__`` (idempotent across the
        config family); subclasses add cross-field checks here.
        """
        post_init = getattr(self, "__post_init__", None)
        if post_init is not None:
            post_init()

    def replace(self, **changes: Any) -> Any:
        """A copy with ``changes`` applied and **fully re-validated**.

        ``dataclasses.replace`` re-runs ``__post_init__``; the explicit
        :meth:`validate` call on top guarantees any subclass-level
        checks run too, so an invalid field combination can never ride
        in through a replace.
        """
        replaced = dataclasses.replace(self, **changes)
        replaced.validate()
        return replaced

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able mapping of every data field (runtime objects
        omitted per ``_runtime_fields``)."""
        encoded: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            if f.name in self._runtime_fields:
                continue
            encoded[f.name] = encode_config_value(getattr(self, f.name))
        return encoded

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], **overrides: Any) -> Any:
        """Rebuild a config from :meth:`to_dict` output.

        ``overrides`` win over ``data`` (they may carry runtime objects
        such as a clock).  Unknown keys raise ``TypeError`` — a config
        dict never silently drops a misspelled knob.
        """
        merged: Dict[str, Any] = dict(data)
        merged.update(overrides)
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(merged) - names)
        if unknown:
            raise TypeError(
                f"{cls.__name__}.from_dict() got unknown field(s) "
                f"{unknown}"
            )
        kwargs: Dict[str, Any] = {}
        for name, raw in merged.items():
            decoder = cls._decoders.get(name)
            if decoder is not None and raw is not None and name not in (
                overrides
            ):
                kwargs[name] = decoder(raw)
            else:
                kwargs[name] = raw
        return cls(**kwargs)
