"""The ``discover`` object handed to context and controller callbacks.

Entity discovery is invoked "in the implementation of the context and
controller components, as opposed to statically in the design"
(Section IV.1) — this is runtime binding.  A :class:`Discover` instance
exposes:

* per-device-type accessors returning :class:`~repro.runtime.proxies.ProxySet`
  objects — ``discover.parking_entrance_panels()`` in snake case, or
  ``discover.devices("ParkingEntrancePanel")`` by DiaSpec name;
* query-driven pulls of other contexts — ``discover.context_value(name)``
  — allowed only for contexts that declare ``when required``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import DiscoveryError
from repro.naming import proxy_set_method_name
from repro.runtime.proxies import ProxySet, make_proxy_set
from repro.runtime.registry import EntityRegistry
from repro.sema.analyzer import AnalyzedSpec


class Discover:
    """Discovery façade scoped to one application."""

    def __init__(
        self,
        design: AnalyzedSpec,
        registry: EntityRegistry,
        context_query: Optional[Callable[[str], Any]] = None,
    ):
        self._design = design
        self._registry = registry
        self._context_query = context_query
        self._accessors: Dict[str, str] = {
            proxy_set_method_name(name): name
            for name in design.devices
        }

    def devices(self, device_type: str, **attribute_filters: Any) -> ProxySet:
        """All bound instances of ``device_type`` (or its subtypes)."""
        if device_type not in self._design.devices:
            raise DiscoveryError(
                f"'{device_type}' is not a device of this design"
            )
        instances = self._registry.instances_of(
            device_type, **attribute_filters
        )
        return make_proxy_set(device_type, instances)

    def device(self, entity_id: str):
        """A proxy for one specific entity id."""
        from repro.runtime.proxies import make_proxy

        return make_proxy(self._registry.get(entity_id))

    def context_value(self, context_name: str) -> Any:
        """Query-driven pull of a ``when required`` context's value."""
        if self._context_query is None:
            raise DiscoveryError(
                "this discover object is not connected to a running "
                "application; context queries are unavailable"
            )
        if context_name not in self._design.contexts:
            raise DiscoveryError(
                f"'{context_name}' is not a context of this design"
            )
        if not self._design.contexts[context_name].is_queryable:
            raise DiscoveryError(
                f"context '{context_name}' does not declare 'when required' "
                "and cannot be queried"
            )
        return self._context_query(context_name)

    def __getattr__(self, name: str) -> Any:
        accessors = object.__getattribute__(self, "_accessors")
        if name in accessors:
            device_type = accessors[name]
            return lambda **filters: self.devices(device_type, **filters)
        raise AttributeError(f"no device accessor '{name}' in this design")

    def __repr__(self) -> str:
        return f"<discover over {len(self._registry)} bound entities>"
