"""Runtime device instances and drivers.

A :class:`DeviceInstance` is one concrete entity bound to the environment:
a presence sensor in lot A22, the kitchen cooker.  Its behaviour comes
from a :class:`DeviceDriver` — "implementing a device driver" in the
paper's words (Section III) — which must support all **three data delivery
modes** so client applications are free to choose any of them:

* **query-driven**: the runtime calls :meth:`DeviceDriver.read`;
* **periodic**: the runtime polls :meth:`DeviceDriver.read` on a schedule;
* **event-driven**: the driver pushes via :meth:`DeviceInstance.publish`.

Attribute values (``parkingLot = "A22"``) are validated against the
design's declared attribute types at construction, reproducing the
registration step of entity binding.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Dict, Optional

from repro.errors import (
    ActuationError,
    BindingError,
    CircuitOpenError,
    DeliveryError,
    DeviceUnavailableError,
)
from repro.naming import action_method_name, camel_to_snake, query_method_name
from repro.sema.symbols import DeviceInfo
from repro.typesys.values import check_value, coerce_value


class DeviceDriver:
    """Base class for device behaviour.

    Subclasses implement sources as ``read_<source>()`` methods (snake
    case) and actions as ``do_<action>(**params)`` methods, or override
    :meth:`read` / :meth:`invoke` wholesale.  The driver gains access to
    its bound instance through ``self.instance`` (set at bind time), which
    it uses to push event-driven readings.
    """

    instance: Optional["DeviceInstance"] = None

    def read(self, source: str) -> Any:
        """Query-driven delivery: return the current value of ``source``."""
        method = getattr(self, f"read_{query_method_name(source)}", None)
        if method is None:
            raise DeliveryError(
                f"{type(self).__name__} implements no reader for source "
                f"'{source}'"
            )
        return method()

    def invoke(self, action: str, **params: Any) -> Any:
        """Actuation: perform ``action`` with ``params``.

        Parameter names arrive in DiaSpec spelling (``questionId``) and are
        converted to the ``do_*`` method's snake_case spelling.
        """
        method = getattr(self, f"do_{action_method_name(action)}", None)
        if method is None:
            raise ActuationError(
                f"{type(self).__name__} implements no handler for action "
                f"'{action}'"
            )
        return method(
            **{camel_to_snake(name): value for name, value in params.items()}
        )

    def read_batch(self, entity_ids, source: str):
        """Columnar batch read: one column of values for many entities.

        Drivers backed by a shared substrate (a vectorized simulation
        model, a fleet gateway that answers one RPC for a whole shard)
        override this to return a sequence of raw values **aligned
        with** ``entity_ids``.  The sweep engine then issues one batch
        read per (shard, source) cohort instead of one Python
        :meth:`read` per device.

        The default returns :data:`NotImplemented` — "this driver only
        reads one entity at a time" — which keeps every existing driver
        on the scalar path.  Returning :data:`NotImplemented`, ``None``
        or a mis-sized column at runtime demotes the cohort to scalar
        reads with full per-entity supervision accounting.
        """
        return NotImplemented

    def batch_key(self, source: str):
        """Cohort identity for columnar reads.

        Instances whose drivers return the *same object* (identity
        comparison) may be coalesced into one :meth:`read_batch` call —
        typically the shared substrate behind the per-instance drivers.
        ``None`` (the default for drivers that do not override
        :meth:`read_batch`) opts the instance out of batching entirely.
        """
        if type(self).read_batch is not DeviceDriver.read_batch:
            return self
        return None

    def push(self, source: str, value: Any, index: Any = None) -> None:
        """Event-driven delivery: publish a reading through the instance."""
        if self.instance is None:
            raise DeliveryError("driver is not bound to a device instance")
        self.instance.publish(source, value, index=index)


class CallableDriver(DeviceDriver):
    """Driver assembled from plain callables — convenient for tests.

    >>> driver = CallableDriver(
    ...     sources={"consumption": lambda: 1500.0},
    ...     actions={"Off": lambda: turn_off()},
    ... )
    """

    def __init__(
        self,
        sources: Optional[Dict[str, Callable[[], Any]]] = None,
        actions: Optional[Dict[str, Callable[..., Any]]] = None,
    ):
        self._sources = dict(sources or {})
        self._actions = dict(actions or {})

    def read(self, source: str) -> Any:
        try:
            reader = self._sources[source]
        except KeyError:
            raise DeliveryError(f"no reader for source '{source}'") from None
        return reader()

    def invoke(self, action: str, **params: Any) -> Any:
        try:
            handler = self._actions[action]
        except KeyError:
            raise ActuationError(f"no handler for action '{action}'") from None
        return handler(**params)


class DeviceInstance:
    """One bound entity: identity + attributes + driver.

    Every entity in a typical IoT infrastructure "has a unique identity,
    as well as network, computing and storage capabilities" (Section I);
    here that is the ``entity_id``, the attribute record, and the driver.
    """

    def __init__(
        self,
        info: DeviceInfo,
        entity_id: str,
        driver: DeviceDriver,
        attributes: Optional[Dict[str, Any]] = None,
    ):
        attributes = dict(attributes or {})
        declared = set(info.attributes)
        supplied = set(attributes)
        missing = declared - supplied
        extra = supplied - declared
        if missing:
            raise BindingError(
                f"device '{entity_id}' of type {info.name}: attribute(s) "
                f"{sorted(missing)} must be set at registration"
            )
        if extra:
            raise BindingError(
                f"device '{entity_id}' of type {info.name}: unknown "
                f"attribute(s) {sorted(extra)}"
            )
        for name, value in attributes.items():
            # Store the canonicalized value (e.g. dicts become immutable
            # StructureValue records) so attribute records are hashable
            # and indexable.
            attributes[name] = check_value(
                info.attributes[name].dia_type, value
            )

        self.info = info
        self.entity_id = entity_id
        self.driver = driver
        self.attributes = attributes
        self.failed = False
        # Supervision handle (repro.faults): None means unsupervised —
        # the exact pre-supervision behaviour at zero added cost.
        self.supervisor = None
        # Read-cache handle (repro.runtime.cache): None means every
        # read reaches the driver — the exact pre-cache behaviour.
        self._cache = None
        self._publish_hook: Optional[Callable[..., None]] = None
        self._m_reads = None
        self._m_retries = None
        self._m_timeouts = None
        self._m_failures = None
        driver.instance = self

    # -- wiring -------------------------------------------------------------

    def attach(self, publish_hook: Callable[..., None]) -> None:
        """Connect the instance to an application's event plumbing."""
        self._publish_hook = publish_hook

    def attach_metrics(self, metrics) -> None:
        """Export read/retry/timeout counters (labelled by device type)
        through a telemetry registry.  Instances of the same type share
        the counters, so fleet-wide retry pressure reads as one series."""
        device_type = self.info.name
        self._m_reads = metrics.counter(
            "device_reads_total",
            help="Query-driven/periodic reads attempted per device type.",
            device_type=device_type,
        )
        self._m_retries = metrics.counter(
            "device_read_retries_total",
            help="Re-attempts after a failed or timed-out read.",
            device_type=device_type,
        )
        self._m_timeouts = metrics.counter(
            "device_read_timeouts_total",
            help="Read attempts that exceeded their declared timeout.",
            device_type=device_type,
        )
        self._m_failures = metrics.counter(
            "device_read_failures_total",
            help="Reads that failed after exhausting their retry budget.",
            device_type=device_type,
        )

    def attach_supervisor(self, supervisor) -> None:
        """Put the instance under a :class:`DeviceSupervisor`'s care.

        The supervisor gates reads/actuations through its circuit
        breaker, overrides the design's retry/timeout declarations when
        its policy says so, and caches successful readings for
        stale-value degraded delivery.
        """
        self.supervisor = supervisor

    def attach_cache(self, cache) -> None:
        """Serve reads through a freshness-aware
        :class:`~repro.runtime.cache.ReadCache`.

        A fresh cached value short-circuits the whole supervised read
        (no driver call, no breaker probe); misses run the normal path
        and populate the cache.  Pass ``None`` to detach.
        """
        self._cache = cache

    def detach(self) -> None:
        self._publish_hook = None
        self._cache = None
        # Drop the memoized device proxy (repro.runtime.proxies) so a
        # later rebind builds a fresh one instead of resurrecting the
        # detached wiring.
        self.__dict__.pop("_cached_proxy", None)

    # -- the three delivery modes --------------------------------------------

    def read(self, source: str) -> Any:
        """Query-driven read, validated against the declared source type.

        Applies the source's declared error policy (``expect timeout ...
        retry N``): failed reads are retried up to N times, and a read
        exceeding the timeout (wall-clock) is treated as failed.

        With a read cache attached, a value fresher than the cache TTL
        is served without touching the driver or the supervision state;
        misses (and all reads when no cache is attached) take the path
        below unchanged.
        """
        cache = self._cache
        if cache is None:
            return self._read_fresh(source)
        if self.failed:
            # A hard-failed device must not be masked by cached
            # freshness; the failure check stays authoritative.
            raise DeviceUnavailableError(
                f"device '{self.entity_id}' has failed and cannot be read",
                entity_id=self.entity_id,
            )
        return cache.get_or_read(
            self, source, functools.partial(self._read_fresh, source)
        )

    def _read_fresh(self, source: str) -> Any:
        """The uncached supervised read (the historical ``read`` body)."""
        if self.failed:
            raise DeviceUnavailableError(
                f"device '{self.entity_id}' has failed and cannot be read",
                entity_id=self.entity_id,
            )
        source_info = self.info.source(source)
        supervisor = self.supervisor
        if supervisor is not None:
            if not supervisor.allow():
                raise CircuitOpenError(
                    f"circuit breaker open for '{self.entity_id}'; read "
                    f"of '{source}' refused",
                    entity_id=self.entity_id,
                )
            attempts = 1 + supervisor.policy.retries_for(source_info)
            timeout = supervisor.policy.timeout_for(source_info)
        else:
            attempts = 1 + source_info.retries
            timeout = source_info.timeout_seconds
        last_error: Optional[DeliveryError] = None
        if self._m_reads is not None:
            self._m_reads.inc()
        for attempt in range(attempts):
            if attempt and self._m_retries is not None:
                self._m_retries.inc()
            started = time.perf_counter()
            try:
                value = self.driver.read(source)
            except DeliveryError as exc:
                last_error = exc
                continue
            # Chaos-injected latency is virtual (no sleeping): the
            # wrapper reports it and the timeout check honours it here.
            elapsed = time.perf_counter() - started + getattr(
                self.driver, "last_injected_latency", 0.0
            )
            if timeout is not None and elapsed > timeout:
                last_error = DeliveryError(
                    f"read of '{source}' on '{self.entity_id}' exceeded "
                    f"its {timeout}s timeout"
                )
                if self._m_timeouts is not None:
                    self._m_timeouts.inc()
                continue
            value = coerce_value(source_info.dia_type, value)
            if supervisor is not None:
                supervisor.record_success(source, value)
            return value
        if self._m_failures is not None:
            self._m_failures.inc()
        if supervisor is not None:
            supervisor.record_failure()
            raise DeviceUnavailableError(
                f"read of '{source}' on '{self.entity_id}' failed after "
                f"{attempts} attempt(s): {last_error}",
                entity_id=self.entity_id,
            ) from last_error
        raise last_error  # type: ignore[misc]

    def publish(self, source: str, value: Any, index: Any = None) -> None:
        """Event-driven push from the driver into the application."""
        if self.failed:
            return
        source_info = self.info.source(source)
        value = coerce_value(source_info.dia_type, value)
        if source_info.is_indexed and index is not None:
            check_value(source_info.index_type, index)
        if self._publish_hook is not None:
            self._publish_hook(self, source, value, index)

    def act(self, action: str, **params: Any) -> Any:
        """Issue an action, validating parameters against the declaration."""
        if self.failed:
            raise ActuationError(
                f"device '{self.entity_id}' has failed and cannot act"
            )
        action_info = self.info.action(action)
        declared = [name for name, __ in action_info.params]
        if sorted(declared) != sorted(params):
            raise ActuationError(
                f"action '{action}' on '{self.entity_id}' expects parameters "
                f"{declared}, got {sorted(params)}"
            )
        types = dict(action_info.params)
        for name, value in params.items():
            check_value(types[name], value)
        supervisor = self.supervisor
        if supervisor is None:
            try:
                return self.driver.invoke(action, **params)
            finally:
                self._invalidate_cached_sources()
        if not supervisor.allow():
            raise CircuitOpenError(
                f"circuit breaker open for '{self.entity_id}'; action "
                f"'{action}' refused",
                entity_id=self.entity_id,
            )
        try:
            result = self.driver.invoke(action, **params)
        except (ActuationError, DeliveryError):
            supervisor.record_failure()
            raise
        finally:
            self._invalidate_cached_sources()
        supervisor.record_success()
        return result

    def _invalidate_cached_sources(self) -> None:
        """Actuation reached the driver: the physical state this
        device's sources report may have changed, so cached readings
        (even from a failed actuation, which may have had partial
        effect) are no longer trustworthy."""
        if self._cache is not None:
            self._cache.invalidate(self.entity_id)

    # -- failure injection ----------------------------------------------------

    def fail(self) -> None:
        """Mark the device as failed (Section VI: device-failure dimension)."""
        self.failed = True

    def recover(self) -> None:
        self.failed = False

    def __repr__(self) -> str:
        attrs = ", ".join(f"{k}={v!r}" for k, v in self.attributes.items())
        return f"<{self.info.name} {self.entity_id} {attrs}>"
