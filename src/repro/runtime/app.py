"""Application assembly and execution.

:class:`Application` turns an analyzed design plus component
implementations and bound devices into a running orchestrating
application.  It is the Python counterpart of the runtime system the
paper's generated frameworks call into: components are "called as
required by the runtime system" (Section V) — inversion of control.

Wiring follows the design exactly:

* every ``when provided <source> from <device>`` becomes a bus
  subscription on that device type's source events;
* every ``when periodic ... <period>`` becomes a scheduled gathering job
  that polls all bound instances, groups, optionally MapReduces, and
  optionally window-accumulates before invoking the callback;
* every ``when provided <context>`` becomes a subscription on the
  provider's published values;
* publish disciplines (``always``/``maybe``/``no``) are enforced, and all
  published values are checked against the context's declared type.

Dispatch is synchronous and deterministic: subscriptions are installed in
SCC layer order, so a published value reaches same-layer subscribers in
declaration order and flows monotonically toward controllers.
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Any, Callable, Dict, List, Optional, Union

from repro.errors import (
    BindingError,
    ComponentError,
    ContextNotQueryableError,
    DeliveryError,
    PlacementError,
    RuntimeOrchestrationError,
    TuningError,
)
from repro.lang.ast_nodes import (
    Publish,
    WhenPeriodic,
    WhenProvidedContext,
    WhenProvidedSource,
    WhenRequired,
)
from repro.mapreduce.api import MapReduce
from repro.mapreduce.engine import MapReduceEngine
from repro.runtime.bus import EventBus
from repro.runtime.cache import ReadCache
from repro.runtime.clock import Clock, SimulationClock
from repro.runtime.config import RuntimeConfig
from repro.runtime.component import (
    Component,
    Context,
    ContextEvent,
    Controller,
    GatherReading,
    Publishable as PublishableWrapper,
    SourceEvent,
)
from repro.faults.policy import HEALTHY
from repro.runtime.device import DeviceDriver, DeviceInstance
from repro.runtime.discovery import Discover
from repro.runtime.grouping import (
    WindowAccumulator,
    group_readings,
    group_readings_planned,
)
from repro.runtime.placement import PlacementExecutor
from repro.runtime.plan import CohortPlanner, DeliveryPlanner
from repro.runtime.proxies import make_proxy
from repro.simulation.network import TopologyModel
from repro.runtime.qos import QoSMonitor
from repro.runtime.registry import EntityRegistry
from repro.runtime.sweep import SweepEngine
from repro.sema.analyzer import AnalyzedSpec
from repro.telemetry import MetricsRegistry
from repro.typesys.values import check_value, coerce_value

# Sentinel distinguishing "isolated component failed" from a None result.
_FAILED = object()

# Per-instance read outcomes produced inside a sweep and folded back on
# the sweep-driving thread (worker threads never touch app counters).
_READ_OK = "ok"
_READ_DROPPED = "dropped"
_READ_FAILED = "failed"

# Placeholder marking a position demoted out of its batch cohort for
# this sweep (failed flag, degraded health); the scalar fallback loop
# overwrites it with the real (outcome, payload) pair.
_DEMOTED = object()


class Application:
    """A running (or runnable) orchestrating application.

    Typical use::

        config = RuntimeConfig(error_policy="isolate")
        app = Application(analyze(DESIGN), config)
        app.implement("Alert", AlertImpl)
        app.implement("Notify", NotifyImpl)
        app.create_device("Clock", "clock-1", clock_driver)
        app.start()
        app.advance(60)        # drive virtual time

    The keyword form (``Application(design, clock=..., error_policy=
    ...)``) is deprecated; keywords are folded into a
    :class:`RuntimeConfig` with a :class:`DeprecationWarning` for one
    release.
    """

    ERROR_POLICIES = ("raise", "isolate")

    def __init__(
        self,
        design: AnalyzedSpec,
        config: Optional[RuntimeConfig] = None,
        **legacy_kwargs: Any,
    ):
        if legacy_kwargs:
            if config is not None:
                raise TypeError(
                    "pass either a RuntimeConfig or legacy keyword "
                    "arguments, not both"
                )
            # The one shim entry point; it emits the consolidated
            # DeprecationWarning itself.
            config = RuntimeConfig.from_legacy_kwargs(**legacy_kwargs)
        elif config is None:
            config = RuntimeConfig()
        self.config = config
        self.design = design
        self.name = config.name
        # A NetworkConfig builds a fresh stateful model per application
        # (single hop or fog topology); legacy pre-built instances pass
        # through for one release.
        self.network, self.apply_network_to_reads = config.build_network()
        self.error_policy = config.error_policy
        # Streaming fast path: contexts declaring ``every <window>`` with
        # MapReduce fold deliveries incrementally instead of buffering
        # the whole window (disable to force buffered accumulation).
        self.streaming_windows = config.streaming_windows
        self._component_errors: List[ComponentError] = []
        self._error_listeners: List[Callable[[str, Exception], None]] = []
        self.clock: Clock = (
            config.clock if config.clock is not None else SimulationClock()
        )
        # One registry captures every layer's counters; the per-layer
        # stats()/last_stats surfaces remain as views over the same
        # numbers.  Pass a shared registry to aggregate several
        # applications into one scrape.
        self.metrics: MetricsRegistry = (
            config.metrics
            if config.metrics is not None
            else MetricsRegistry()
        )
        self.bus = EventBus(metrics=self.metrics)
        self.registry = EntityRegistry(metrics=self.metrics)
        if self.network is not None and callable(
            getattr(self.network, "attach_metrics", None)
        ):
            # Network delivery counters join app.metrics like every
            # other layer (per-hop series too, for a topology).
            self.network.attach_metrics(self.metrics)
        self.mapreduce = MapReduceEngine(
            config.mapreduce_executor, self.metrics
        )
        self.qos = QoSMonitor(metrics=self.metrics)
        # Fault-tolerance layer: per-entity breakers/health plus the
        # degraded-delivery policy gathers apply when a source is dark.
        # Imported here, not at module level: when repro.faults is the
        # import entry point its own init chain re-enters this module
        # (faults.supervisor -> telemetry -> chrometrace -> runtime).
        from repro.faults.supervisor import SupervisionManager

        self.supervision = SupervisionManager(
            self.clock,
            default_policy=config.supervision,
            overrides=config.supervision_overrides,
            seed=config.supervision_seed,
        )
        self.supervision.attach_metrics(self.metrics)
        self.stale = config.stale_policy
        self.registry.attach_health(self.supervision.health_of)
        # Sweep execution: periodic gathers fan device reads out through
        # the engine (bounded thread pool under a wall clock, serial
        # loop under simulation — see repro.runtime.sweep).
        self.sweeper = SweepEngine(
            self.registry, self.clock, config.sweep, metrics=self.metrics
        )
        # Query-driven fast path: one freshness-aware read cache shared
        # by sweeps, proxy reads and query_context pulls.  ``None`` when
        # disabled — the device read path is then byte-identical to the
        # uncached runtime.
        self.read_cache: Optional[ReadCache] = (
            ReadCache(self.clock, config.cache, metrics=self.metrics)
            if config.cache.enabled
            else None
        )
        # Batch hot path (repro.runtime.plan): columnar driver reads
        # during sweeps and precompiled publish/grouping dispatch.  All
        # three handles are inert by default — with
        # ``BatchConfig(enabled=False)`` the scalar read path and the
        # per-publish topic walk below stay byte-identical.
        self._columnar_reads = (
            config.batch.enabled and config.batch.columnar_reads
        )
        self._columnar_windows = (
            config.batch.enabled and config.batch.columnar_windows
        )
        self.planner: Optional[DeliveryPlanner] = (
            DeliveryPlanner(
                design, self.bus, self.registry, metrics=self.metrics
            )
            if config.batch.enabled and config.batch.compile_plans
            else None
        )
        # Persistent (shard, batch_key) cohort plans for the columnar
        # sweep path, invalidated by registry version — re-deriving the
        # cohorts per sweep is pure overhead once fleets grow past a
        # few thousand devices.
        self._cohort_planner: Optional[CohortPlanner] = (
            CohortPlanner(self.registry, metrics=self.metrics)
            if config.batch.enabled
            else None
        )
        # (device type, source) -> ancestor-walk topic tuple.  The walk
        # is a pure function of the immutable analyzed design, so the
        # memo never needs invalidating; it serves the plans-off publish
        # path (plans flatten further, down to the subscriber list).
        self._topic_memo: Dict[Any, tuple] = {}
        self._memoize_contexts = (
            self.read_cache is not None and config.cache.memoize_contexts
        )
        self._context_cache_hits: Dict[str, int] = {}
        # query_context memo: name -> (checked value, stamp, generation)
        self._query_memo: Dict[str, Any] = {}
        # periodic-gather memo: name -> content hash of the last payload
        self._gather_digests: Dict[str, int] = {}
        # Sharded runtime hook: when set, periodic gathers delegate
        # payload collection (poll + group + mapreduce) to the shard
        # coordinator instead of sweeping the local registry.  ``None``
        # keeps the local single-process path byte-identical.
        self._gather_delegate: Optional[Callable[[Any, Any], Any]] = None
        # Placement tier (repro.runtime.placement): edge-local
        # map+combine for grouped MapReduce gathers plus WAN byte
        # accounting.  ``None`` keeps every gather cloud-only and
        # byte-identical to the placement-less runtime.
        self.placement: Optional[PlacementExecutor] = (
            PlacementExecutor(
                config.placement, self.network, metrics=self.metrics
            )
            if config.placement.enabled
            else None
        )
        # id(interaction) -> True for periodic interactions that run
        # the edge split (resolved once; the design is immutable, so
        # the same interaction objects flow through _collect_payload
        # and the shard workers alike).
        self._edge_interactions: set = set()
        if self.placement is not None:
            for info in design.contexts.values():
                for interaction in info.decl.interactions:
                    if isinstance(
                        interaction, WhenPeriodic
                    ) and self.placement.splits(info.decl, interaction):
                        self._edge_interactions.add(id(interaction))
        self.discover = Discover(design, self.registry, self.query_context)
        self.started = False
        self._implementations: Dict[str, Component] = {}
        self._jobs: List[Any] = []
        self._subscriptions: List[Any] = []
        self._accumulators: Dict[str, WindowAccumulator] = {}
        self._gather_network_dropped = 0
        self._gather_read_failed = 0
        self._gather_sweeps = 0
        self._context_activations: Dict[str, int] = {}
        self._controller_activations: Dict[str, int] = {}
        self.metrics.callback(
            "app_gather_sweeps_total",
            lambda: self._gather_sweeps,
            help="Periodic gathering sweeps executed.",
        )
        self.metrics.callback(
            "app_gather_network_dropped_total",
            lambda: self._gather_network_dropped,
            help="Reads dropped by the simulated network model during "
            "gathering sweeps.",
        )
        self.metrics.callback(
            "app_gather_read_failed_total",
            lambda: self._gather_read_failed,
            help="Supervised reads that failed during gathering sweeps.",
        )
        # Derived sum kept for dashboard continuity; the two series
        # above are the primary counters.
        self.metrics.callback(
            "app_gather_errors_total",
            lambda: self._gather_errors,
            help="Failed or dropped reads during gathering sweeps "
            "(sum of network_dropped and read_failed).",
        )
        self.metrics.callback(
            "app_component_errors_total",
            lambda: len(self._component_errors),
            help="Component failures contained under error_policy="
            "'isolate'.",
        )
        # Live-tuning layer (repro.runtime.tuning): the knob registry
        # names every tunable of the enabled subsystems; the controller
        # exists only when tuning is on, so a disabled config schedules
        # nothing and stays byte-identical to the untuned runtime.
        from repro.runtime.tuning import KnobRegistry, TuningController

        self.knobs = KnobRegistry.for_config(config)
        self.tuner: Optional[TuningController] = None
        if config.tuning.enabled:
            self.tuner = TuningController(self, config.tuning, self.knobs)
            self.tuner.attach_metrics(self.metrics)

    # ------------------------------------------------------------------
    # Assembly
    # ------------------------------------------------------------------

    def implement(
        self, name: str, implementation: Union[Component, type]
    ) -> Component:
        """Install the implementation of a declared context or controller."""
        if isinstance(implementation, type):
            implementation = implementation()
        kind = self.design.symbols.kind_of(name)
        if kind == "context" and not isinstance(implementation, Context):
            raise BindingError(
                f"implementation of context '{name}' must subclass Context"
            )
        if kind == "controller" and not isinstance(implementation, Controller):
            raise BindingError(
                f"implementation of controller '{name}' must subclass "
                "Controller"
            )
        if kind not in ("context", "controller"):
            raise BindingError(
                f"'{name}' is not a context or controller of this design"
            )
        if self.started:
            raise BindingError(
                "implementations must be installed before start()"
            )
        self._implementations[name] = implementation
        return implementation

    def bind_device(self, instance: DeviceInstance) -> DeviceInstance:
        """Bind a device instance (any time, including at runtime)."""
        if instance.info.name not in self.design.devices:
            raise BindingError(
                f"device type '{instance.info.name}' is not part of this "
                "design"
            )
        self.registry.register(instance)
        instance.attach(self._on_device_publish)
        instance.attach_metrics(self.metrics)
        # Memoize the publish topic walk for every source of this type
        # now, so the first publish is as cheap as the thousandth.
        for source in instance.info.sources:
            self._topics_for(instance.info, source)
        supervisor = self.supervision.supervise(instance)
        if supervisor is not None:
            instance.attach_supervisor(supervisor)
        if self.read_cache is not None:
            instance.attach_cache(self.read_cache)
        return instance

    def create_device(
        self,
        device_type: str,
        entity_id: str,
        driver: DeviceDriver,
        **attributes: Any,
    ) -> DeviceInstance:
        """Construct and bind a device instance in one step."""
        try:
            info = self.design.devices[device_type]
        except KeyError:
            raise BindingError(
                f"device type '{device_type}' is not part of this design"
            ) from None
        instance = DeviceInstance(info, entity_id, driver, attributes)
        return self.bind_device(instance)

    def unbind_device(self, entity_id: str) -> DeviceInstance:
        instance = self.registry.unregister(entity_id)
        instance.detach()
        self.supervision.release(entity_id)
        instance.supervisor = None
        if self.read_cache is not None:
            self.read_cache.invalidate(entity_id)
        return instance

    def assign_edge_node(self, entity_id: str, node_id: str) -> None:
        """Pin an entity to an edge node (descriptor ``placement:``).

        Explicit assignments win over attribute-based node ownership;
        requires the placement tier to be enabled."""
        if self.placement is None:
            raise PlacementError(
                "placement tier is disabled; enable it with "
                "RuntimeConfig(placement=PlacementConfig(enabled=True))",
                entity_id=entity_id,
                node=node_id,
            )
        self.placement.assign(entity_id, node_id)

    def implementation(self, name: str) -> Component:
        try:
            return self._implementations[name]
        except KeyError:
            raise BindingError(f"'{name}' has no implementation") from None

    def attach_gather_delegate(
        self, delegate: Optional[Callable[[Any, Any], Any]]
    ) -> None:
        """Replace periodic payload collection (sharded-runtime hook).

        ``delegate(interaction, implementation)`` must return exactly
        what :meth:`_collect_payload` would — the pre-window payload in
        registry order — while windowing, payload memoization, delivery
        and publishing stay here on the calling application.  Pass
        ``None`` to restore local collection."""
        self._gather_delegate = delegate

    # ------------------------------------------------------------------
    # Life-cycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Validate implementations, wire subscriptions and jobs, and run."""
        if self.started:
            raise RuntimeOrchestrationError("application already started")
        self._validate_implementations()
        for name, implementation in self._implementations.items():
            implementation.bind(name, self.discover, self.clock)
        for name, info in self.design.contexts.items():
            if info.decl.deadline is not None:
                self.qos.register(name, info.decl.deadline.seconds)
        for name, info in self.design.controllers.items():
            if info.decl.deadline is not None:
                self.qos.register(name, info.decl.deadline.seconds)
        for context_name in self.design.graph.context_order():
            self._wire_context(context_name)
        for controller_name in sorted(self.design.controllers):
            self._wire_controller(controller_name)
        if self.tuner is not None:
            # Scheduled after every gather job on purpose: the
            # simulation clock breaks same-timestamp ties by scheduling
            # order, so each controller tick runs after the sweeps of
            # its own interval and adjusts between sweeps, never inside
            # one.
            self.tuner.start()
        self.started = True
        for implementation in self._implementations.values():
            implementation.on_start()

    def stop(self) -> None:
        if not self.started:
            return
        if self.tuner is not None:
            self.tuner.stop()
        for job in self._jobs:
            job.cancel()
        self._jobs.clear()
        for subscription in self._subscriptions:
            subscription.unsubscribe()
        self._subscriptions.clear()
        for implementation in self._implementations.values():
            implementation.on_stop()
        self.sweeper.close()
        self.started = False

    def advance(self, seconds: float) -> int:
        """Drive a simulation clock forward (convenience for tests/benches)."""
        if not isinstance(self.clock, SimulationClock):
            raise RuntimeOrchestrationError(
                "advance() requires a SimulationClock"
            )
        return self.clock.advance(seconds)

    # Config sections that may change on a running application.
    # Everything else is structural wiring resolved at construction
    # (clock, metrics registry, network model, placement/shard/planner
    # objects, window accumulators) and must be identical in any config
    # handed to ``apply_config``.
    _LIVE_FIELDS = frozenset(
        {
            "sweep",
            "cache",
            "batch",
            "supervision",
            "supervision_overrides",
            "stale",
            "error_policy",
            "tuning",
            "shard",
        }
    )

    def apply_config(self, config: RuntimeConfig) -> None:
        """Atomically adopt the live-tunable sections of ``config``.

        The swap is a handful of attribute rebinds executed
        synchronously between clock jobs — the tuning controller runs
        as its own scheduled job after the sweeps of its interval — so
        a running gather can never observe a torn config: every sweep
        executes wholly under the config that was live when it began.

        Live sections: ``sweep`` (mode/workers/batch size/shard
        attribute), ``cache`` (TTLs, coalescing, invalidation scope —
        but not ``enabled``), ``batch`` (``min_column`` and
        ``columnar_reads`` only), ``supervision`` policies and
        overrides (retuned across every live breaker),``stale``,
        ``error_policy``, ``tuning`` itself and ``shard``
        (``wire_format`` and ``delta_sync`` only — the worker gang is
        structural).  Changing any structural field raises
        :class:`~repro.errors.TuningError`.
        """
        old = self.config
        for f in dataclasses.fields(RuntimeConfig):
            if f.name in self._LIVE_FIELDS:
                continue
            before = getattr(old, f.name)
            after = getattr(config, f.name)
            if before is not after and before != after:
                raise TuningError(
                    f"config field '{f.name}' is structural wiring and "
                    "cannot change on a running application"
                )
        if old.cache.enabled != config.cache.enabled:
            raise TuningError(
                "the read cache cannot be enabled or disabled live"
            )
        if old.batch.replace(
            min_column=config.batch.min_column,
            columnar_reads=config.batch.columnar_reads,
        ) != config.batch:
            raise TuningError(
                "only batch.min_column and batch.columnar_reads may "
                "change on a running application"
            )
        if old.supervised() != config.supervised():
            raise TuningError(
                "supervision cannot be enabled or disabled live"
            )
        if old.shard.replace(
            wire_format=config.shard.wire_format,
            delta_sync=config.shard.delta_sync,
        ) != config.shard:
            raise TuningError(
                "only shard.wire_format and shard.delta_sync may "
                "change on a running application"
            )
        self.config = config
        self.error_policy = config.error_policy
        self.stale = config.stale_policy
        self.sweeper.reconfigure(config.sweep)
        if self.read_cache is not None:
            self.read_cache.reconfigure(config.cache)
        self._memoize_contexts = (
            self.read_cache is not None and config.cache.memoize_contexts
        )
        self.supervision.reconfigure(
            config.supervision, config.supervision_overrides
        )
        self._columnar_reads = (
            config.batch.enabled and config.batch.columnar_reads
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, Any]:
        # Each subsystem entry is its Instrumented ``stats()`` snapshot,
        # so this view composes generically as layers are added.
        return {
            "bus": self.bus.stats(),
            "registry": self.registry.stats(),
            "mapreduce": self.mapreduce.stats(),
            "windows": {
                name: accumulator.stats()
                for name, accumulator in self._accumulators.items()
            },
            "gather_sweeps": self._gather_sweeps,
            "gather_errors": self._gather_errors,
            "gather_network_dropped": self._gather_network_dropped,
            "gather_read_failed": self._gather_read_failed,
            "sweep": self.sweeper.stats(),
            "read_cache": (
                self.read_cache.stats()
                if self.read_cache is not None
                else None
            ),
            "plan": (
                self.planner.stats() if self.planner is not None else None
            ),
            "placement": (
                self.placement.stats()
                if self.placement is not None
                else None
            ),
            "network": (
                self.network.stats()
                if self.network is not None
                and callable(getattr(self.network, "stats", None))
                else None
            ),
            "context_cache_hits": dict(self._context_cache_hits),
            "context_activations": dict(self._context_activations),
            "controller_activations": dict(self._controller_activations),
            "bound_entities": len(self.registry),
            "qos": self.qos.stats(),
            "supervision": self.supervision.stats(),
            "component_errors": [
                (record.component, type(record.error).__name__)
                for record in self._component_errors
            ],
        }

    @property
    def _gather_errors(self) -> int:
        """Legacy aggregate: every read lost to a sweep, whatever the
        cause.  Kept as a derived sum so the historical stats key and
        ``app_gather_errors_total`` series stay continuous."""
        return self._gather_network_dropped + self._gather_read_failed

    @property
    def component_errors(self) -> List[ComponentError]:
        """:class:`ComponentError` records captured under 'isolate'.

        Each record carries the component name, the exception, and the
        originating ``entity_id`` when the failure identified one (typed
        device errors do)."""
        return list(self._component_errors)

    def query_context(self, context_name: str) -> Any:
        """Query-driven pull of a ``when required`` context (checked).

        With the read cache enabled and ``memoize_contexts`` on, the
        checked result is reused within the cache's ``context_ttl`` —
        and implicitly expired by any cache invalidation (actuations,
        publishes), via the cache's ``generation`` counter.
        """
        info = self.design.contexts.get(context_name)
        if info is None:
            raise DeliveryError(f"unknown context '{context_name}'")
        if not info.is_queryable:
            raise ContextNotQueryableError(
                f"context '{context_name}' does not declare 'when required'",
                context=context_name,
            )
        if self._memoize_contexts:
            memo = self._query_memo.get(context_name)
            if memo is not None:
                value, stamp, generation = memo
                if (
                    generation == self.read_cache.generation
                    and self.clock.now() - stamp
                    <= self.config.cache.context_ttl
                ):
                    self._count_context_cache_hit(context_name)
                    return value
        implementation = self.implementation(context_name)
        value = implementation.when_required(self.discover)
        checked = check_value(info.result_type, value)
        if self._memoize_contexts:
            self._query_memo[context_name] = (
                checked,
                self.clock.now(),
                self.read_cache.generation,
            )
        return checked

    def _count_context_cache_hit(self, name: str) -> None:
        self._context_cache_hits[name] = (
            self._context_cache_hits.get(name, 0) + 1
        )

    # ------------------------------------------------------------------
    # Internal wiring
    # ------------------------------------------------------------------

    def _validate_implementations(self) -> None:
        for name, info in self.design.contexts.items():
            implementation = self._implementations.get(name)
            if implementation is None:
                raise BindingError(f"context '{name}' has no implementation")
            self._validate_context_impl(name, info, implementation)
        for name in self.design.controllers:
            implementation = self._implementations.get(name)
            if implementation is None:
                raise BindingError(
                    f"controller '{name}' has no implementation"
                )
            self._validate_controller_impl(name, implementation)

    def _validate_context_impl(self, name, info, implementation) -> None:
        for interaction in info.decl.interactions:
            if isinstance(interaction, WhenProvidedSource):
                if implementation.find_event_handler(
                    interaction.source, interaction.device
                ) is None:
                    raise BindingError(
                        f"context '{name}' lacks callback "
                        f"'{_event_name(interaction)}'"
                    )
            elif isinstance(interaction, WhenPeriodic):
                if implementation.find_periodic_handler(
                    interaction.source, interaction.device
                ) is None:
                    raise BindingError(
                        f"context '{name}' lacks callback "
                        f"'{_periodic_name(interaction)}'"
                    )
                if interaction.group and interaction.group.uses_mapreduce:
                    if not isinstance(implementation, MapReduce) and not (
                        callable(getattr(implementation, "map", None))
                        and callable(getattr(implementation, "reduce", None))
                    ):
                        raise BindingError(
                            f"context '{name}' declares 'with map ... "
                            "reduce ...' and must implement the MapReduce "
                            "interface (map/reduce methods)"
                        )
            elif isinstance(interaction, WhenProvidedContext):
                if implementation.find_context_handler(
                    interaction.context
                ) is None:
                    raise BindingError(
                        f"context '{name}' lacks callback "
                        f"'on_{_snake(interaction.context)}'"
                    )
            elif isinstance(interaction, WhenRequired):
                if type(implementation).when_required is Context.when_required:
                    raise BindingError(
                        f"context '{name}' declares 'when required' but "
                        "does not implement when_required()"
                    )

    def _validate_controller_impl(self, name, implementation) -> None:
        decl = self.design.controllers[name].decl
        for reaction in decl.reactions:
            if implementation.find_context_handler(reaction.context) is None:
                raise BindingError(
                    f"controller '{name}' lacks callback "
                    f"'on_{_snake(reaction.context)}'"
                )

    def _qos_wrap(self, name: str, handler):
        """Instrument a callback when its component declares a deadline."""
        if handler is not None and name in self.qos:
            return self.qos.wrap(name, handler)
        return handler

    def _wire_context(self, name: str) -> None:
        info = self.design.contexts[name]
        implementation = self._implementations[name]
        self.metrics.callback(
            "context_activations_total",
            lambda: self._context_activations.get(name, 0),
            help="Context callback activations.",
            component=name,
        )
        self.metrics.callback(
            "context_cache_hits_total",
            lambda: self._context_cache_hits.get(name, 0),
            help="Context recomputations skipped by memoization "
            "(unchanged gather payload or fresh query result).",
            component=name,
        )
        for interaction in info.decl.interactions:
            if isinstance(interaction, WhenProvidedSource):
                handler = self._qos_wrap(
                    name,
                    implementation.find_event_handler(
                        interaction.source, interaction.device
                    ),
                )
                callback = functools.partial(
                    self._on_source_event, name, interaction, handler
                )
                self._subscribe_source(
                    interaction.device, interaction.source, callback
                )
            elif isinstance(interaction, WhenPeriodic):
                self._wire_periodic(name, info, interaction, implementation)
            elif isinstance(interaction, WhenProvidedContext):
                handler = self._qos_wrap(
                    name,
                    implementation.find_context_handler(interaction.context),
                )
                callback = functools.partial(
                    self._on_context_event, name, interaction, handler
                )
                self._subscriptions.append(
                    self.bus.subscribe(
                        ("context", interaction.context), callback
                    )
                )

    def _wire_periodic(self, name, info, interaction, implementation) -> None:
        handler = self._qos_wrap(
            name,
            implementation.find_periodic_handler(
                interaction.source, interaction.device
            ),
        )
        accumulator = None
        group = interaction.group
        if group is not None and group.window is not None:
            if group.uses_mapreduce and self.streaming_windows:
                # Streaming fast path: each sweep's reduced value folds
                # into one partial aggregate per group through the job's
                # combine/reduce, so window state is O(groups) instead of
                # O(deliveries x groups).
                accumulator = WindowAccumulator.incremental_for_job(
                    interaction.period.seconds,
                    group.window.seconds,
                    implementation,
                    columnar=self._columnar_windows,
                )
            else:
                accumulator = WindowAccumulator.for_design(
                    interaction.period.seconds,
                    group.window.seconds,
                    flatten=not group.uses_mapreduce,
                )
            accumulator.attach_metrics(self.metrics, context=name)
            self._accumulators[name] = accumulator
        job = self.clock.schedule_periodic(
            interaction.period.seconds,
            functools.partial(
                self._gather,
                name,
                interaction,
                implementation,
                handler,
                accumulator,
            ),
        )
        self._jobs.append(job)

    def _wire_controller(self, name: str) -> None:
        implementation = self._implementations[name]
        decl = self.design.controllers[name].decl
        self.metrics.callback(
            "controller_activations_total",
            lambda: self._controller_activations.get(name, 0),
            help="Controller callback activations.",
            component=name,
        )
        for reaction in decl.reactions:
            handler = self._qos_wrap(
                name, implementation.find_context_handler(reaction.context)
            )
            callback = functools.partial(
                self._on_controller_event, name, handler
            )
            self._subscriptions.append(
                self.bus.subscribe(("context", reaction.context), callback)
            )

    def _subscribe_source(
        self, device_type: str, source: str, callback: Callable
    ) -> None:
        self._subscriptions.append(
            self.bus.subscribe(("source", device_type, source), callback)
        )

    # ------------------------------------------------------------------
    # Internal dispatch
    # ------------------------------------------------------------------

    def _on_device_publish(self, instance, source, value, index) -> None:
        if self.network is None:
            self._deliver_source_event(instance, source, value, index)
            return
        self.network.transmit(
            self.clock,
            functools.partial(
                self._deliver_source_event, instance, source, value, index
            ),
        )

    def _deliver_source_event(self, instance, source, value, index) -> None:
        if self.read_cache is not None:
            # The push supersedes cached reads of this source (and,
            # with a shard attribute configured, of its whole shard).
            self.read_cache.on_publish(instance, source)
        event = SourceEvent(
            device=make_proxy(instance),
            source=source,
            value=value,
            index=index,
            timestamp=self.clock.now(),
        )
        # Publish under the instance's type and every ancestor that
        # declares the source, so supertype subscriptions see subtype
        # instances (taxonomy reuse, Section III).  With delivery plans
        # compiled, the whole walk *and* the per-topic subscriber
        # resolution collapse into one flat dispatch table; without
        # them, the memoized topic tuple still spares the per-publish
        # ancestor re-walk.
        planner = self.planner
        if planner is not None:
            plan = planner.source_plan(instance.info.name, source)
            self.bus.dispatch_compiled(
                plan.targets, len(plan.topics), event
            )
            return
        for topic in self._topics_for(instance.info, source):
            self.bus.publish(topic, event)

    def _topics_for(self, info, source: str) -> tuple:
        """The ``(type, source)`` publish topics, memoized per device
        type (the walk is fixed by the immutable analyzed design)."""
        key = (info.name, source)
        topics = self._topic_memo.get(key)
        if topics is None:
            devices = self.design.devices
            topics = tuple(
                ("source", type_name, source)
                for type_name in (info.name, *info.ancestors)
                if source in devices[type_name].sources
            )
            self._topic_memo[key] = topics
        return topics

    def on_component_error(
        self, listener: Callable[[str, Exception], None]
    ) -> None:
        """Register a callback invoked when an isolated component fails.

        Only meaningful under ``error_policy='isolate'``; with the default
        ``'raise'`` policy the exception propagates to the event source.
        """
        self._error_listeners.append(listener)

    def _run_component(self, name: str, call: Callable) -> Any:
        """Invoke a component callback under the application's error
        policy.

        ``'raise'`` (default) propagates exceptions to whoever triggered
        the dispatch — loud and precise, right for development.
        ``'isolate'`` contains the failure: it is recorded, listeners are
        notified, and the rest of the application keeps running — the
        per-component supervision of the paper's error-handling dimension
        [14].  Returns ``_FAILED`` when an isolated call failed.
        """
        if self.error_policy == "raise":
            return call()
        try:
            return call()
        except Exception as exc:  # noqa: BLE001 - supervision boundary
            self._component_errors.append(
                ComponentError(name, exc, getattr(exc, "entity_id", None))
            )
            for listener in list(self._error_listeners):
                listener(name, exc)
            return _FAILED

    def _on_source_event(self, name, interaction, handler, event) -> None:
        self._context_activations[name] = (
            self._context_activations.get(name, 0) + 1
        )
        result = self._run_component(
            name, lambda: handler(event, self.discover)
        )
        if result is not _FAILED:
            self._publish_context(name, interaction.publish, result)

    def _on_context_event(self, name, interaction, handler, event) -> None:
        self._context_activations[name] = (
            self._context_activations.get(name, 0) + 1
        )
        result = self._run_component(
            name, lambda: handler(event.value, self.discover)
        )
        if result is not _FAILED:
            self._publish_context(name, interaction.publish, result)

    def _on_controller_event(self, name, handler, event) -> None:
        self._controller_activations[name] = (
            self._controller_activations.get(name, 0) + 1
        )
        self._run_component(
            name, lambda: handler(event.value, self.discover)
        )

    def _gather(
        self, name, interaction, implementation, handler, accumulator
    ) -> None:
        """One periodic sweep: poll, group, mapreduce, window, deliver.

        Polling is delegated to the :class:`SweepEngine` — a serial loop
        under simulation, bounded thread-pool fan-out under a wall clock
        — which returns per-instance outcomes in registry iteration
        order regardless of completion order.  Outcomes fold into
        readings and error counters here, on the sweep-driving thread,
        so worker threads never touch application state.

        Quarantined entities stay in the sweep (hidden only from
        application-level discovery): probing them is what lets a
        half-open breaker observe a recovery.  When a supervised read
        fails, the stale policy decides whether the entity drops out of
        this sweep (``skip``), serves its last known value
        (``last_known``), or fails the sweep (``fail``)."""
        self._gather_sweeps += 1
        collect = self._gather_delegate or self._collect_payload
        payload = collect(interaction, implementation)
        if accumulator is not None:
            payload = accumulator.add(payload)
            if payload is None:
                return
        if self._memoize_contexts:
            # Context memoization: when the merged payload is
            # content-identical to the previous delivery, recompute and
            # republish would be byte-identical too — skip both and
            # count a context cache hit.
            digest = hash((name, repr(payload)))
            if self._gather_digests.get(name) == digest:
                self._count_context_cache_hit(name)
                return
            self._gather_digests[name] = digest
        self._context_activations[name] = (
            self._context_activations.get(name, 0) + 1
        )
        result = self._run_component(
            name, lambda: handler(payload, self.discover)
        )
        if result is not _FAILED:
            self._publish_context(name, interaction.publish, result)

    def _collect_payload(self, interaction, implementation) -> Any:
        """One sweep's pre-window payload: poll, fold, group, mapreduce.

        Split from :meth:`_gather` so a sharded runtime can substitute
        collection (:meth:`attach_gather_delegate`) — running this exact
        logic inside each worker process over its registry shard — while
        windowing, payload memoization and delivery stay with the
        caller."""
        sampler = self._read_sampler(interaction)
        outcomes = self.sweeper.sweep(
            interaction.device,
            functools.partial(
                self._gather_read, interaction.source, sampler
            ),
            read_column=(
                functools.partial(
                    self._gather_read_column,
                    interaction.source,
                    sampler,
                )
                if self._columnar_reads
                else None
            ),
        )
        readings = self._fold_read_outcomes(outcomes, interaction.source)
        group = interaction.group
        placement = self.placement
        if group is None:
            if placement is not None:
                placement.account_cloud(readings)
            return [
                GatherReading(make_proxy(instance), value)
                for instance, value in readings
            ]
        if placement is not None:
            if id(interaction) in self._edge_interactions:
                # Edge split: map + map-side combine run per edge node,
                # only per-group partials transit the WAN hop, and the
                # engine's coordinator-side final reduce merges them.
                return placement.run_edge(
                    self.mapreduce,
                    implementation,
                    readings,
                    group.attribute,
                )
            placement.account_cloud(readings)
        if self.planner is not None:
            grouped = group_readings_planned(
                readings,
                self.planner.membership(
                    interaction.device, group.attribute
                ),
                group.attribute,
            )
        else:
            grouped = group_readings(readings, group.attribute)
        if group.uses_mapreduce:
            return self.mapreduce.run(implementation, grouped)
        return grouped

    def _fold_read_outcomes(self, outcomes, source) -> List[Any]:
        """Fold per-instance sweep outcomes into ``(instance, value)``
        readings, bumping the drop/failure counters and applying the
        stale policy — always on the sweep-driving thread."""
        readings: List[Any] = []
        for instance, (kind, value) in outcomes:
            if kind is _READ_OK:
                readings.append((instance, value))
            elif kind is _READ_DROPPED:
                self._gather_network_dropped += 1
            else:
                self._gather_read_failed += 1
                if self.stale.mode == "fail":
                    raise value
                if self.stale.serves_stale:
                    stale = self._stale_reading(instance, source)
                    if stale is not None:
                        readings.append((instance, stale[0]))
        return readings

    def _read_sampler(self, interaction) -> Optional[Callable[[], bool]]:
        """Zero-arg survival sampler for this gather's polled reads.

        ``None`` when reads are reliable (no network, or loss not
        applied to reads).  Under a topology, an edge-placed gather
        samples only the device→edge access hop — its raw readings
        never touch the WAN — while cloud-placed gathers sample the
        whole path.  Zero-loss hops draw no randomness either way."""
        if self.network is None or not self.apply_network_to_reads:
            return None
        network = self.network
        if isinstance(network, TopologyModel):
            if (
                self.placement is not None
                and id(interaction) in self._edge_interactions
            ):
                access = self.config.placement.access_hop
                if access not in network.hop_names:
                    return None
                return functools.partial(
                    network.sample_read_ok, (access,)
                )
            return network.sample_read_ok
        return network.sample_read_ok

    def _gather_read(self, source, sampler, instance):
        """Poll one instance inside a sweep (possibly on a pool thread).

        Returns an ``(outcome, payload)`` pair instead of mutating
        counters, so the sweep engine can run it concurrently and the
        caller folds outcomes deterministically in registry order."""
        if sampler is not None and not sampler():
            return (_READ_DROPPED, None)
        try:
            return (_READ_OK, instance.read(source))
        except DeliveryError as exc:
            return (_READ_FAILED, exc)

    def _gather_read_column(self, source, sampler, instances):
        """Columnar shard read: cohorts, batch reads, scalar demotion.

        Produces the same ``(outcome, payload)`` column the scalar path
        would, one entry per instance in order.  Eligible entities —
        healthy, not failed, not cache-fresh, with a driver that shares
        a :meth:`~repro.runtime.device.DeviceDriver.batch_key` cohort of
        at least ``min_column`` — are read in one ``read_batch`` call
        per cohort; everything else **demotes to the scalar path**,
        where per-entity retries, breaker accounting and stale handling
        behave exactly as in an unbatched sweep.  A cohort whose batch
        read fails (or returns a mis-shaped column) demotes whole.
        """
        results: List[Any] = [None] * len(instances)
        demoted: List[int] = []
        cache = self.read_cache
        # Static partition — (shard, batch_key) cohorts and the
        # no-batch-driver positions — comes from the memoized plan;
        # only the per-sweep eligibility below stays dynamic.
        plan = self._cohort_planner.plan(source, instances)
        for position, instance in enumerate(instances):
            if sampler is not None and not sampler():
                results[position] = (_READ_DROPPED, None)
                continue
            supervisor = instance.supervisor
            if instance.failed or (
                supervisor is not None and supervisor.health != HEALTHY
            ):
                # Degraded/quarantined entities keep their breaker
                # probes and half-open recovery; a batch read would
                # bypass both.
                results[position] = _DEMOTED
                demoted.append(position)
                continue
            if cache is not None:
                hit = cache.lookup(instance.entity_id, source)
                if hit is not None:
                    results[position] = (_READ_OK, hit[0])
        scalar = [
            position
            for position in plan.scalar
            if results[position] is None
        ]
        scalar.extend(demoted)
        min_column = self.config.batch.min_column
        for positions in plan.groups:
            pending = [
                position
                for position in positions
                if results[position] is None
            ]
            if not pending:
                continue
            if len(pending) < min_column:
                scalar.extend(pending)
                continue
            batch = [(p, instances[p]) for p in pending]
            if not self._read_batch_cohort(source, batch, results):
                scalar.extend(pending)
        if scalar:
            self.sweeper.note_batch_demoted(len(scalar))
            scalar.sort()
            for position in scalar:
                results[position] = self._gather_read(
                    source, None, instances[position]
                )
        return results

    def _read_batch_cohort(self, source, batch, results) -> bool:
        """One driver-level batch read over a cohort.

        Fills ``results`` and returns True on success; returns False —
        leaving ``results`` untouched for these positions — when the
        cohort must be demoted to the scalar path (driver declined,
        read failed, or the column does not align with the cohort).
        """
        instances = [instance for __, instance in batch]
        entity_ids = [instance.entity_id for instance in instances]
        driver = instances[0].driver
        try:
            column = driver.read_batch(entity_ids, source)
        except DeliveryError:
            return False
        if column is NotImplemented or column is None:
            return False
        try:
            values = list(column)
        except TypeError:
            return False
        if len(values) != len(batch):
            return False
        self.sweeper.note_batch_read(len(values))
        cache = self.read_cache
        for (position, instance), raw in zip(batch, values):
            source_info = instance.info.source(source)
            value = coerce_value(source_info.dia_type, raw)
            supervisor = instance.supervisor
            if supervisor is not None:
                # Keeps last-known stale values fresh and the breaker's
                # success accounting truthful, exactly as a scalar read.
                supervisor.record_success(source, value)
            if instance._m_reads is not None:
                instance._m_reads.inc()
            if cache is not None:
                cache.store(instance, source, value)
            results[position] = (_READ_OK, value)
        return True

    def _stale_reading(self, instance, source):
        """Last-known cached reading for a dark source, or ``None``.

        Returns ``(value, age_seconds)`` so a cached ``None`` reading is
        distinguishable from a cache miss."""
        supervisor = instance.supervisor
        if supervisor is None:
            return None
        hit = supervisor.last_known(source, self.stale.max_age_seconds)
        if hit is not None:
            self.supervision.record_stale_serve()
        return hit

    def _publish_context(self, name: str, discipline: Publish, result) -> None:
        if isinstance(result, PublishableWrapper):
            result = result.value
        if discipline is Publish.NO:
            return
        if result is None:
            if discipline is Publish.ALWAYS:
                raise RuntimeOrchestrationError(
                    f"context '{name}' declares 'always publish' but its "
                    "callback returned None"
                )
            return
        info = self.design.contexts[name]
        checked = check_value(info.result_type, result)
        self.bus.publish(
            ("context", name),
            ContextEvent(name, checked, self.clock.now()),
        )


def _snake(name: str) -> str:
    from repro.naming import camel_to_snake

    return camel_to_snake(name)


def _event_name(interaction) -> str:
    from repro.naming import event_handler_name

    return event_handler_name(interaction.source, interaction.device)


def _periodic_name(interaction) -> str:
    from repro.naming import periodic_handler_name

    return periodic_handler_name(interaction.source, interaction.device)
