"""Quality-of-service monitoring.

The paper's conclusion asks "what non-functional dimensions should be
added to the design declarations", naming quality of service (citing its
FASE'11 predecessor [15]).  This module provides the runtime half of the
reproduction's ``expect deadline <...>`` design clause: the application
wraps every declared-deadline component callback in a
:class:`QoSMonitor` probe that records activation durations and counts
deadline violations.

Durations are *wall-clock* (``time.perf_counter``): deadlines bound real
computation, which exists even when the application's data clock is
virtual.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.telemetry.instrument import Instrumented


@dataclass
class ComponentQoS:
    """Per-component activation accounting."""

    deadline_seconds: Optional[float] = None
    activations: int = 0
    violations: int = 0
    total_seconds: float = 0.0
    worst_seconds: float = 0.0
    violation_log: List[float] = field(default_factory=list)

    def record(self, elapsed: float) -> bool:
        """Record one activation; returns True if it violated the deadline."""
        self.activations += 1
        self.total_seconds += elapsed
        if elapsed > self.worst_seconds:
            self.worst_seconds = elapsed
        if (
            self.deadline_seconds is not None
            and elapsed > self.deadline_seconds
        ):
            self.violations += 1
            self.violation_log.append(elapsed)
            return True
        return False

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.activations if self.activations else 0.0


class QoSMonitor(Instrumented):
    """Tracks activation timing for all deadline-bearing components.

    The observable surface is dynamic (one instrument set per
    registered component), so :meth:`attach_metrics` is overridden
    rather than spec-declared; the :class:`Instrumented` ``stats()``
    protocol is kept via ``_extra_stats`` so ``Application.stats`` can
    compose the monitor like every other subsystem.
    """

    def __init__(self, metrics=None):
        self._components: Dict[str, ComponentQoS] = {}
        self._listeners: List[Callable[[str, float], None]] = []
        self._metrics = None
        self._histograms: Dict[str, Any] = {}
        if metrics is not None:
            self.attach_metrics(metrics)

    def attach_metrics(self, metrics, **labels: Any) -> None:
        """Export per-component QoS accounting through a telemetry
        registry: activation/violation counters as pull-time callbacks
        over the :class:`ComponentQoS` records, plus a push histogram of
        activation durations (the only new cost, and only on
        deadline-bearing callbacks)."""
        self._metrics = metrics
        for name in self._components:
            self._register_metrics(name)

    def _register_metrics(self, name: str) -> None:
        record = self._components[name]
        metrics = self._metrics
        metrics.callback(
            "qos_activations_total",
            lambda: record.activations,
            help="Activations of deadline-bearing components.",
            component=name,
        )
        metrics.callback(
            "qos_violations_total",
            lambda: record.violations,
            help="Activations that exceeded their declared deadline.",
            component=name,
        )
        if record.deadline_seconds is not None:
            metrics.callback(
                "qos_deadline_seconds",
                lambda: record.deadline_seconds,
                kind="gauge",
                help="Declared deadline per component.",
                component=name,
            )
        self._histograms[name] = metrics.histogram(
            "qos_activation_seconds",
            help="Wall-clock activation durations of deadline-bearing "
            "components.",
            component=name,
        )

    def register(self, name: str, deadline_seconds: Optional[float]) -> None:
        self._components[name] = ComponentQoS(deadline_seconds)
        if self._metrics is not None:
            self._register_metrics(name)

    def wrap(self, name: str, handler: Callable) -> Callable:
        """Wrap a component callback with timing instrumentation."""
        record = self._components[name]
        histogram = self._histograms.get(name)

        def timed(*args, **kwargs):
            start = time.perf_counter()
            try:
                return handler(*args, **kwargs)
            finally:
                elapsed = time.perf_counter() - start
                if histogram is not None:
                    histogram.observe(elapsed)
                if record.record(elapsed):
                    for listener in list(self._listeners):
                        listener(name, elapsed)

        return timed

    def on_violation(self, listener: Callable[[str, float], None]) -> None:
        """Register a callback invoked on every deadline violation."""
        self._listeners.append(listener)

    def component(self, name: str) -> ComponentQoS:
        return self._components[name]

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def monitored(self) -> List[str]:
        return sorted(self._components)

    def _extra_stats(self) -> Dict[str, Dict[str, float]]:
        return {
            name: {
                "deadline": record.deadline_seconds,
                "activations": record.activations,
                "violations": record.violations,
                "mean_seconds": record.mean_seconds,
                "worst_seconds": record.worst_seconds,
            }
            for name, record in self._components.items()
        }
