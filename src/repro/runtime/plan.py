"""Precompiled delivery plans and the batch hot-path configuration.

Two costs dominate event delivery once a fleet grows past a few hundred
devices:

* every published source event re-walks the publisher's ancestor chain
  (``(type_name, source)`` topics) and re-resolves each topic's
  subscriber snapshot through the bus — work whose *result* is fixed by
  the analyzed design and the current subscription set;
* every periodic gather re-derives the grouping membership
  (entity → ``grouped by`` attribute value) by reading each instance's
  attribute record, although membership only changes on bind/unbind.

This module compiles both into flat dispatch tables, the ahead-of-time
move of the DiaSpec compiler line: the declared design already fixes
who receives what, so the runtime can resolve it once and replay it.

:class:`DeliveryPlanner` caches one :class:`SourcePlan` per
``(device_type, source)`` — the topic tuple of the ancestor walk plus
the flattened subscriber list across those topics, in exact publish
order — and one membership table per ``(device_type, attribute)``.
Staleness is detected by two monotonic counters instead of listeners:
the bus bumps its ``epoch`` on every subscribe/unsubscribe and the
registry bumps its ``version`` on every bind/unbind, so a plan is valid
iff both counters still match the values captured at compile time (the
same generation-counter discipline the read cache uses for context
memoization).  A hit is a dict lookup plus two integer compares.

Plans are wired through :class:`BatchConfig` on
:class:`~repro.runtime.config.RuntimeConfig` and are **off by
default**: with ``BatchConfig(enabled=False)`` the application keeps
the per-publish resolution path byte-identical to previous releases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.runtime.configbase import ConfigBase
from repro.telemetry.instrument import Instrumented, MetricSpec

__all__ = [
    "BatchConfig",
    "CohortPlan",
    "CohortPlanner",
    "DeliveryPlanner",
    "SourcePlan",
]

# Column-size buckets: cohorts below min_column never batch, city-scale
# shards batch thousands of reads per column.
BATCH_COLUMN_BUCKETS = (2, 4, 8, 16, 32, 64, 128, 256, 1024, 4096, 16384)


@dataclass(frozen=True)
class BatchConfig(ConfigBase):
    """The sweep/publish hot path: columnar reads + compiled dispatch.

    * ``enabled`` — master switch; ``False`` (default) keeps both the
      per-device scalar read path and the per-publish topic resolution
      byte-identical to the unbatched runtime.
    * ``columnar_reads`` — issue one driver-level
      :meth:`~repro.runtime.device.DeviceDriver.read_batch` per
      (shard, source) cohort during periodic sweeps instead of one
      Python read per device; entities that cannot batch (no driver
      support, degraded/quarantined health, failed flag) are demoted to
      the scalar path with full supervision accounting.
    * ``min_column`` — smallest cohort worth a batch read; smaller
      cohorts take the scalar path (a column of one would only add
      overhead).
    * ``compile_plans`` — precompile the publish→subscription fan-out
      into :class:`SourcePlan` dispatch tables and gather grouping
      membership into per-type tables (see :class:`DeliveryPlanner`).
    * ``columnar_windows`` — fold a whole column of window values per
      group through the job's combine/reduce in one call instead of
      item-by-item (incremental accumulators only; requires the same
      associativity the streaming fast path already demands).
    """

    enabled: bool = False
    columnar_reads: bool = True
    min_column: int = 2
    compile_plans: bool = True
    columnar_windows: bool = True

    def __post_init__(self):
        if self.min_column < 1:
            raise ValueError("min_column must be >= 1")


class SourcePlan:
    """Compiled dispatch for one ``(device_type, source)`` publish.

    ``topics`` is the memoized ancestor-walk topic tuple; ``targets``
    the flattened tuple of bus subscriptions across those topics in
    publish order.  ``epoch``/``version`` are the bus and registry
    counters captured at compile time — the plan is valid while both
    still match.
    """

    __slots__ = ("device_type", "source", "topics", "targets", "epoch",
                 "version")

    def __init__(self, device_type, source, topics, targets, epoch, version):
        self.device_type = device_type
        self.source = source
        self.topics = topics
        self.targets = targets
        self.epoch = epoch
        self.version = version

    def __repr__(self) -> str:
        return (
            f"<SourcePlan {self.device_type}.{self.source} "
            f"topics={len(self.topics)} targets={len(self.targets)}>"
        )


class DeliveryPlanner(Instrumented):
    """Flat dispatch tables for the publish and grouping hot paths.

    One planner serves a whole application.  Compilation is lazy — the
    first publish of a ``(device_type, source)`` pays the ancestor walk
    exactly once — and every subsequent publish is a plan hit until a
    subscription or binding change bumps the respective counter.
    """

    metric_specs = (
        MetricSpec(
            "plan_compiles_total",
            "_compiles",
            stats_key="compiles",
            help="Dispatch plans and grouping tables compiled.",
        ),
        MetricSpec(
            "plan_invalidations_total",
            "_invalidations",
            stats_key="invalidations",
            help="Cached plans discarded after subscription or binding "
            "churn.",
        ),
        MetricSpec(
            "plan_hits_total",
            "_hits",
            stats_key="hits",
            help="Publishes and gathers served from a compiled plan.",
        ),
        MetricSpec(
            "plan_entries",
            "entry_count",
            kind="gauge",
            help="Dispatch plans and grouping tables currently compiled.",
        ),
    )

    def __init__(self, design, bus, registry, metrics=None):
        self.design = design
        self.bus = bus
        self.registry = registry
        self._plans: Dict[Tuple[str, str], SourcePlan] = {}
        # (device_type, attribute) -> (registry version, entity -> key)
        self._memberships: Dict[
            Tuple[str, str], Tuple[int, Dict[str, Any]]
        ] = {}
        self._compiles = 0
        self._invalidations = 0
        self._hits = 0
        if metrics is not None:
            self.attach_metrics(metrics)

    def entry_count(self) -> int:
        return len(self._plans) + len(self._memberships)

    def _extra_stats(self) -> Dict[str, Any]:
        return {
            "plans": len(self._plans),
            "memberships": len(self._memberships),
        }

    # -- publish dispatch ----------------------------------------------------

    def source_plan(self, device_type: str, source: str) -> SourcePlan:
        """The compiled dispatch for one publish (compiling on miss)."""
        key = (device_type, source)
        plan = self._plans.get(key)
        if plan is not None:
            if (
                plan.epoch == self.bus.epoch
                and plan.version == self.registry.version
            ):
                self._hits += 1
                return plan
            self._invalidations += 1
        return self._compile_source(key)

    def _compile_source(self, key: Tuple[str, str]) -> SourcePlan:
        device_type, source = key
        info = self.design.devices[device_type]
        devices = self.design.devices
        topics = tuple(
            ("source", type_name, source)
            for type_name in (device_type, *info.ancestors)
            if source in devices[type_name].sources
        )
        targets = tuple(
            subscription
            for topic in topics
            for subscription in self.bus.snapshot(topic)
        )
        plan = SourcePlan(
            device_type,
            source,
            topics,
            targets,
            self.bus.epoch,
            self.registry.version,
        )
        self._plans[key] = plan
        self._compiles += 1
        return plan

    # -- grouping membership -------------------------------------------------

    def membership(self, device_type: str, attribute: str) -> Dict[str, Any]:
        """Entity → ``grouped by`` attribute value for a device type.

        Compiled over every registered instance of the type (health and
        the ``failed`` flag deliberately ignored — membership is a pure
        function of the binding, so it stays valid across outages) and
        re-derived only when the registry version moves.
        """
        key = (device_type, attribute)
        memo = self._memberships.get(key)
        version = self.registry.version
        if memo is not None:
            if memo[0] == version:
                self._hits += 1
                return memo[1]
            self._invalidations += 1
        mapping = {
            instance.entity_id: instance.attributes.get(attribute, _MISSING)
            for instance in self.registry.instances_of(
                device_type,
                include_failed=True,
                include_quarantined=True,
            )
        }
        self._memberships[key] = (version, mapping)
        self._compiles += 1
        return mapping

    def clear(self) -> None:
        """Drop every compiled table (counts each as an invalidation)."""
        self._invalidations += len(self._plans) + len(self._memberships)
        self._plans.clear()
        self._memberships.clear()

    def __repr__(self) -> str:
        return (
            f"<DeliveryPlanner plans={len(self._plans)} "
            f"memberships={len(self._memberships)} hits={self._hits}>"
        )


class CohortPlan:
    """Persistent (shard, batch_key) cohort partition for one columnar
    sweep shard.

    ``groups`` is a tuple of position tuples — one per ``batch_key``
    cohort, in first-appearance order, positions being indexes into the
    sweep shard's instance column; ``scalar`` the positions whose
    driver declines batching (``batch_key`` is ``None``).  ``version``
    is the registry version captured at compile time: cohort membership
    is a pure function of the bindings, so the plan stays valid until
    the registry moves.  Per-sweep *eligibility* (sampler drops, failed
    flags, breaker health, cache freshness) stays dynamic in the gather
    path — the plan only spares it the per-instance ``batch_key`` calls
    and cohort re-formation every sweep.
    """

    __slots__ = ("groups", "scalar", "version")

    def __init__(self, groups, scalar, version):
        self.groups = groups
        self.scalar = scalar
        self.version = version

    def __repr__(self) -> str:
        return (
            f"<CohortPlan groups={len(self.groups)} "
            f"scalar={len(self.scalar)} v{self.version}>"
        )


class CohortPlanner(Instrumented):
    """Memoized cohort plans for the columnar sweep hot path.

    Keyed by ``(source, shard length, first entity id)`` — a sweep
    shard's membership and order are fixed for a registry version, and
    its first entity identifies it among the shards of one sweep — and
    invalidated by the registry version, the same two-integer-compare
    discipline :class:`DeliveryPlanner` uses.
    """

    metric_specs = (
        MetricSpec(
            "cohort_plan_compiles_total",
            "_compiles",
            stats_key="compiles",
            help="Columnar cohort plans compiled.",
        ),
        MetricSpec(
            "cohort_plan_hits_total",
            "_hits",
            stats_key="hits",
            help="Columnar sweeps served from a memoized cohort plan.",
        ),
    )

    def __init__(self, registry, metrics=None):
        self.registry = registry
        self._plans: Dict[Tuple[str, int, str], CohortPlan] = {}
        self._compiles = 0
        self._hits = 0
        if metrics is not None:
            self.attach_metrics(metrics)

    def plan(self, source: str, instances) -> CohortPlan:
        """The cohort plan for one sweep shard (compiling on miss)."""
        version = self.registry.version
        key = (
            source,
            len(instances),
            instances[0].entity_id if instances else "",
        )
        plan = self._plans.get(key)
        if plan is not None and plan.version == version:
            self._hits += 1
            return plan
        cohorts: Dict[int, list] = {}
        scalar = []
        for position, instance in enumerate(instances):
            batch_key = instance.driver.batch_key(source)
            if batch_key is None:
                scalar.append(position)
            else:
                cohorts.setdefault(id(batch_key), []).append(position)
        plan = CohortPlan(
            tuple(tuple(positions) for positions in cohorts.values()),
            tuple(scalar),
            version,
        )
        self._plans[key] = plan
        self._compiles += 1
        return plan

    def clear(self) -> None:
        self._plans.clear()

    def _extra_stats(self) -> Dict[str, Any]:
        return {"plans": len(self._plans)}

    def __repr__(self) -> str:
        return f"<CohortPlanner plans={len(self._plans)} hits={self._hits}>"


# Sentinel marking an entity without the grouping attribute; the gather
# path turns it into the same BindingError the uncompiled path raises.
_MISSING = object()


def missing() -> object:
    """The sentinel :meth:`DeliveryPlanner.membership` stores for
    entities lacking the grouping attribute."""
    return _MISSING
