"""Execution tracing: what the orchestration actually did, when.

A :class:`Tracer` attaches to an :class:`~repro.runtime.app.Application`
and records a timeline of orchestration events — source readings entering
the application, context publications, controller activations, and
actions issued to devices.  Traces serve the examples ("show me the day"),
debugging, and assertions about *ordering* that per-component counters
cannot express.

The tracer hooks the application's bus topics and wraps device actuation;
it is observation-only (no behavioural change) and can be detached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.runtime.component import ContextEvent, SourceEvent


@dataclass(frozen=True)
class TraceEntry:
    """One recorded orchestration event."""

    timestamp: float
    kind: str          # 'source' | 'context' | 'action'
    subject: str       # device entity id or context name
    detail: str        # source/action name or empty
    value: Any = None

    def render(self) -> str:
        clock = _format_time(self.timestamp)
        if self.kind == "source":
            return (f"{clock}  source   {self.subject}.{self.detail} = "
                    f"{_short(self.value)}")
        if self.kind == "context":
            return (f"{clock}  context  {self.subject} published "
                    f"{_short(self.value)}")
        return (f"{clock}  action   {self.detail} on {self.subject}"
                + (f" {_short(self.value)}" if self.value else ""))


def _format_time(seconds: float) -> str:
    hours = int(seconds // 3600)
    minutes = int(seconds % 3600 // 60)
    secs = seconds % 60
    return f"{hours:03d}:{minutes:02d}:{secs:06.3f}"


def _short(value: Any, limit: int = 60) -> str:
    text = repr(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."


class Tracer:
    """Records a bounded timeline of an application's orchestration events.

    >>> tracer = Tracer(app).attach()
    >>> app.advance(600)
    >>> print(tracer.render())
    """

    def __init__(self, application, capacity: int = 10_000):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.application = application
        self.capacity = capacity
        self.entries: List[TraceEntry] = []
        self.dropped = 0
        self._patched_instances: List[Any] = []
        self._attached = False
        self._original_publish = None
        self._last_source_event = None

    # -- lifecycle -----------------------------------------------------------

    def attach(self) -> "Tracer":
        """Start recording.

        Intercepts the application's bus publication (recording *before*
        delivery, so entries appear in causal order: source → context →
        action) and wraps device actuation.
        """
        if self._attached:
            raise RuntimeError("tracer already attached")
        self._attached = True
        app = self.application
        self._original_publish = app.bus.publish
        self._last_source_event = None

        def traced_publish(topic, payload):
            self._on_bus_publish(topic, payload)
            return self._original_publish(topic, payload)

        app.bus.publish = traced_publish
        for instance in app.registry:
            self._patch_instance(instance)
        self._registry_remover = app.registry.add_listener(
            self._on_registry_change
        )
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        self.application.bus.publish = self._original_publish
        for instance, original in self._patched_instances:
            instance.act = original
        self._patched_instances.clear()
        self._registry_remover()
        self._attached = False

    def _on_bus_publish(self, topic, payload) -> None:
        if not isinstance(topic, tuple) or not topic:
            return
        if topic[0] == "source" and isinstance(payload, SourceEvent):
            # The same event is published once per ancestor device type;
            # record it only once.
            if payload is self._last_source_event:
                return
            self._last_source_event = payload
            self._on_source(payload)
        elif topic[0] == "context" and isinstance(payload, ContextEvent):
            self._on_context(payload)

    # -- hooks -----------------------------------------------------------------

    def _on_registry_change(self, kind, instance) -> None:
        if kind == "register" and self._attached:
            self._patch_instance(instance)

    def _patch_instance(self, instance) -> None:
        original = instance.act

        def traced_act(action, **params):
            self._record(
                TraceEntry(
                    timestamp=self.application.clock.now(),
                    kind="action",
                    subject=instance.entity_id,
                    detail=action,
                    value=params or None,
                )
            )
            return original(action, **params)

        instance.act = traced_act
        self._patched_instances.append((instance, original))

    def _on_source(self, event: SourceEvent) -> None:
        self._record(
            TraceEntry(
                timestamp=event.timestamp,
                kind="source",
                subject=event.device.entity_id,
                detail=event.source,
                value=event.value,
            )
        )

    def _on_context(self, event: ContextEvent) -> None:
        self._record(
            TraceEntry(
                timestamp=event.timestamp,
                kind="context",
                subject=event.context,
                detail="",
                value=event.value,
            )
        )

    def _record(self, entry: TraceEntry) -> None:
        if len(self.entries) >= self.capacity:
            self.dropped += 1
            return
        self.entries.append(entry)

    # -- queries ------------------------------------------------------------------

    def of_kind(self, kind: str) -> List[TraceEntry]:
        return [entry for entry in self.entries if entry.kind == kind]

    def between(self, start: float, end: float) -> List[TraceEntry]:
        return [
            entry
            for entry in self.entries
            if start <= entry.timestamp < end
        ]

    def find(
        self, kind: Optional[str] = None, subject: Optional[str] = None,
        predicate: Optional[Callable[[TraceEntry], bool]] = None,
    ) -> List[TraceEntry]:
        results = self.entries
        if kind is not None:
            results = [e for e in results if e.kind == kind]
        if subject is not None:
            results = [e for e in results if e.subject == subject]
        if predicate is not None:
            results = [e for e in results if predicate(e)]
        return list(results)

    def render(self, limit: Optional[int] = None) -> str:
        entries = self.entries if limit is None else self.entries[-limit:]
        lines = [entry.render() for entry in entries]
        if self.dropped:
            lines.append(f"... and {self.dropped} dropped entries")
        return "\n".join(lines)

    def clear(self) -> None:
        self.entries.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.entries)
