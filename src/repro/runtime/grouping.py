"""Partitioning and windowed accumulation for gathered sensor data.

Implements the two data-shaping constructs of Figure 8:

* ``grouped by <attribute>`` — "requires these statuses to be split into
  (or grouped by) parking lots": readings gathered in one periodic sweep
  are partitioned by a device attribute (:func:`group_readings`);
* ``every <24 hr>`` — the ``AverageOccupancy`` context gathers every
  10 minutes but publishes once per 24-hour window; the
  :class:`WindowAccumulator` buffers successive grouped deliveries and
  releases them when the window completes.

Accumulation semantics: without MapReduce the per-delivery reading lists
are concatenated per group (the handler sees every reading of the window);
with MapReduce each delivery contributes its *reduced* value, so the
handler sees one value per delivery per group.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Sequence, Tuple

from repro.errors import BindingError
from repro.runtime.device import DeviceInstance


def group_readings(
    readings: Sequence[Tuple[DeviceInstance, Any]], attribute: str
) -> Dict[Hashable, List[Any]]:
    """Partition ``(instance, value)`` readings by an instance attribute.

    Group keys appear in first-encounter order, which follows registration
    order — keeping periodic deliveries deterministic.
    """
    grouped: Dict[Hashable, List[Any]] = {}
    for instance, value in readings:
        try:
            key = instance.attributes[attribute]
        except KeyError:
            raise BindingError(
                f"entity '{instance.entity_id}' has no attribute "
                f"'{attribute}' to group by"
            ) from None
        grouped.setdefault(key, []).append(value)
    return grouped


class WindowAccumulator:
    """Buffers grouped deliveries until a window's worth has arrived.

    The window length is expressed in *deliveries*: a 24-hour window over
    a 10-minute period completes after 144 deliveries.  Delivery counting
    (rather than timestamp comparison) keeps behaviour exact under the
    simulation clock and robust to jitter under a wall clock.
    """

    def __init__(self, deliveries_per_window: int, flatten: bool):
        if deliveries_per_window < 1:
            raise ValueError("a window must span at least one delivery")
        self.deliveries_per_window = deliveries_per_window
        self.flatten = flatten
        self._buffer: Dict[Hashable, List[Any]] = {}
        self._count = 0

    @classmethod
    def for_design(
        cls, period_seconds: float, window_seconds: float, flatten: bool
    ) -> "WindowAccumulator":
        deliveries = max(1, round(window_seconds / period_seconds))
        return cls(deliveries, flatten)

    def add(self, grouped: Dict[Hashable, Any]):
        """Absorb one delivery; returns the accumulated window when it
        completes, else None."""
        for key, value in grouped.items():
            bucket = self._buffer.setdefault(key, [])
            if self.flatten and isinstance(value, (list, tuple)):
                bucket.extend(value)
            else:
                bucket.append(value)
        self._count += 1
        if self._count < self.deliveries_per_window:
            return None
        window, self._buffer = self._buffer, {}
        self._count = 0
        return window

    @property
    def pending_deliveries(self) -> int:
        return self._count
