"""Partitioning and windowed accumulation for gathered sensor data.

Implements the two data-shaping constructs of Figure 8:

* ``grouped by <attribute>`` — "requires these statuses to be split into
  (or grouped by) parking lots": readings gathered in one periodic sweep
  are partitioned by a device attribute (:func:`group_readings`);
* ``every <24 hr>`` — the ``AverageOccupancy`` context gathers every
  10 minutes but publishes once per 24-hour window; the
  :class:`WindowAccumulator` buffers successive grouped deliveries and
  releases them when the window completes.

Accumulation semantics: without MapReduce the per-delivery reading lists
are concatenated per group (the handler sees every reading of the window);
with MapReduce each delivery contributes its *reduced* value, so the
handler sees one value per delivery per group.

Buffered accumulation keeps O(readings-per-window) state — fine for a
house, linear-in-city-scale for the paper's parking study (thousands of
sensors x 144 sweeps per day).  The *incremental* mode
(:meth:`WindowAccumulator.incremental_for_job`) instead folds every
delivery through the job's ``combine`` (or ``reduce``) as it arrives,
keeping exactly one partial aggregate per group; the handler receives
``{group: folded_value}`` when the window closes.  Incremental mode
requires an associative fold — non-associative handlers (medians,
order-sensitive analyses) must stay buffered.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.errors import BindingError
from repro.mapreduce.api import FoldCollector, job_combiner
from repro.runtime.device import DeviceInstance
from repro.runtime.plan import missing
from repro.telemetry.instrument import Instrumented, MetricSpec

Fold = Callable[[Hashable, Any, Any], Any]
ColumnFold = Callable[[Hashable, List[Any]], Any]


def group_readings(
    readings: Sequence[Tuple[DeviceInstance, Any]], attribute: str
) -> Dict[Hashable, List[Any]]:
    """Partition ``(instance, value)`` readings by an instance attribute.

    Group keys appear in first-encounter order, which follows registration
    order — keeping periodic deliveries deterministic.
    """
    grouped: Dict[Hashable, List[Any]] = {}
    for instance, value in readings:
        try:
            key = instance.attributes[attribute]
        except KeyError:
            raise BindingError(
                f"entity '{instance.entity_id}' has no attribute "
                f"'{attribute}' to group by"
            ) from None
        grouped.setdefault(key, []).append(value)
    return grouped


def group_readings_planned(
    readings: Sequence[Tuple[DeviceInstance, Any]],
    membership: Dict[str, Any],
    attribute: str,
) -> Dict[Hashable, List[Any]]:
    """Partition readings through a precompiled membership table.

    ``membership`` is the :meth:`DeliveryPlanner.membership` mapping
    (entity id → attribute value, compiled once per registry version),
    so the per-reading cost is one dict probe instead of an attribute
    record lookup on every instance every sweep.  An entity whose
    membership slot holds the *missing* sentinel raises the same
    :class:`BindingError` as :func:`group_readings` — compiled and
    uncompiled grouping are behaviourally identical.
    """
    sentinel = missing()
    grouped: Dict[Hashable, List[Any]] = {}
    for instance, value in readings:
        key = membership.get(instance.entity_id, sentinel)
        if key is sentinel:
            raise BindingError(
                f"entity '{instance.entity_id}' has no attribute "
                f"'{attribute}' to group by"
            )
        grouped.setdefault(key, []).append(value)
    return grouped


def fold_for_job(job: Any) -> Fold:
    """Build an incremental fold from a MapReduce job.

    The fold runs the job's ``combine`` hook when it defines one, else
    its ``reduce`` phase, over the two-element list ``[accumulated,
    new_value]`` and takes the single pair it emits.  Associativity of
    the phase is what makes this equal to reducing the whole buffered
    window at once.
    """
    phase = job_combiner(job) or job.reduce

    def fold(key: Hashable, accumulated: Any, value: Any) -> Any:
        collector = FoldCollector()
        phase(key, [accumulated, value], collector)
        pairs = collector.pairs
        if len(pairs) != 1:
            raise ValueError(
                f"incremental fold for key {key!r} must emit exactly one "
                f"pair, got {len(pairs)}"
            )
        return pairs[0][1]

    return fold


def column_fold_for_job(job: Any) -> ColumnFold:
    """Build a *columnar* fold from a MapReduce job.

    Where :func:`fold_for_job` folds values pairwise — one phase call
    per arriving value — the columnar fold hands the phase a whole
    column (``[accumulated, v1, v2, ...]``) in one call.  For an
    associative phase (already required by incremental mode) the result
    is identical; the saving is one ``FoldCollector`` and one Python
    call per column instead of per value.
    """
    phase = job_combiner(job) or job.reduce

    def fold_column(key: Hashable, values: List[Any]) -> Any:
        if len(values) == 1:
            return values[0]
        collector = FoldCollector()
        phase(key, values, collector)
        pairs = collector.pairs
        if len(pairs) != 1:
            raise ValueError(
                f"columnar fold for key {key!r} must emit exactly one "
                f"pair, got {len(pairs)}"
            )
        return pairs[0][1]

    return fold_column


class WindowAccumulator(Instrumented):
    """Accumulates grouped deliveries until a window's worth has arrived.

    The window length is expressed in *deliveries*: a 24-hour window over
    a 10-minute period completes after 144 deliveries.  Delivery counting
    (rather than timestamp comparison) keeps behaviour exact under the
    simulation clock and robust to jitter under a wall clock.

    Two modes:

    * **buffered** (default, ``fold=None``) — concatenate (``flatten``)
      or append each delivery's per-group values; the completed window
      maps each group to the full value list.
    * **incremental** (``fold`` given) — fold each arriving value into
      one partial aggregate per group; the completed window maps each
      group to its folded value.  State is O(groups) regardless of the
      number of deliveries or readings.
    """

    metric_specs = (
        MetricSpec(
            "window_deliveries_total",
            "_deliveries",
            stats_key="deliveries",
            help="Periodic deliveries absorbed into windows.",
        ),
        MetricSpec(
            "window_closes_total",
            "_closed_windows",
            stats_key="closed_windows",
            help="Windows completed and released to the handler.",
        ),
        MetricSpec(
            "window_pending_deliveries",
            "_count",
            kind="gauge",
            stats_key="pending_deliveries",
            help="Deliveries absorbed into the currently open window.",
        ),
        MetricSpec(
            "window_buffered_values",
            "_buffered_values",
            kind="gauge",
            stats_key="buffered_values",
            help="Values currently held by the open window.",
        ),
        MetricSpec(
            "window_peak_buffered_values",
            "_peak_buffered_values",
            kind="gauge",
            stats_key="peak_buffered_values",
            help="High-water mark of values held at once.",
        ),
    )

    def __init__(
        self,
        deliveries_per_window: int,
        flatten: bool,
        fold: Optional[Fold] = None,
        fold_column: Optional[ColumnFold] = None,
    ):
        if deliveries_per_window < 1:
            raise ValueError("a window must span at least one delivery")
        if fold_column is not None and fold is None:
            raise ValueError(
                "fold_column requires an incremental accumulator (fold)"
            )
        self.deliveries_per_window = deliveries_per_window
        self.flatten = flatten
        self.fold = fold
        self.fold_column = fold_column
        self._buffer: Dict[Hashable, Any] = {}
        self._count = 0
        self._buffered_values = 0
        self._peak_buffered_values = 0
        self._deliveries = 0
        self._closed_windows = 0

    @classmethod
    def for_design(
        cls, period_seconds: float, window_seconds: float, flatten: bool
    ) -> "WindowAccumulator":
        deliveries = max(1, round(window_seconds / period_seconds))
        return cls(deliveries, flatten)

    @classmethod
    def incremental_for_job(
        cls,
        period_seconds: float,
        window_seconds: float,
        job: Any,
        flatten: bool = False,
        columnar: bool = False,
    ) -> "WindowAccumulator":
        """Incremental accumulator folding deliveries through ``job``.

        ``job`` is any MapReduce implementation (a context declaring
        ``with map ... reduce ...``); its ``combine`` hook is preferred,
        its ``reduce`` phase is the fallback.  With ``columnar=True``
        (the BatchConfig ``columnar_windows`` path), flattened columns
        fold through one phase call per delivery instead of one per
        value — identical results for the associative phases this mode
        already requires.
        """
        deliveries = max(1, round(window_seconds / period_seconds))
        return cls(
            deliveries,
            flatten,
            fold=fold_for_job(job),
            fold_column=column_fold_for_job(job) if columnar else None,
        )

    @property
    def incremental(self) -> bool:
        return self.fold is not None

    def add(self, grouped: Dict[Hashable, Any]):
        """Absorb one delivery; returns the accumulated window when it
        completes, else None."""
        if self.fold is not None:
            self._add_incremental(grouped)
        else:
            self._add_buffered(grouped)
        self._peak_buffered_values = max(
            self._peak_buffered_values, self._buffered_values
        )
        self._count += 1
        self._deliveries += 1
        if self._count < self.deliveries_per_window:
            return None
        window, self._buffer = self._buffer, {}
        self._count = 0
        self._buffered_values = 0
        self._closed_windows += 1
        return window

    def _add_buffered(self, grouped: Dict[Hashable, Any]) -> None:
        for key, value in grouped.items():
            bucket = self._buffer.setdefault(key, [])
            if self.flatten and isinstance(value, (list, tuple)):
                bucket.extend(value)
                self._buffered_values += len(value)
            else:
                bucket.append(value)
                self._buffered_values += 1

    def _add_incremental(self, grouped: Dict[Hashable, Any]) -> None:
        buffer = self._buffer
        fold = self.fold
        fold_column = self.fold_column
        for key, value in grouped.items():
            is_column = self.flatten and isinstance(value, (list, tuple))
            if fold_column is not None and is_column and value:
                if key in buffer:
                    buffer[key] = fold_column(key, [buffer[key], *value])
                else:
                    buffer[key] = fold_column(key, list(value))
                    self._buffered_values += 1
                continue
            values = value if is_column else (value,)
            for item in values:
                if key in buffer:
                    buffer[key] = fold(key, buffer[key], item)
                else:
                    buffer[key] = item
                    self._buffered_values += 1

    @property
    def pending_deliveries(self) -> int:
        return self._count

    @property
    def peak_buffered_values(self) -> int:
        """High-water mark of values held at once — O(readings) buffered,
        O(groups) incremental; the delivery benchmarks report it."""
        return self._peak_buffered_values

    def _extra_stats(self) -> Dict[str, Any]:
        return {
            "mode": "incremental" if self.incremental else "buffered",
            "columnar": self.fold_column is not None,
            "deliveries_per_window": self.deliveries_per_window,
        }
