"""Application components: contexts and controllers.

The generated frameworks of the paper employ inversion of control
(Section V): "implementing a design is devoted to implementing the
declared contexts and controllers of an application, which are then called
as required by the runtime system".  Implementations subclass
:class:`Context` or :class:`Controller` and provide callback methods named
after the design's interactions (the Python spellings of Figures 9-11):

========================================  =====================================
design interaction                        callback
========================================  =====================================
``when provided tickSecond from Clock``   ``on_tick_second_from_clock(event,
                                          discover)`` (or ``on_tick_second``)
``when periodic presence from
PresenceSensor <10 min>``                 ``on_periodic_presence(gathered,
                                          discover)``
``when provided ParkingAvailability``     ``on_parking_availability(value,
                                          discover)``
``when required``                         ``when_required(discover)``
``with map ... reduce ...``               ``map(key, value, collector)`` and
                                          ``reduce(key, values, collector)``
========================================  =====================================

A context callback's return value is its published value, governed by the
declared discipline: ``always publish`` requires a non-None result,
``maybe publish`` treats None as "do not publish" (Figure 7), and ``no
publish`` ignores the result entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.errors import RuntimeOrchestrationError
from repro.naming import (
    context_handler_name,
    event_handler_name,
    event_handler_short_name,
    periodic_handler_name,
    periodic_handler_short_name,
)
from repro.runtime.discovery import Discover
from repro.runtime.proxies import DeviceProxy


@dataclass(frozen=True)
class SourceEvent:
    """An event-driven reading pushed by a device.

    ``device`` gives access to the publisher's attributes and facets — the
    role of the ``tickSecondFromClock`` parameter in Figure 9.  ``index``
    carries the index value of indexed sources (the ``questionId`` of the
    Prompter's ``answer`` source in Figure 5).
    """

    device: DeviceProxy
    source: str
    value: Any
    index: Any = None
    timestamp: float = 0.0


@dataclass(frozen=True)
class GatherReading:
    """One reading collected during periodic gathering."""

    device: DeviceProxy
    value: Any


@dataclass(frozen=True)
class ContextEvent:
    """A value published by a context."""

    context: str
    value: Any
    timestamp: float = 0.0


class Publishable:
    """Typed wrapper for published context values (Figure 9's
    ``AlertValuePublishable``).

    Returning ``Publishable(value)`` from a context callback publishes
    ``value``; the generated frameworks alias this class per context so
    implementations read like the paper's Java.  Returning the raw value
    works too — the wrapper only adds declarative clarity.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __repr__(self) -> str:
        return f"Publishable({self.value!r})"


class Component:
    """Shared base: a named component bound into an application."""

    def __init__(self):
        self.name: Optional[str] = None
        self.discover: Optional[Discover] = None
        self.clock = None

    def bind(self, name: str, discover: Discover, clock=None) -> None:
        """Called by the application when the component is installed."""
        self.name = name
        self.discover = discover
        self.clock = clock

    def now(self) -> float:
        """Current application time (0.0 before the component is bound)."""
        return self.clock.now() if self.clock is not None else 0.0

    def on_start(self) -> None:
        """Hook invoked when the application starts."""

    def on_stop(self) -> None:
        """Hook invoked when the application stops."""


class Context(Component):
    """Base class for context implementations (the *compute* layer)."""

    def when_required(self, discover: Discover) -> Any:
        """Serve a query-driven pull.  Override in queryable contexts."""
        raise RuntimeOrchestrationError(
            f"context '{type(self).__name__}' declares 'when required' but "
            "does not implement when_required()"
        )

    # -- handler lookup, used by the application wiring ------------------------

    def find_event_handler(self, source: str, device: str):
        for name in (
            event_handler_name(source, device),
            event_handler_short_name(source),
        ):
            handler = getattr(self, name, None)
            if handler is not None:
                return handler
        return None

    def find_periodic_handler(self, source: str, device: str):
        for name in (
            periodic_handler_name(source, device),
            periodic_handler_short_name(source),
        ):
            handler = getattr(self, name, None)
            if handler is not None:
                return handler
        return None

    def find_context_handler(self, context: str):
        return getattr(self, context_handler_name(context), None)


class Controller(Component):
    """Base class for controller implementations (the *control* layer)."""

    def find_context_handler(self, context: str):
        return getattr(self, context_handler_name(context), None)


def required_callbacks(decl) -> List[str]:
    """The callback names a context/controller implementation must define
    for a given declaration — used for start-up validation and by the
    stub generator."""
    from repro.lang.ast_nodes import (
        ContextDecl,
        ControllerDecl,
        WhenPeriodic,
        WhenProvidedContext,
        WhenProvidedSource,
        WhenRequired,
    )

    names: List[str] = []
    if isinstance(decl, ContextDecl):
        for interaction in decl.interactions:
            if isinstance(interaction, WhenProvidedSource):
                names.append(
                    event_handler_name(interaction.source, interaction.device)
                )
            elif isinstance(interaction, WhenPeriodic):
                names.append(
                    periodic_handler_name(
                        interaction.source, interaction.device
                    )
                )
                if interaction.group and interaction.group.uses_mapreduce:
                    names.extend(["map", "reduce"])
            elif isinstance(interaction, WhenProvidedContext):
                names.append(context_handler_name(interaction.context))
            elif isinstance(interaction, WhenRequired):
                names.append("when_required")
    elif isinstance(decl, ControllerDecl):
        for reaction in decl.reactions:
            names.append(context_handler_name(reaction.context))
    return names
