"""Binding times for entity binding.

"Depending on the area and orchestration scale, entity binding can occur
at configuration time, deployment time, launch time, or runtime"
(Section IV).  :class:`Deployment` models that spectrum: entities are
*staged* with a :class:`BindingTime`, and each phase of the deployment
life-cycle binds its stage into the application's registry.

* ``CONFIGURATION`` — bound as soon as staged (the design-time inventory);
* ``DEPLOYMENT`` — bound by :meth:`Deployment.deploy` (field installation);
* ``LAUNCH`` — bound by :meth:`Deployment.launch`, immediately before the
  application starts;
* ``RUNTIME`` — staged entities join a *running* application via
  :meth:`Deployment.bind_runtime` (or by registering directly), the usual
  mode in pervasive computing (Section IV.1).
"""

from __future__ import annotations

import enum
from typing import Dict, List

from repro.errors import BindingError
from repro.runtime.device import DeviceInstance


class BindingTime(enum.Enum):
    CONFIGURATION = "configuration"
    DEPLOYMENT = "deployment"
    LAUNCH = "launch"
    RUNTIME = "runtime"


class Deployment:
    """Staged entity binding across the deployment life-cycle."""

    def __init__(self, application):
        self.application = application
        self._staged: Dict[BindingTime, List[DeviceInstance]] = {
            time: [] for time in BindingTime
        }
        self._phase = BindingTime.CONFIGURATION

    def stage(
        self,
        instance: DeviceInstance,
        when: BindingTime = BindingTime.DEPLOYMENT,
    ) -> DeviceInstance:
        """Declare that ``instance`` becomes available at phase ``when``.

        Configuration-time entities bind immediately.
        """
        if when is BindingTime.CONFIGURATION:
            self.application.bind_device(instance)
        else:
            self._staged[when].append(instance)
        return instance

    def deploy(self) -> int:
        """Bind every deployment-time entity; returns how many."""
        bound = self._bind_stage(BindingTime.DEPLOYMENT)
        self._phase = BindingTime.DEPLOYMENT
        return bound

    def launch(self) -> int:
        """Bind launch-time entities, then start the application."""
        if self._staged[BindingTime.DEPLOYMENT]:
            raise BindingError(
                "deployment-time entities are still staged; call deploy() "
                "before launch()"
            )
        bound = self._bind_stage(BindingTime.LAUNCH)
        self._phase = BindingTime.LAUNCH
        self.application.start()
        self._phase = BindingTime.RUNTIME
        return bound

    def bind_runtime(self) -> int:
        """Bind runtime-staged entities into the running application."""
        if not self.application.started:
            raise BindingError(
                "runtime binding requires a started application"
            )
        return self._bind_stage(BindingTime.RUNTIME)

    def _bind_stage(self, when: BindingTime) -> int:
        staged = self._staged[when]
        for instance in staged:
            self.application.bind_device(instance)
        count = len(staged)
        staged.clear()
        return count

    @property
    def phase(self) -> BindingTime:
        return self._phase

    def staged_count(self, when: BindingTime) -> int:
        return len(self._staged[when])
