"""Device-failure injection.

The paper's conclusion names device failure as a non-functional dimension
a design language should eventually cover; its earlier work [14]
architected error handling at the design level.  :class:`FaultInjector`
provides the experimental substrate: devices fail and recover following
exponential MTBF/MTTR processes, while the runtime masks failed devices
from discovery and periodic gathering.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.runtime.clock import Clock
from repro.runtime.registry import EntityRegistry


class FaultInjector:
    """Schedules stochastic fail/recover cycles for registered devices."""

    def __init__(
        self,
        registry: EntityRegistry,
        clock: Clock,
        mtbf_seconds: float,
        mttr_seconds: float,
        device_type: Optional[str] = None,
        seed: int = 0,
    ):
        if mtbf_seconds <= 0 or mttr_seconds <= 0:
            raise ValueError("MTBF and MTTR must be > 0")
        self.registry = registry
        self.clock = clock
        self.mtbf_seconds = mtbf_seconds
        self.mttr_seconds = mttr_seconds
        self.device_type = device_type
        self._rng = random.Random(seed)
        self._jobs: List = []
        self.failures = 0
        self.recoveries = 0
        self._downtime_started: Dict[str, float] = {}
        self.total_downtime = 0.0
        self._running = False

    def start(self) -> "FaultInjector":
        """Arm a failure timer for every eligible device."""
        if self._running:
            raise RuntimeError("fault injector already started")
        self._running = True
        for instance in list(self.registry):
            if self._eligible(instance):
                self._arm_failure(instance)
        return self

    def stop(self) -> None:
        self._running = False
        for job in self._jobs:
            job.cancel()
        self._jobs.clear()

    def _eligible(self, instance) -> bool:
        if self.device_type is None:
            return True
        return instance.info.is_subtype_of(self.device_type)

    def _arm_failure(self, instance) -> None:
        delay = self._rng.expovariate(1.0 / self.mtbf_seconds)
        self._jobs.append(
            self.clock.schedule(delay, lambda: self._fail(instance))
        )

    def _fail(self, instance) -> None:
        if not self._running or instance.failed:
            return
        instance.fail()
        self.failures += 1
        self._downtime_started[instance.entity_id] = self.clock.now()
        delay = self._rng.expovariate(1.0 / self.mttr_seconds)
        self._jobs.append(
            self.clock.schedule(delay, lambda: self._recover(instance))
        )

    def _recover(self, instance) -> None:
        if not self._running or not instance.failed:
            return
        instance.recover()
        self.recoveries += 1
        started = self._downtime_started.pop(instance.entity_id, None)
        if started is not None:
            self.total_downtime += self.clock.now() - started
        self._arm_failure(instance)

    @property
    def stats(self) -> Dict[str, float]:
        return {
            "failures": self.failures,
            "recoveries": self.recoveries,
            "total_downtime": self.total_downtime,
            "currently_failed": len(self._downtime_started),
        }
