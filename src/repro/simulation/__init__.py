"""Simulated infrastructures standing in for physical deployments.

The paper's applications run on real homes, parking lots, and aircraft;
this package provides their synthetic equivalents (per the reproduction's
substitution rule): stochastic environments advanced by the simulation
clock, device drivers that sense/actuate those environments, workload
trace generators, a network-conditions model (latency / jitter / loss),
and failure injection for the dependability dimension the paper sketches
in its conclusion.
"""

from repro.simulation.environment import (
    Environment,
    FlightEnvironment,
    HomeEnvironment,
    ParkingLotEnvironment,
)
from repro.simulation.faults import FaultInjector
from repro.simulation.network import NetworkConditions
from repro.simulation.sensors import (
    ClockDeviceDriver,
    EnvironmentDriver,
    ThresholdPushDriver,
)
from repro.simulation.traces import (
    bernoulli_field,
    daily_demand,
    occupancy_trace,
    poisson_arrivals,
)

__all__ = [
    "ClockDeviceDriver",
    "Environment",
    "EnvironmentDriver",
    "FaultInjector",
    "FlightEnvironment",
    "HomeEnvironment",
    "NetworkConditions",
    "ParkingLotEnvironment",
    "ThresholdPushDriver",
    "bernoulli_field",
    "daily_demand",
    "occupancy_trace",
    "poisson_arrivals",
]
