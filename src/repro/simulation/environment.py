"""Simulated physical environments.

Each environment owns a piece of simulated world state and a ``step()``
method the simulation clock calls periodically.  Device drivers
(:mod:`repro.simulation.sensors`) read from and actuate on environments,
closing the Sense-Compute-Control loop entirely in simulation.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence

from repro.runtime.clock import Clock
from repro.simulation.traces import daily_demand


class Environment:
    """Base class: periodic world-state evolution driven by a clock."""

    def __init__(self, step_seconds: float = 60.0):
        if step_seconds <= 0:
            raise ValueError("step_seconds must be > 0")
        self.step_seconds = step_seconds
        self._job = None
        self._clock: Optional[Clock] = None
        self.steps = 0

    def attach(self, clock: Clock) -> "Environment":
        """Start evolving on ``clock``; idempotent per clock."""
        if self._job is not None:
            raise RuntimeError("environment already attached to a clock")
        self._clock = clock
        self._job = clock.schedule_periodic(self.step_seconds, self._tick)
        return self

    def detach(self) -> None:
        if self._job is not None:
            self._job.cancel()
            self._job = None
            self._clock = None

    def _tick(self) -> None:
        self.steps += 1
        self.step(self.now)

    @property
    def now(self) -> float:
        return self._clock.now() if self._clock is not None else 0.0

    def step(self, now: float) -> None:
        """Advance world state to time ``now``; override in subclasses."""


class ParkingLotEnvironment(Environment):
    """A city's parking infrastructure: lots of spaces filling and emptying.

    Occupancy follows the daily demand curve with exponential stays, as in
    :func:`repro.simulation.traces.occupancy_trace`, but kept live so
    sensors can be polled at any moment.  Lots can be given different
    pressure factors (downtown vs. peripheral).
    """

    def __init__(
        self,
        lots: Dict[str, int],
        step_seconds: float = 60.0,
        mean_stay_seconds: float = 3600.0,
        pressure: Optional[Dict[str, float]] = None,
        seed: int = 0,
    ):
        super().__init__(step_seconds)
        if not lots:
            raise ValueError("at least one parking lot is required")
        self.lots = dict(lots)
        self.mean_stay_seconds = mean_stay_seconds
        self.pressure = {lot: 1.0 for lot in lots}
        if pressure:
            self.pressure.update(pressure)
        self._rng = random.Random(seed)
        self._occupied: Dict[str, List[bool]] = {
            lot: [False] * capacity for lot, capacity in self.lots.items()
        }

    def step(self, now: float) -> None:
        departure_probability = 1 - math.exp(
            -self.step_seconds / self.mean_stay_seconds
        )
        for lot, spaces in self._occupied.items():
            for index, taken in enumerate(spaces):
                if taken and self._rng.random() < departure_probability:
                    spaces[index] = False
            target = min(1.0, daily_demand(now) * self.pressure[lot])
            desired = int(target * len(spaces))
            free = [i for i, taken in enumerate(spaces) if not taken]
            arrivals = max(0, desired - (len(spaces) - len(free)))
            for index in self._rng.sample(free, min(arrivals, len(free))):
                spaces[index] = True

    # -- sensing / acting -----------------------------------------------------

    def is_occupied(self, lot: str, space: int) -> bool:
        return self._occupied[lot][space]

    def occupancy(self, lot: str) -> float:
        spaces = self._occupied[lot]
        return sum(spaces) / len(spaces)

    def free_count(self, lot: str) -> int:
        spaces = self._occupied[lot]
        return len(spaces) - sum(spaces)

    def force(self, lot: str, space: int, occupied: bool) -> None:
        """Pin a space's state (used by tests for determinism)."""
        self._occupied[lot][space] = occupied


class HomeEnvironment(Environment):
    """A senior's home: cooker use, room presence, door state.

    The daily routine is a schedule of (start_hour, end_hour, room,
    cooking) entries; the cooker drains ``cooker_power`` watts while
    cooking (and can be forced on/off by actuators, which is how the
    cooker-monitoring scenario injects the 'left on' hazard).
    """

    DEFAULT_ROUTINE = (
        (7.0, 8.0, "kitchen", True),
        (8.0, 12.0, "living_room", False),
        (12.0, 13.0, "kitchen", True),
        (13.0, 19.0, "living_room", False),
        (19.0, 20.0, "kitchen", True),
        (20.0, 23.0, "bedroom", False),
        (23.0, 24.0, "bedroom", False),
    )

    def __init__(
        self,
        routine: Sequence = DEFAULT_ROUTINE,
        cooker_power: float = 1500.0,
        step_seconds: float = 60.0,
        seed: int = 0,
    ):
        super().__init__(step_seconds)
        self.routine = tuple(routine)
        self.cooker_power = cooker_power
        self._rng = random.Random(seed)
        self.cooker_on = False
        self.cooker_override: Optional[bool] = None
        self.room_override: Optional[str] = None
        self.current_room = "bedroom"

    def step(self, now: float) -> None:
        hour = (now % 86400.0) / 3600.0
        room = "bedroom"
        cooking = False
        for start, end, where, cooks in self.routine:
            if start <= hour < end:
                room, cooking = where, cooks
                break
        self.current_room = self.room_override or room
        if self.cooker_override is None:
            self.cooker_on = cooking
        else:
            self.cooker_on = self.cooker_override

    # -- sensing / acting -----------------------------------------------------

    def consumption(self) -> float:
        return self.cooker_power if self.cooker_on else 0.0

    def presence(self, room: str) -> bool:
        return self.current_room == room

    def set_cooker(self, on: bool) -> None:
        """Actuate the cooker; holds until released."""
        self.cooker_override = on
        self.cooker_on = on

    def release_cooker(self) -> None:
        """Return the cooker to routine control."""
        self.cooker_override = None

    def force_room(self, room: Optional[str]) -> None:
        """Pin the resident's location (None releases to routine).

        Takes effect from the next environment step; used to script
        scenarios such as night wandering.
        """
        self.room_override = room
        if room is not None:
            self.current_room = room


class FlightEnvironment(Environment):
    """Point-mass longitudinal flight dynamics for the avionics case study.

    State: altitude (m), vertical speed (m/s), airspeed (m/s), heading
    (deg).  Actuator inputs: ``elevator`` in [-1, 1] commands vertical
    acceleration, ``throttle`` in [0, 1] commands airspeed toward
    ``max_airspeed``, ``aileron`` in [-1, 1] commands turn rate.  The
    physics is deliberately simple — enough to make a closed-loop
    autopilot's behaviour observable.
    """

    def __init__(
        self,
        altitude: float = 1000.0,
        airspeed: float = 120.0,
        heading: float = 0.0,
        max_airspeed: float = 250.0,
        step_seconds: float = 1.0,
        turbulence: float = 0.0,
        seed: int = 0,
    ):
        super().__init__(step_seconds)
        self.altitude = altitude
        self.vertical_speed = 0.0
        self.airspeed = airspeed
        self.heading = heading
        self.max_airspeed = max_airspeed
        self.turbulence = turbulence
        self._rng = random.Random(seed)
        # actuator state
        self.elevator = 0.0
        self.throttle = 0.5
        self.aileron = 0.0

    MAX_VERTICAL_ACCEL = 3.0    # m/s^2 at full elevator
    MAX_TURN_RATE = 3.0         # deg/s at full aileron
    AIRSPEED_TAU = 20.0         # s, first-order throttle response

    def step(self, now: float) -> None:
        dt = self.step_seconds
        gust = (
            self._rng.uniform(-self.turbulence, self.turbulence)
            if self.turbulence
            else 0.0
        )
        self.vertical_speed += (
            self.elevator * self.MAX_VERTICAL_ACCEL + gust
        ) * dt
        # aerodynamic damping keeps the model stable
        self.vertical_speed *= max(0.0, 1.0 - 0.05 * dt)
        self.altitude = max(0.0, self.altitude + self.vertical_speed * dt)
        target_speed = self.throttle * self.max_airspeed
        self.airspeed += (target_speed - self.airspeed) * min(
            1.0, dt / self.AIRSPEED_TAU
        )
        self.heading = (
            self.heading + self.aileron * self.MAX_TURN_RATE * dt
        ) % 360.0

    # -- acting -----------------------------------------------------------------

    def set_elevator(self, value: float) -> None:
        self.elevator = max(-1.0, min(1.0, value))

    def set_throttle(self, value: float) -> None:
        self.throttle = max(0.0, min(1.0, value))

    def set_aileron(self, value: float) -> None:
        self.aileron = max(-1.0, min(1.0, value))
