"""Synthetic workload generation.

Reproducible stochastic inputs for the benchmarks and environments: a
city-like daily demand curve, Poisson arrival streams, per-space occupancy
traces, and boolean sensor fields.  Every generator takes an explicit seed
so paper-style experiments re-run bit-identically.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Sequence

SECONDS_PER_DAY = 86400.0


def daily_demand(time_seconds: float, base: float = 0.2, peak: float = 0.9,
                 morning_peak_hour: float = 9.0,
                 evening_peak_hour: float = 18.0,
                 width_hours: float = 2.5) -> float:
    """Normalized parking demand in [0, 1] at a time of day.

    Two Gaussian rush-hour bumps over a base load — the classic shape of
    urban parking occupancy studies.
    """
    hour = (time_seconds % SECONDS_PER_DAY) / 3600.0
    demand = base
    for peak_hour in (morning_peak_hour, evening_peak_hour):
        demand += (peak - base) * math.exp(
            -((hour - peak_hour) ** 2) / (2 * width_hours**2)
        )
    return min(1.0, demand)


def poisson_arrivals(
    rate_per_second: float, duration_seconds: float, seed: int = 0
) -> List[float]:
    """Arrival timestamps of a homogeneous Poisson process."""
    if rate_per_second < 0:
        raise ValueError("rate must be >= 0")
    rng = random.Random(seed)
    arrivals: List[float] = []
    t = 0.0
    if rate_per_second == 0:
        return arrivals
    while True:
        t += rng.expovariate(rate_per_second)
        if t >= duration_seconds:
            return arrivals
        arrivals.append(t)


def occupancy_trace(
    spaces: int,
    duration_seconds: float,
    step_seconds: float = 600.0,
    mean_stay_seconds: float = 3600.0,
    seed: int = 0,
) -> List[List[bool]]:
    """Per-step occupancy snapshots of a parking lot.

    Demand follows :func:`daily_demand`; cars stay an exponential time.
    Returns one boolean list (length ``spaces``) per step.
    """
    rng = random.Random(seed)
    occupied = [False] * spaces
    snapshots: List[List[bool]] = []
    steps = int(duration_seconds / step_seconds)
    for step in range(steps):
        now = step * step_seconds
        target = daily_demand(now)
        departure_probability = 1 - math.exp(-step_seconds / mean_stay_seconds)
        for index in range(spaces):
            if occupied[index] and rng.random() < departure_probability:
                occupied[index] = False
        free = [i for i, taken in enumerate(occupied) if not taken]
        desired = int(target * spaces)
        current = spaces - len(free)
        arrivals = max(0, desired - current)
        for index in rng.sample(free, min(arrivals, len(free))):
            occupied[index] = True
        snapshots.append(list(occupied))
    return snapshots


def bernoulli_field(
    count: int, probability: float, seed: int = 0
) -> List[bool]:
    """``count`` independent boolean readings, True with ``probability``."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be within [0, 1]")
    rng = random.Random(seed)
    return [rng.random() < probability for __ in range(count)]


def grouped_bernoulli(
    groups: Sequence[str], per_group: int, probability: float, seed: int = 0
) -> Dict[str, List[bool]]:
    """A grouped boolean dataset, e.g. presence readings by parking lot."""
    rng = random.Random(seed)
    return {
        group: [rng.random() < probability for __ in range(per_group)]
        for group in groups
    }
