"""Simulated device drivers.

Bridges between environments and the runtime's device model.  All drivers
honour the three delivery modes: readers serve query-driven and periodic
delivery, and the push-based drivers emit event-driven readings.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple
from zlib import crc32

from repro.errors import DeliveryError
from repro.runtime.clock import Clock
from repro.runtime.device import DeviceDriver


class EnvironmentDriver(DeviceDriver):
    """A driver whose sources and actions are closures over an environment.

    >>> driver = EnvironmentDriver(
    ...     sources={"presence": lambda: env.is_occupied("A22", 3)},
    ...     actions={"update": panel_update},
    ... )
    """

    def __init__(
        self,
        sources: Optional[Dict[str, Callable[[], Any]]] = None,
        actions: Optional[Dict[str, Callable[..., Any]]] = None,
    ):
        self._sources = dict(sources or {})
        self._actions = dict(actions or {})

    def read(self, source: str) -> Any:
        try:
            reader = self._sources[source]
        except KeyError:
            raise DeliveryError(
                f"simulated device has no source '{source}'"
            ) from None
        return reader()

    def invoke(self, action: str, **params: Any) -> Any:
        try:
            handler = self._actions[action]
        except KeyError:
            raise DeliveryError(
                f"simulated device has no action '{action}'"
            ) from None
        return handler(**params)


class ClockDeviceDriver(DeviceDriver):
    """The Clock *device* of Figure 5, driven by the simulation clock.

    Once started, pushes ``tickSecond`` / ``tickMinute`` / ``tickHour``
    events (whichever the device declaration includes) and serves them as
    query-driven readings too.
    """

    def __init__(self, tick_seconds: float = 1.0):
        self.tick_seconds = tick_seconds
        self._ticks = 0
        self._jobs = []

    def start(self, clock: Clock) -> "ClockDeviceDriver":
        """Begin pushing tick events on ``clock``."""
        if self.instance is None:
            raise DeliveryError(
                "bind the driver to a device instance before starting it"
            )
        declared = set(self.instance.info.sources)
        if "tickSecond" in declared:
            self._jobs.append(
                clock.schedule_periodic(self.tick_seconds, self._second)
            )
        if "tickMinute" in declared:
            self._jobs.append(clock.schedule_periodic(60.0, self._minute))
        if "tickHour" in declared:
            self._jobs.append(clock.schedule_periodic(3600.0, self._hour))
        self._clock = clock
        return self

    def stop(self) -> None:
        for job in self._jobs:
            job.cancel()
        self._jobs.clear()

    def _second(self) -> None:
        self._ticks += 1
        self.push("tickSecond", self._ticks)

    def _minute(self) -> None:
        self.push("tickMinute", int(self._clock.now() // 60))

    def _hour(self) -> None:
        self.push("tickHour", int(self._clock.now() // 3600))

    def read_tick_second(self) -> int:
        return self._ticks

    def read_tick_minute(self) -> int:
        return self._ticks // 60

    def read_tick_hour(self) -> int:
        return self._ticks // 3600


class FleetSubstrate:
    """Shared stochastic substrate behind a whole fleet of sensors.

    One substrate stands in for the physical environment a fleet of
    simulated sensors observes.  Values are a *pure function* of
    ``(seed, source, entity_id, clock.now())`` — a crc32 hash mapped
    through the source's model callable — so a scalar read and the same
    entity's slot in a batch column are guaranteed identical, whichever
    path served it.  That determinism is what lets the equivalence
    tests pin ``batch on == batch off`` byte-for-byte.

    ``models`` maps source name → callable taking a float in ``[0, 1)``
    (the hashed uniform draw) and returning the reading; sources
    without a model return the raw draw.

    The per-tick column memo keeps a vectorized sweep cheap: the first
    read of a (source, tick) hashes every requested entity once, and
    both later scalar reads and repeated batch reads in the same tick
    are dict lookups.
    """

    def __init__(
        self,
        clock: Clock,
        seed: int = 0,
        models: Optional[Dict[str, Callable[[float], Any]]] = None,
    ):
        self.clock = clock
        self.seed = seed
        self.models = dict(models or {})
        self.scalar_reads = 0
        self.batch_reads = 0
        self.batch_values = 0
        # (source, tick) -> {entity_id: value}; only the current tick's
        # columns are kept, so memory stays O(fleet), not O(history).
        self._columns: Dict[Tuple[str, float], Dict[str, Any]] = {}

    def _draw(self, source: str, entity_id: str, now: float) -> float:
        token = f"{self.seed}:{source}:{entity_id}:{now!r}".encode()
        return crc32(token) / 4294967296.0

    def _compute(self, source: str, entity_id: str, now: float) -> Any:
        draw = self._draw(source, entity_id, now)
        model = self.models.get(source)
        return draw if model is None else model(draw)

    def _column(self, source: str) -> Dict[str, Any]:
        now = self.clock.now()
        key = (source, now)
        column = self._columns.get(key)
        if column is None:
            # New tick: drop stale columns before starting this one.
            self._columns = {key: {}}
            column = self._columns[key]
        return column

    def value(self, source: str, entity_id: str) -> Any:
        """Scalar read — identical to the entity's batch-column slot."""
        self.scalar_reads += 1
        column = self._column(source)
        try:
            return column[entity_id]
        except KeyError:
            value = self._compute(source, entity_id, self.clock.now())
            column[entity_id] = value
            return value

    def read_column(
        self, source: str, entity_ids: Sequence[str]
    ) -> List[Any]:
        """One column of values aligned with ``entity_ids``.

        The hot loop hashes straight into the tick memo — amortizing
        the clock lookup, model resolution, and memo probe across the
        whole cohort is where the vectorization win comes from.
        """
        self.batch_reads += 1
        self.batch_values += len(entity_ids)
        now = self.clock.now()
        column = self._column(source)
        model = self.models.get(source)
        prefix = f"{self.seed}:{source}:"
        suffix = f":{now!r}"
        out = []
        append = out.append
        get = column.get
        for entity_id in entity_ids:
            value = get(entity_id, _UNSET)
            if value is _UNSET:
                draw = (
                    crc32(f"{prefix}{entity_id}{suffix}".encode())
                    / 4294967296.0
                )
                value = draw if model is None else model(draw)
                column[entity_id] = value
            append(value)
        return out

    def driver(self, *sources: str) -> "SubstrateDriver":
        """A per-instance driver bound to this substrate."""
        return SubstrateDriver(self, sources=sources or None)


_UNSET = object()


class GatewaySubstrate(FleetSubstrate):
    """A :class:`FleetSubstrate` with a modeled per-read service time.

    Stands in for a field gateway whose radio budget costs
    ``service_time`` seconds of wall time per device read (scalar or
    batched — batching amortizes round-trips, not radio time).  The
    sleep happens in whichever process issues the read, so a sharded
    runtime overlaps the modeled service time across worker processes
    exactly as real gateways serve their shards concurrently — the same
    latency-modeling convention ``bench_sweep_concurrency`` uses for
    threads.  Values remain the byte-identical pure function of
    ``(seed, source, entity_id, now)`` from the base class.
    """

    def __init__(
        self,
        clock: Clock,
        seed: int = 0,
        models: Optional[Dict[str, Callable[[float], Any]]] = None,
        service_time: float = 0.0,
    ):
        super().__init__(clock, seed=seed, models=models)
        self.service_time = service_time

    def value(self, source: str, entity_id: str) -> Any:
        if self.service_time > 0.0:
            import time

            time.sleep(self.service_time)
        return super().value(source, entity_id)

    def read_column(
        self, source: str, entity_ids: Sequence[str]
    ) -> List[Any]:
        if self.service_time > 0.0 and entity_ids:
            import time

            time.sleep(self.service_time * len(entity_ids))
        return super().read_column(source, entity_ids)


class SubstrateDriver(DeviceDriver):
    """Per-instance driver over a shared :class:`FleetSubstrate`.

    Many instances each get their own driver (the runtime sets
    ``driver.instance`` at bind time), but all of them answer reads
    from the same substrate — which is exactly the shape
    :meth:`batch_key` expresses: every driver sharing a substrate
    returns *that substrate* as its cohort identity, so the sweep
    engine coalesces their reads into one :meth:`read_batch` column.
    """

    def __init__(
        self,
        substrate: FleetSubstrate,
        sources: Optional[Sequence[str]] = None,
    ):
        self.substrate = substrate
        self._sources = frozenset(sources) if sources is not None else None

    def _check_source(self, source: str) -> None:
        if self._sources is not None and source not in self._sources:
            raise DeliveryError(
                f"substrate driver has no source '{source}'"
            )

    def read(self, source: str) -> Any:
        self._check_source(source)
        if self.instance is None:
            raise DeliveryError(
                "bind the driver to a device instance before reading"
            )
        return self.substrate.value(source, self.instance.entity_id)

    def read_batch(self, entity_ids, source: str):
        self._check_source(source)
        return self.substrate.read_column(source, entity_ids)

    def batch_key(self, source: str):
        if self._sources is not None and source not in self._sources:
            return None
        return self.substrate


class ThresholdPushDriver(EnvironmentDriver):
    """Polls a reading and pushes an event when it crosses a threshold.

    Models event-driven sensors (door opened, tank above level): the
    driver samples ``probe`` every ``sample_seconds`` and pushes on each
    rising edge of ``predicate``.
    """

    def __init__(
        self,
        source: str,
        probe: Callable[[], Any],
        predicate: Callable[[Any], bool],
        sample_seconds: float = 1.0,
        **kwargs,
    ):
        super().__init__(sources={source: probe}, **kwargs)
        self.source = source
        self.probe = probe
        self.predicate = predicate
        self.sample_seconds = sample_seconds
        self._armed = True
        self._job = None

    def start(self, clock: Clock) -> "ThresholdPushDriver":
        if self._job is not None:
            raise DeliveryError("driver already started")
        self._job = clock.schedule_periodic(self.sample_seconds, self._sample)
        return self

    def stop(self) -> None:
        if self._job is not None:
            self._job.cancel()
            self._job = None

    def _sample(self) -> None:
        value = self.probe()
        if self.predicate(value):
            if self._armed:
                self._armed = False
                self.push(self.source, value)
        else:
            self._armed = True
