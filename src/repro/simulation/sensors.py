"""Simulated device drivers.

Bridges between environments and the runtime's device model.  All drivers
honour the three delivery modes: readers serve query-driven and periodic
delivery, and the push-based drivers emit event-driven readings.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.errors import DeliveryError
from repro.runtime.clock import Clock
from repro.runtime.device import DeviceDriver


class EnvironmentDriver(DeviceDriver):
    """A driver whose sources and actions are closures over an environment.

    >>> driver = EnvironmentDriver(
    ...     sources={"presence": lambda: env.is_occupied("A22", 3)},
    ...     actions={"update": panel_update},
    ... )
    """

    def __init__(
        self,
        sources: Optional[Dict[str, Callable[[], Any]]] = None,
        actions: Optional[Dict[str, Callable[..., Any]]] = None,
    ):
        self._sources = dict(sources or {})
        self._actions = dict(actions or {})

    def read(self, source: str) -> Any:
        try:
            reader = self._sources[source]
        except KeyError:
            raise DeliveryError(
                f"simulated device has no source '{source}'"
            ) from None
        return reader()

    def invoke(self, action: str, **params: Any) -> Any:
        try:
            handler = self._actions[action]
        except KeyError:
            raise DeliveryError(
                f"simulated device has no action '{action}'"
            ) from None
        return handler(**params)


class ClockDeviceDriver(DeviceDriver):
    """The Clock *device* of Figure 5, driven by the simulation clock.

    Once started, pushes ``tickSecond`` / ``tickMinute`` / ``tickHour``
    events (whichever the device declaration includes) and serves them as
    query-driven readings too.
    """

    def __init__(self, tick_seconds: float = 1.0):
        self.tick_seconds = tick_seconds
        self._ticks = 0
        self._jobs = []

    def start(self, clock: Clock) -> "ClockDeviceDriver":
        """Begin pushing tick events on ``clock``."""
        if self.instance is None:
            raise DeliveryError(
                "bind the driver to a device instance before starting it"
            )
        declared = set(self.instance.info.sources)
        if "tickSecond" in declared:
            self._jobs.append(
                clock.schedule_periodic(self.tick_seconds, self._second)
            )
        if "tickMinute" in declared:
            self._jobs.append(clock.schedule_periodic(60.0, self._minute))
        if "tickHour" in declared:
            self._jobs.append(clock.schedule_periodic(3600.0, self._hour))
        self._clock = clock
        return self

    def stop(self) -> None:
        for job in self._jobs:
            job.cancel()
        self._jobs.clear()

    def _second(self) -> None:
        self._ticks += 1
        self.push("tickSecond", self._ticks)

    def _minute(self) -> None:
        self.push("tickMinute", int(self._clock.now() // 60))

    def _hour(self) -> None:
        self.push("tickHour", int(self._clock.now() // 3600))

    def read_tick_second(self) -> int:
        return self._ticks

    def read_tick_minute(self) -> int:
        return self._ticks // 60

    def read_tick_hour(self) -> int:
        return self._ticks // 3600


class ThresholdPushDriver(EnvironmentDriver):
    """Polls a reading and pushes an event when it crosses a threshold.

    Models event-driven sensors (door opened, tank above level): the
    driver samples ``probe`` every ``sample_seconds`` and pushes on each
    rising edge of ``predicate``.
    """

    def __init__(
        self,
        source: str,
        probe: Callable[[], Any],
        predicate: Callable[[Any], bool],
        sample_seconds: float = 1.0,
        **kwargs,
    ):
        super().__init__(sources={source: probe}, **kwargs)
        self.source = source
        self.probe = probe
        self.predicate = predicate
        self.sample_seconds = sample_seconds
        self._armed = True
        self._job = None

    def start(self, clock: Clock) -> "ThresholdPushDriver":
        if self._job is not None:
            raise DeliveryError("driver already started")
        self._job = clock.schedule_periodic(self.sample_seconds, self._sample)
        return self

    def stop(self) -> None:
        if self._job is not None:
            self._job.cancel()
            self._job = None

    def _sample(self) -> None:
        value = self.probe()
        if self.predicate(value):
            if self._armed:
                self._armed = False
                self.push(self.source, value)
        else:
            self._armed = True
