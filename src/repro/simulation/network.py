"""Network models for simulated delivery: single hop and multi-hop.

Wide-area IoT networks (Sigfox, LoRa — Section I) deliver sensor
messages with latency, jitter and loss.  Two models inject those effects
between a device's event push and the application's bus:

* :class:`NetworkConditions` — the original single-hop model: every
  message pays ``latency ± jitter`` seconds and is dropped with
  probability ``loss``.
* :class:`TopologyModel` — the fog-continuum generalization: a chain of
  named hops (conventionally ``access`` for device→edge and ``wan`` for
  edge→cloud), each a frozen :class:`HopProfile` with its own latency /
  jitter / loss / bandwidth and its own deterministic RNG stream, with
  per-hop delivery and byte accounting.  The placement tier
  (``repro.runtime.placement``) samples reads against the access hop and
  ships MapReduce partials across the WAN hop, so "bytes over WAN"
  becomes a measurable quantity instead of a modeling gap.

Both models follow the :class:`~repro.telemetry.instrument.Instrumented`
protocol — attach them to a :class:`~repro.telemetry.MetricsRegistry`
and ``delivered``/``dropped`` (and the topology's per-hop series) appear
in ``app.metrics`` and the Prometheus exporter like every other layer.

Determinism contract: a hop with zero loss draws **no** random numbers
when sampling delivery, and a hop with zero jitter draws none when
sampling delay.  Attaching an all-zero model therefore leaves every
payload byte-identical to running without one — the property the
placement equivalence suite pins.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.runtime.clock import Clock
from repro.telemetry.instrument import Instrumented, MetricSpec

__all__ = ["HopProfile", "NetworkConditions", "TopologyModel"]

# Buckets for modeled per-hop transit time: LAN microseconds up to
# congested-WAN seconds.
HOP_LATENCY_BUCKETS = (
    0.000_1,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    5.0,
)


def _validate_link(latency: float, jitter: float, loss: float) -> None:
    if latency < 0 or jitter < 0:
        raise ValueError("latency and jitter must be >= 0")
    if not 0.0 <= loss < 1.0:
        raise ValueError("loss must be within [0, 1)")
    if jitter > latency:
        raise ValueError("jitter cannot exceed latency")


class NetworkConditions(Instrumented):
    """Single-hop latency / jitter / loss injection, deterministic
    under a seed."""

    metric_specs = (
        MetricSpec(
            "network_delivered_total",
            "delivered",
            stats_key="delivered",
            resettable=True,
            help="Messages the network model delivered.",
        ),
        MetricSpec(
            "network_dropped_total",
            "dropped",
            stats_key="dropped",
            resettable=True,
            help="Messages the network model dropped.",
        ),
    )

    def __init__(
        self,
        latency: float = 0.0,
        jitter: float = 0.0,
        loss: float = 0.0,
        seed: int = 0,
    ):
        _validate_link(latency, jitter, loss)
        self.latency = latency
        self.jitter = jitter
        self.loss = loss
        self._rng = random.Random(seed)
        self.delivered = 0
        self.dropped = 0

    def transmit(self, clock: Clock, deliver: Callable[[], None]) -> bool:
        """Route one message: schedule ``deliver`` after the sampled delay,
        or drop it.  Returns True when the message will be delivered."""
        if self.loss and self._rng.random() < self.loss:
            self.dropped += 1
            return False
        self.delivered += 1
        delay = self.sample_delay()
        if delay <= 0:
            deliver()
        else:
            clock.schedule(delay, deliver)
        return True

    def sample_delay(self) -> float:
        if self.jitter:
            return self.latency + self._rng.uniform(-self.jitter, self.jitter)
        return self.latency

    def sample_read_ok(self) -> bool:
        """Whether a polled read survives the network."""
        if not self.loss:
            return True
        return self._rng.random() >= self.loss

    def _extra_stats(self):
        total = self.delivered + self.dropped
        return {"loss_rate": self.dropped / total if total else 0.0}


@dataclass(frozen=True)
class HopProfile:
    """One link of a :class:`TopologyModel` path.

    ``bandwidth`` is bytes per second; ``None`` models an unconstrained
    link (transit time is latency alone).  All sampling state lives in
    the owning topology — the profile itself is immutable deployment
    data, safe to share between descriptors, configs and processes.
    """

    latency: float = 0.0
    jitter: float = 0.0
    loss: float = 0.0
    bandwidth: Optional[float] = None

    def __post_init__(self):
        _validate_link(self.latency, self.jitter, self.loss)
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError("bandwidth must be > 0 (or None for unbounded)")

    def transit_time(self, nbytes: int = 0) -> float:
        """Deterministic modeled transit time for ``nbytes`` (no RNG)."""
        if self.bandwidth is None or not nbytes:
            return self.latency
        return self.latency + nbytes / self.bandwidth


class _HopState:
    """Mutable per-hop delivery state (counters + RNG stream)."""

    __slots__ = ("name", "profile", "rng", "delivered", "dropped", "nbytes")

    def __init__(self, name: str, profile: HopProfile, seed: int):
        self.name = name
        self.profile = profile
        # One independent, deterministic stream per hop: hop order in a
        # path never perturbs another hop's draws.
        self.rng = random.Random(seed * 2654435761 + zlib.crc32(name.encode("utf-8")))
        self.delivered = 0
        self.dropped = 0
        self.nbytes = 0

    def sample_ok(self) -> bool:
        if not self.profile.loss:
            return True
        return self.rng.random() >= self.profile.loss

    def sample_delay(self, nbytes: int = 0) -> float:
        profile = self.profile
        delay = profile.transit_time(nbytes)
        if profile.jitter:
            delay += self.rng.uniform(-profile.jitter, profile.jitter)
        return delay


class TopologyModel(Instrumented):
    """Multi-hop network: named links, per-hop loss, delay and bytes.

    ``hops`` is an ordered mapping ``{name: HopProfile}``; the default
    message path is every hop in declaration order (device → … → cloud).
    Pass ``path=('wan',)`` (any subsequence of hop names) to route a
    message over part of the continuum — the placement tier samples
    polled reads against the access hop only and ships partials across
    the WAN hop via :meth:`send`.
    """

    metric_specs = (
        MetricSpec(
            "network_delivered_total",
            "delivered",
            stats_key="delivered",
            help="Messages delivered across the full topology.",
        ),
        MetricSpec(
            "network_dropped_total",
            "dropped",
            stats_key="dropped",
            help="Messages dropped by any hop.",
        ),
        MetricSpec(
            "network_bytes_total",
            "total_bytes",
            stats_key="bytes",
            help="Payload bytes carried, summed over hops.",
        ),
    )

    def __init__(
        self,
        hops: Union[
            Mapping[str, HopProfile], Iterable[Tuple[str, HopProfile]]
        ],
        seed: int = 0,
    ):
        items = list(
            hops.items() if isinstance(hops, Mapping) else hops
        )
        if not items:
            raise ValueError("a TopologyModel needs at least one hop")
        self._hops: Dict[str, _HopState] = {}
        for name, profile in items:
            if name in self._hops:
                raise ValueError(f"duplicate hop '{name}'")
            if not isinstance(profile, HopProfile):
                raise TypeError(
                    f"hop '{name}' must be a HopProfile, got "
                    f"{type(profile).__name__}"
                )
            self._hops[name] = _HopState(name, profile, seed)
        self._m_latency = None

    # -- structure ------------------------------------------------------

    @property
    def hop_names(self) -> Tuple[str, ...]:
        return tuple(self._hops)

    def profile(self, name: str) -> HopProfile:
        return self._state(name).profile

    def _state(self, name: str) -> _HopState:
        try:
            return self._hops[name]
        except KeyError:
            raise KeyError(
                f"unknown hop '{name}' (topology has "
                f"{', '.join(self._hops)})"
            ) from None

    def _path(self, path) -> Tuple[_HopState, ...]:
        if path is None:
            return tuple(self._hops.values())
        return tuple(self._state(name) for name in path)

    # -- aggregate counters (metric sources) ----------------------------

    @property
    def delivered(self) -> int:
        return sum(hop.delivered for hop in self._hops.values())

    @property
    def dropped(self) -> int:
        return sum(hop.dropped for hop in self._hops.values())

    @property
    def total_bytes(self) -> int:
        return sum(hop.nbytes for hop in self._hops.values())

    # -- delivery -------------------------------------------------------

    def transmit(
        self,
        clock: Clock,
        deliver: Callable[[], None],
        path: Optional[Iterable[str]] = None,
        nbytes: int = 0,
    ) -> bool:
        """Route one message over ``path`` (default: every hop).

        Each hop samples loss independently; the first drop consumes
        the message (later hops never see it).  Surviving messages are
        scheduled after the summed per-hop delay.  Bytes are accounted
        on every hop the message reached.
        """
        delay = 0.0
        for hop in self._path(path):
            hop.nbytes += nbytes
            if not hop.sample_ok():
                hop.dropped += 1
                return False
            hop.delivered += 1
            hop_delay = hop.sample_delay(nbytes)
            self._observe_latency(hop.name, hop_delay)
            delay += hop_delay
        if delay <= 0:
            deliver()
        else:
            clock.schedule(delay, deliver)
        return True

    def send(
        self, hop_name: str, nbytes: int = 0
    ) -> bool:
        """One message over one hop, without scheduling: sample loss,
        account bytes, observe the modeled transit time.  The gather
        path uses this for polled reads and shipped partials, where
        delivery is synchronous and only survival matters."""
        hop = self._state(hop_name)
        hop.nbytes += nbytes
        if not hop.sample_ok():
            hop.dropped += 1
            return False
        hop.delivered += 1
        self._observe_latency(hop.name, hop.profile.transit_time(nbytes))
        return True

    def account(
        self, path: Optional[Iterable[str]] = None, nbytes: int = 0
    ) -> None:
        """Attribute ``nbytes`` of already-sampled traffic to ``path``.

        Pure byte accounting — no loss sampling, no RNG, no counters
        beyond the per-hop byte totals.  The gather path uses this for
        traffic whose survival was decided elsewhere (polled readings
        sampled through :meth:`sample_read_ok`)."""
        for hop in self._path(path):
            hop.nbytes += nbytes

    def sample_read_ok(self, path: Optional[Iterable[str]] = None) -> bool:
        """Whether a polled read survives every hop on ``path``.

        Zero-loss hops draw nothing, so an all-zero topology consumes
        no randomness (the byte-identity lever)."""
        for hop in self._path(path):
            if not hop.sample_ok():
                hop.dropped += 1
                return False
            hop.delivered += 1
        return True

    def transit_time(
        self, path: Optional[Iterable[str]] = None, nbytes: int = 0
    ) -> float:
        """Deterministic modeled end-to-end time for ``nbytes`` over
        ``path`` — latency plus serialization delay per hop, no jitter,
        no RNG.  Benchmarks use this to model p99 uplink latency."""
        return sum(
            hop.profile.transit_time(nbytes) for hop in self._path(path)
        )

    # -- observability --------------------------------------------------

    def attach_metrics(self, metrics, **labels) -> None:
        super().attach_metrics(metrics, **labels)
        for name in self._hops:
            state = self._hops[name]
            metrics.callback(
                "network_hop_delivered_total",
                lambda s=state: s.delivered,
                help="Messages delivered by one hop.",
                hop=name,
                **labels,
            )
            metrics.callback(
                "network_hop_dropped_total",
                lambda s=state: s.dropped,
                help="Messages dropped by one hop.",
                hop=name,
                **labels,
            )
            metrics.callback(
                "network_hop_bytes_total",
                lambda s=state: s.nbytes,
                help="Payload bytes carried by one hop.",
                hop=name,
                **labels,
            )
        self._m_latency = {
            name: metrics.histogram(
                "network_hop_latency_seconds",
                help="Modeled per-message transit time by hop.",
                buckets=HOP_LATENCY_BUCKETS,
                hop=name,
                **labels,
            )
            for name in self._hops
        }

    def _observe_latency(self, hop_name: str, delay: float) -> None:
        if self._m_latency is not None:
            self._m_latency[hop_name].observe(delay)

    def _extra_stats(self):
        return {
            "hops": {
                name: {
                    "delivered": hop.delivered,
                    "dropped": hop.dropped,
                    "bytes": hop.nbytes,
                }
                for name, hop in self._hops.items()
            }
        }
