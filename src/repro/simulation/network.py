"""Network-conditions model for event-driven delivery.

Wide-area IoT networks (Sigfox, LoRa — Section I) deliver sensor messages
with latency, jitter and loss.  :class:`NetworkConditions` injects those
effects between a device's event push and the application's bus: attach
one to an :class:`~repro.runtime.app.Application` and every event-driven
reading is delayed by ``latency ± jitter`` seconds and dropped with
probability ``loss``.

Query-driven and periodic delivery poll through the same model using
:meth:`sample_read_ok` when the application is constructed with
``apply_network_to_reads=True``.
"""

from __future__ import annotations

import random
from typing import Callable

from repro.runtime.clock import Clock


class NetworkConditions:
    """Latency / jitter / loss injection, deterministic under a seed."""

    def __init__(
        self,
        latency: float = 0.0,
        jitter: float = 0.0,
        loss: float = 0.0,
        seed: int = 0,
    ):
        if latency < 0 or jitter < 0:
            raise ValueError("latency and jitter must be >= 0")
        if not 0.0 <= loss < 1.0:
            raise ValueError("loss must be within [0, 1)")
        if jitter > latency:
            raise ValueError("jitter cannot exceed latency")
        self.latency = latency
        self.jitter = jitter
        self.loss = loss
        self._rng = random.Random(seed)
        self.delivered = 0
        self.dropped = 0

    def transmit(self, clock: Clock, deliver: Callable[[], None]) -> bool:
        """Route one message: schedule ``deliver`` after the sampled delay,
        or drop it.  Returns True when the message will be delivered."""
        if self.loss and self._rng.random() < self.loss:
            self.dropped += 1
            return False
        self.delivered += 1
        delay = self.sample_delay()
        if delay <= 0:
            deliver()
        else:
            clock.schedule(delay, deliver)
        return True

    def sample_delay(self) -> float:
        if self.jitter:
            return self.latency + self._rng.uniform(-self.jitter, self.jitter)
        return self.latency

    def sample_read_ok(self) -> bool:
        """Whether a polled read survives the network."""
        if not self.loss:
            return True
        return self._rng.random() >= self.loss

    @property
    def stats(self):
        total = self.delivered + self.dropped
        return {
            "delivered": self.delivered,
            "dropped": self.dropped,
            "loss_rate": self.dropped / total if total else 0.0,
        }
