#!/usr/bin/env python
"""The avionics case study: an automated pilot flying a flight plan.

The autopilot is an SCC application: flight sensors feed PID hold
contexts whose commands drive the control surfaces through controllers.
This example flies a three-leg plan — climb-and-turn, cruise, descent —
and prints telemetry; an envelope excursion at the end triggers the
annunciator.

Run:  python examples/avionics_autopilot.py
"""

# Allow running straight from a repo checkout (no installed package):
# prepend the sibling ``src`` directory to the import path.
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"),
)

from repro.apps.avionics import build_avionics_app

FLIGHT_PLAN = [
    # (label, altitude m, heading deg, airspeed m/s, duration s)
    ("climb and turn", 2500.0, 90.0, 160.0, 420),
    ("cruise", 2500.0, 90.0, 200.0, 300),
    ("descend toward approach", 800.0, 180.0, 120.0, 600),
]


def telemetry(app):
    env = app.environment
    return (f"alt {env.altitude:7.0f} m | hdg {env.heading:5.1f} | "
            f"ias {env.airspeed:5.1f} m/s")


def main():
    app = build_avionics_app()
    print(f"takeoff state:          {telemetry(app)}")

    for label, altitude, heading, airspeed, duration in FLIGHT_PLAN:
        app.command(altitude=altitude, heading=heading, airspeed=airspeed)
        app.advance(duration)
        print(f"after '{label}':".ljust(24) + telemetry(app))

    assert abs(app.environment.altitude - 800.0) < 60.0
    assert abs(app.environment.heading - 180.0) < 6.0

    print("\nCommanding an unsafe descent (envelope protection demo)...")
    app.command(altitude=50.0)
    app.advance(600)
    for warning in app.annunciator.warnings:
        print(f"  ANNUNCIATOR: {warning}")
    assert app.annunciator.warnings

    stats = app.application.stats
    print(f"\ncontrol loop ran {stats['context_activations']['AltitudeHold']}"
          " times (1 Hz periodic gathering)")


if __name__ == "__main__":
    main()
