#!/usr/bin/env python
"""The paper's large-scale application: city parking management
(Figures 4, 6, 8, 10, 11).

Deploys presence sensors across the paper's three lots (A22, B16, D6),
simulates a full day of city traffic, and shows what every display
surface reported: the per-lot entrance panels (ParkingAvailability →
ParkingEntrancePanelController), the city-entrance suggestion panels
(ParkingSuggestion → CityEntrancePanelController), and the daily
occupancy report to management (AverageOccupancy → MessengerController).

Then re-runs the *same* design at 25x the scale to demonstrate the
continuum (Figure 1).

Run:  python examples/parking_management.py
"""

# Allow running straight from a repo checkout (no installed package):
# prepend the sibling ``src`` directory to the import path.
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"),
)

import time

from repro.apps.parking import build_parking_app


def main():
    print("--- Paper scale: 3 lots, 120 sensors ---")
    app = build_parking_app(
        capacities={"A22": 40, "B16": 30, "D6": 50},
        occupancy_window="24 hr",
        seed=2024,
    )
    print(f"bound entities: {len(app.application.registry)}")

    for checkpoint_hour in (8, 12, 18):
        target = checkpoint_hour * 3600
        app.advance(target - app.application.clock.now())
        statuses = ", ".join(
            f"{lot}: {panel.status}"
            for lot, panel in sorted(app.entrance_panels.items())
        )
        suggestion = next(iter(app.city_panels.values())).status
        print(f"{checkpoint_hour:02d}:00  {statuses}")
        print(f"       city panels -> {suggestion!r}")

    app.advance(24 * 3600 - app.application.clock.now() + 600)
    print("\nDaily report to management:")
    for message in app.messenger.messages:
        print("  " + message)

    patterns = app.application.query_context("ParkingUsagePattern")
    print("\nUsage patterns (query-driven, 'when required'):")
    for pattern in patterns:
        print(f"  {pattern.parkingLot}: {pattern.level}")

    stats = app.application.stats
    print(f"\nRuntime: {stats['gather_sweeps']} gathering sweeps, "
          f"{stats['context_activations']['ParkingAvailability']} "
          "availability publications")

    print("\n--- City scale: 75 lots, 3000 sensors, same design ---")
    big = build_parking_app(
        capacities={f"LOT_{i:03d}": 40 for i in range(75)},
        seed=7,
        environment_step_seconds=600.0,
    )
    start = time.perf_counter()
    big.advance(3600)
    elapsed = time.perf_counter() - start
    updated = sum(1 for p in big.entrance_panels.values() if p.history)
    print(f"simulated one hour in {elapsed * 1e3:.0f} ms wall time; "
          f"{updated}/75 entrance panels updating")


if __name__ == "__main__":
    main()
