#!/usr/bin/env python
"""The design compiler in action (Section V, Figures 9-11).

Compiles the cooker-monitoring design into its customized Python
programming framework and the developer stub skeleton, writes both under
``build/generated/``, and prints the generated-code accounting behind the
paper's "up to 80 %" productivity claim.

Run:  python examples/generate_framework.py
"""

# Allow running straight from a repo checkout (no installed package):
# prepend the sibling ``src`` directory to the import path.
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"),
)

import os

from repro.apps.cooker import DESIGN_SOURCE
from repro.codegen import generate_framework, generate_stubs, measure_generation

OUTPUT_DIR = os.path.join("build", "generated")


def main():
    framework_source = generate_framework(DESIGN_SOURCE, "CookerMonitoring")
    stub_source = generate_stubs(
        DESIGN_SOURCE, "CookerMonitoring",
        framework_module="cooker_framework",
    )

    os.makedirs(OUTPUT_DIR, exist_ok=True)
    framework_path = os.path.join(OUTPUT_DIR, "cooker_framework.py")
    stubs_path = os.path.join(OUTPUT_DIR, "cooker_impl_stubs.py")
    with open(framework_path, "w", encoding="utf-8") as handle:
        handle.write(framework_source)
    with open(stubs_path, "w", encoding="utf-8") as handle:
        handle.write(stub_source)

    print(f"framework -> {framework_path} "
          f"({len(framework_source.splitlines())} lines)")
    print(f"stubs     -> {stubs_path} "
          f"({len(stub_source.splitlines())} lines)")

    print("\nGenerated artifacts (Figure 9 correspondence):")
    for line in framework_source.splitlines():
        if line.startswith("class Abstract") or "ValuePublishable" in line:
            print("  " + line.rstrip(" :"))

    # The productivity claim: compare against a typical implementation
    # (the bundled cooker app's handwritten logic + devices).
    import inspect

    from repro.apps.cooker import devices, logic

    handwritten = inspect.getsource(logic) + inspect.getsource(devices)
    report = measure_generation(DESIGN_SOURCE, handwritten,
                                name="CookerMonitoring")
    print("\nGenerated-code accounting (paper §V: 'up to 80%'):")
    print(f"  design:      {report.design_loc:4d} LoC of DiaSpec")
    print(f"  generated:   {report.generated_loc:4d} LoC of Python")
    print(f"  handwritten: {report.handwritten_loc:4d} LoC of Python")
    print(f"  generated share of application: "
          f"{report.generated_ratio:.1%}")
    print(f"  leverage: {report.leverage:.1f} lines generated per design "
          "line")


if __name__ == "__main__":
    main()
