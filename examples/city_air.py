#!/usr/bin/env python
"""Pollution advisories over the shared smart-city taxonomy.

A second city-scale application (alongside parking) built from the same
device taxonomy — the paper's §III point that device declarations form a
reusable vocabulary.  Traffic counters and pollution sensors feed
zone-level contexts; during rush hour the advisory context flags polluted
zones on their panels and messages city operations.

Run:  python examples/city_air.py
"""

# Allow running straight from a repo checkout (no installed package):
# prepend the sibling ``src`` directory to the import path.
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"),
)

from repro.apps.pollution import build_pollution_app


def clock_of(app):
    now = app.application.clock.now()
    return f"{int(now // 3600) % 24:02d}:{int(now % 3600 // 60):02d}"


def main():
    app = build_pollution_app(seed=7, environment_step_seconds=300.0)
    print("zones:", ", ".join(sorted(app.zone_panels)))

    for checkpoint in (4, 9, 14, 22):
        target = checkpoint * 3600
        app.advance(target - app.application.clock.now())
        air = app.application.query_context("AirQuality")
        print(f"\n{clock_of(app)}  air quality (query-driven):")
        for record in air:
            print(f"    {record.zone:<8} PM10 {record.pm10:5.1f}  "
                  f"NO2 {record.no2:5.1f}")
        print(f"{clock_of(app)}  panels:")
        for zone, panel in sorted(app.zone_panels.items()):
            print(f"    {zone:<8} {panel.status or '(no update yet)'}")

    print(f"\noperations messages ({len(app.advisories_sent)} total):")
    for message in app.advisories_sent[-3:]:
        print("  " + message)
    assert app.advisories_sent, "rush hour should have produced advisories"


if __name__ == "__main__":
    main()
