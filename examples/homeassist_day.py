#!/usr/bin/env python
"""The assisted-living case study: a day with HomeAssist.

Motion sensors per room and door contact sensors feed four contexts:
activity levels (served on demand), inactivity alerts, night-wandering
detection (which lights the way), and door-left-open alerts.  The
scenario scripts two incidents: an afternoon fall (long inactivity) and
a night-time walk to the hallway.

Run:  python examples/homeassist_day.py
"""

# Allow running straight from a repo checkout (no installed package):
# prepend the sibling ``src`` directory to the import path.
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"),
)

from repro.apps.homeassist import build_homeassist_app


def stamp(app):
    now = app.application.clock.now()
    return f"{int(now // 3600) % 24:02d}:{int(now % 3600 // 60):02d}"


def main():
    app = build_homeassist_app(inactivity_threshold_minutes=60)

    print("--- Morning: normal routine ---")
    app.advance(11 * 3600)
    print(f"{stamp(app)}  activity levels (query-driven):")
    for level in app.application.query_context("ActivityLevel"):
        bar = "#" * int(level.level * 20)
        print(f"         {level.room:<12} {level.level:4.2f} {bar}")

    print("\n--- Afternoon: the resident falls (no motion anywhere) ---")
    app.environment.force_room("nowhere")
    app.advance(2 * 3600)
    for level, message in app.notifications.sent:
        print(f"{stamp(app)}  [{level}] {message}")
    assert any(level == "URGENT" for level, __ in app.notifications.sent)

    print("\n--- Evening: recovered; caregiver resolved the incident ---")
    app.environment.force_room(None)
    app.advance(9 * 3600)

    print("\n--- Night: wandering to the hallway at 23:30 ---")
    target = 23.5 * 3600
    app.advance(target - app.application.clock.now())
    app.environment.force_room("hallway")
    app.advance(300)
    print(f"{stamp(app)}  lamp(HALLWAY) is "
          + ("ON" if app.lamp("HALLWAY").is_on else "OFF"))
    assert app.lamp("HALLWAY").is_on

    print("\n--- And the front door was left open ---")
    app.front_door.set_open(True)
    app.advance(20 * 60)
    door_alerts = [m for __, m in app.notifications.sent if "door" in m]
    for message in door_alerts:
        print(f"{stamp(app)}  [WARNING] {message}")
    assert door_alerts

    print(f"\ntotal caregiver notifications: {len(app.notifications.sent)}")


if __name__ == "__main__":
    main()
