#!/usr/bin/env python
"""Deployment descriptors and execution tracing.

Builds a small irrigation application, binds its entities from a JSON
deployment descriptor (the data-side record of entity binding, §IV), and
watches it run through a Tracer — the causal timeline of source readings,
context publications, and actions.

Run:  python examples/traced_deployment.py
"""

# Allow running straight from a repo checkout (no installed package):
# prepend the sibling ``src`` directory to the import path.
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"),
)

import json

from repro.api import (
    Application,
    CallableDriver,
    Context,
    Controller,
    DriverCatalog,
    Tracer,
    analyze,
    apply_descriptor,
    load_descriptor,
)

DESIGN = """
device SoilSensor {
    attribute zone as ZoneEnum;
    source moisture as Float expect retry 1;
}
device Valve {
    attribute zone as ZoneEnum;
    action Open;
    action Close;
}
enumeration ZoneEnum { NORTH, SOUTH }

context DryZones as ZoneEnum[] {
    expect deadline <10 ms>;

    when periodic moisture from SoilSensor <30 min>
    grouped by zone
    always publish;
}

controller Irrigation {
    when provided DryZones
    do Open on Valve;
}
"""

DESCRIPTOR = {
    "name": "greenhouse-7",
    "entities": [
        {"type": "SoilSensor", "id": "soil-n",
         "attributes": {"zone": "NORTH"},
         "driver": "soil", "config": {"level": 0.15}},
        {"type": "SoilSensor", "id": "soil-s",
         "attributes": {"zone": "SOUTH"},
         "driver": "soil", "config": {"level": 0.60}},
        {"type": "Valve", "id": "valve-n",
         "attributes": {"zone": "NORTH"}, "driver": "valve"},
        {"type": "Valve", "id": "valve-s",
         "attributes": {"zone": "SOUTH"}, "driver": "valve",
         "binding": "runtime"},
    ],
}


class DryZonesContext(Context):
    THRESHOLD = 0.25

    def on_periodic_moisture(self, moisture_by_zone, discover):
        return [
            zone
            for zone, readings in sorted(moisture_by_zone.items())
            if sum(readings) / len(readings) < self.THRESHOLD
        ]


class IrrigationController(Controller):
    def on_dry_zones(self, zones, discover):
        for zone in zones:
            discover.valves().where_zone(zone).open()


def main():
    app = Application(analyze(DESIGN))
    app.implement("DryZones", DryZonesContext())
    app.implement("Irrigation", IrrigationController())

    catalog = DriverCatalog()
    catalog.register(
        "soil",
        lambda level: CallableDriver(sources={"moisture": lambda: level}),
    )
    catalog.register(
        "valve",
        lambda: CallableDriver(actions={
            "Open": lambda: None, "Close": lambda: None,
        }),
    )

    descriptor = load_descriptor(json.dumps(DESCRIPTOR))
    print(f"descriptor '{descriptor.name}': "
          f"{descriptor.entity_count} entities")
    deployment = apply_descriptor(app, descriptor, catalog)
    deployment.deploy()

    tracer = Tracer(app).attach()
    deployment.launch()
    deployment.bind_runtime()

    app.advance(3600)  # two 30-minute sweeps

    print("\nexecution trace:")
    print(tracer.render())

    dry_publications = tracer.find(kind="context", subject="DryZones")
    assert all(entry.value == ["NORTH"] for entry in dry_publications)
    opens = tracer.find(kind="action", subject="valve-n")
    assert len(opens) == 2

    print("\nQoS record for DryZones:",
          app.stats["qos"]["DryZones"])


if __name__ == "__main__":
    main()
