#!/usr/bin/env python
"""The paper's small-scale application: cooker monitoring (Figures 3, 5, 7).

Simulates a day in a senior's home.  At breakfast the resident forgets
the cooker; the Alert context notices after the threshold, the Notify
controller raises a question on the TV prompter, and the (scripted)
resident answers "yes", driving the second functional chain that turns
the cooker off.

Run:  python examples/cooker_monitoring.py
"""

# Allow running straight from a repo checkout (no installed package):
# prepend the sibling ``src`` directory to the import path.
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"),
)

from repro.apps.cooker import build_cooker_app


def hours(seconds):
    return f"{int(seconds // 3600):02d}:{int(seconds % 3600 // 60):02d}"


def main():
    app = build_cooker_app(threshold_seconds=20 * 60,
                           renotify_seconds=10 * 60)
    clock = app.application.clock

    print("Functional chains of the design (Figure 3):")
    for chain in app.application.design.graph.functional_chains():
        print("  " + " -> ".join(chain))

    print("\n--- The day begins (routine: breakfast at 07:00) ---")
    app.advance(7 * 3600)
    print(f"{hours(clock.now())}  resident cooks breakfast "
          f"(consumption {app.environment.consumption():.0f} W)")

    # The resident walks away and forgets the cooker.
    app.environment.set_cooker(True)
    app.advance(3600)

    for question_id, text in app.prompter_driver.displayed:
        print(f"{hours(clock.now())}  TV prompter [{question_id}]: {text}")

    print(f"{hours(clock.now())}  resident answers: yes")
    app.prompter_driver.answer("yes")
    print(f"{hours(clock.now())}  cooker is now "
          + ("ON" if app.cooker_on else "OFF"))
    assert not app.cooker_on

    print("\n--- Rest of the day under routine control ---")
    app.environment.release_cooker()
    app.advance(17 * 3600 - 60)
    alerts = len(app.prompter_driver.displayed)
    stats = app.application.stats
    print(f"{hours(clock.now())}  day over: {alerts} alert(s) raised, "
          f"{stats['context_activations']['Alert']} Alert activations, "
          f"{stats['controller_activations'].get('TurnOff', 0)} remote "
          "turn-off(s)")


if __name__ == "__main__":
    main()
