#!/usr/bin/env python
"""Quickstart: design, analyze, implement, run — in fifty lines.

A minimal Sense-Compute-Control application: a temperature sensor feeds a
threshold context; when the room overheats, a controller starts the fan.

Run:  python examples/quickstart.py
"""

# Allow running straight from a repo checkout (no installed package):
# prepend the sibling ``src`` directory to the import path.
import os
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir, "src"),
)

from repro.api import (
    Application,
    CallableDriver,
    Context,
    Controller,
    analyze,
)

DESIGN = """
device Thermometer {
    attribute room as RoomEnum;
    source temperature as Float;
}

device Fan {
    attribute room as RoomEnum;
    action On;
    action Off;
}

enumeration RoomEnum { KITCHEN, BEDROOM }

context Overheat as Float {
    when provided temperature from Thermometer
    maybe publish;
}

controller FanController {
    when provided Overheat
    do On on Fan;
}
"""


class OverheatContext(Context):
    """Publishes the temperature when it crosses 28 degrees."""

    def on_temperature_from_thermometer(self, event, discover):
        if event.value > 28.0:
            print(f"  [context]    {event.device.room}: {event.value:.1f} C "
                  "is too hot -> publish")
            return event.value
        return None


class FanController(Controller):
    """Starts every fan in the overheating room."""

    def on_overheat(self, temperature, discover):
        fans = discover.fans()
        print(f"  [controller] starting {len(fans)} fan(s)")
        fans.on()


def main():
    design = analyze(DESIGN)
    print("Design analyzed:", ", ".join(sorted(design.contexts)),
          "/", ", ".join(sorted(design.controllers)))

    app = Application(design)
    app.implement("Overheat", OverheatContext())
    app.implement("FanController", FanController())

    fan_state = {"running": False}
    thermometer = app.create_device(
        "Thermometer", "therm-kitchen",
        CallableDriver(sources={"temperature": lambda: 22.0}),
        room="KITCHEN",
    )
    app.create_device(
        "Fan", "fan-kitchen",
        CallableDriver(actions={
            "On": lambda: fan_state.__setitem__("running", True),
            "Off": lambda: fan_state.__setitem__("running", False),
        }),
        room="KITCHEN",
    )
    app.start()

    print("\nPushing readings (event-driven delivery):")
    for reading in (22.0, 25.5, 29.3):
        print(f"  [sensor]     temperature = {reading} C")
        thermometer.publish("temperature", reading)

    print(f"\nFan running: {fan_state['running']}")
    assert fan_state["running"]
    print("Quickstart OK.")


if __name__ == "__main__":
    main()
