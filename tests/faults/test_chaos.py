"""Deterministic chaos: seeded fault plans and their no-op property.

Two guarantees are pinned here.  First, a (seed, plan, fleet) triple
replays bit for bit — same entities killed, same recovery report.
Second, an injector whose plan never activates during the run is
*observationally invisible*: the wrapped drivers change nothing, so the
JSON-dumped run snapshot is byte-identical to a run with no injector.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceUnavailableError
from repro.faults.chaos import (
    ChaosInjector,
    FaultEvent,
    FaultPlan,
    run_parking_chaos,
)
from repro.faults.policy import StalePolicy, SupervisionPolicy
from repro.runtime.app import Application
from repro.runtime.clock import SimulationClock
from repro.runtime.component import Context
from repro.runtime.config import RuntimeConfig
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze


class TestFaultEventValidation:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="fault kind"):
            FaultEvent("gremlins", 0.0, 60.0, device_type="Sensor")

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent("outage", 0.0, 0.0, device_type="Sensor")

    def test_rejects_untargeted_event(self):
        with pytest.raises(ValueError, match="target"):
            FaultEvent("outage", 0.0, 60.0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            FaultEvent("outage", 0.0, 60.0, device_type="S", fraction=0.0)

    def test_flap_alternates_starting_down(self):
        event = FaultEvent(
            "flap", 100.0, 400.0, device_type="S", flap_period=100.0
        )
        assert event.active_at(100.0)      # first half-period: down
        assert not event.active_at(250.0)  # second: up
        assert event.active_at(350.0)      # third: down again
        assert not event.active_at(500.0)  # event over
        assert not event.active_at(50.0)   # not yet started


DESIGN = """\
device Sensor {
    source reading as Float;
}

context Sweep as Integer {
    when periodic reading from Sensor <1 min>
    always publish;
}
"""


class CountingSweep(Context):
    def __init__(self):
        super().__init__()
        self.cohorts = []

    def on_periodic_reading(self, readings, discover):
        self.cohorts.append(len(readings))
        return len(readings)


def build_small_app():
    clock = SimulationClock()
    app = Application(
        analyze(DESIGN),
        RuntimeConfig(
            clock=clock,
            supervision=SupervisionPolicy(
                max_retries=0,
                failure_threshold=1,
                backoff_base_seconds=120.0,
                jitter=0.0,
            ),
            stale=StalePolicy("last_known"),
        ),
    )
    sweep = CountingSweep()
    app.implement("Sweep", sweep)
    for index in range(4):
        app.create_device(
            "Sensor",
            f"sensor-{index}",
            CallableDriver(sources={"reading": lambda i=index: float(i)}),
        )
    app.start()
    return app, sweep


def snapshot(app, sweep) -> str:
    """A canonical JSON dump of everything observable about a run."""
    return json.dumps(
        {
            "bus": app.bus.stats(),
            "activations": app.stats["context_activations"],
            "gather_errors": app.stats["gather_errors"],
            "gather_sweeps": app.stats["gather_sweeps"],
            "supervision": app.supervision.stats(),
            "cohorts": sweep.cohorts,
        },
        sort_keys=True,
        default=str,
    )


class TestInjectorMechanics:
    def test_attach_wraps_and_detach_restores(self):
        app, __ = build_small_app()
        originals = {
            i.entity_id: i.driver
            for i in app.registry.instances_of("Sensor")
        }
        plan = FaultPlan(seed=1).outage(
            "Sensor", start=0.0, duration=60.0, fraction=0.5
        )
        injector = ChaosInjector(app, plan).attach()
        assert len(injector.targeted_entities) == 2
        for entity_id in injector.targeted_entities:
            assert app.registry.get(entity_id).driver is not (
                originals[entity_id]
            )
        injector.detach()
        for entity_id, driver in originals.items():
            assert app.registry.get(entity_id).driver is driver

    def test_outage_raises_device_unavailable(self):
        app, __ = build_small_app()
        plan = FaultPlan(seed=1).outage(
            "Sensor", start=0.0, duration=60.0,
            entity_ids=["sensor-0"],
        )
        ChaosInjector(app, plan).attach()
        with pytest.raises(DeviceUnavailableError):
            app.registry.get("sensor-0").driver.read("reading")

    def test_same_seed_targets_same_entities(self):
        app_a, __ = build_small_app()
        app_b, __ = build_small_app()

        def targets(app, seed):
            plan = FaultPlan(seed=seed).outage(
                "Sensor", start=0.0, duration=60.0, fraction=0.5
            )
            return ChaosInjector(app, plan).attach().targeted_entities

        assert targets(app_a, 3) == targets(app_b, 3)


class TestParkingChaosDeterminism:
    def test_same_seed_same_report(self):
        kwargs = dict(
            seed=11,
            duration_seconds=1800.0,
            kill_fraction=0.1,
            fault_start=300.0,
            fault_duration=600.0,
        )
        first = json.dumps(run_parking_chaos(**kwargs), sort_keys=True)
        second = json.dumps(run_parking_chaos(**kwargs), sort_keys=True)
        assert first == second

    def test_different_seeds_kill_different_sensors(self):
        kwargs = dict(
            duration_seconds=600.0, kill_fraction=0.1,
            fault_start=60.0, fault_duration=120.0,
        )
        a = run_parking_chaos(seed=1, **kwargs)
        b = run_parking_chaos(seed=2, **kwargs)
        assert a["killed_entities"] != b["killed_entities"]

    def test_thirty_percent_kill_fully_recovers(self):
        """The acceptance scenario: 30% of the sensors die for 30
        minutes, yet every availability period still publishes and the
        fleet ends the run healthy."""
        report = run_parking_chaos(seed=7)
        assert report["sensors_killed"] == 36  # 30% of 120
        assert report["injected_read_failures"] > 0
        assert report["missed_publishes"] == 0
        assert all(
            updates == report["expected_sweeps"]
            for updates in report["panel_updates"].values()
        )
        assert report["unrecovered_failures"] == 0
        assert report["recovered"] is True
        assert report["supervision"]["stale_serves"] > 0


class TestInactivePlanIsInvisible:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        fraction=st.floats(min_value=0.25, max_value=1.0),
        kind=st.sampled_from(["outage", "latency", "flap"]),
    )
    def test_byte_identical_to_no_injector(self, seed, fraction, kind):
        """A plan whose events all lie outside the run window wraps the
        drivers but never fires: the run must be byte-identical to one
        with no injector at all."""
        baseline_app, baseline_sweep = build_small_app()
        baseline_app.advance(300)
        baseline = snapshot(baseline_app, baseline_sweep)

        chaotic_app, chaotic_sweep = build_small_app()
        plan = FaultPlan(seed=seed)
        plan.add(
            FaultEvent(
                kind,
                start=1_000_000.0,
                duration=60.0,
                device_type="Sensor",
                fraction=fraction,
                latency_seconds=5.0,
            )
        )
        injector = ChaosInjector(chaotic_app, plan).attach()
        assert injector.targeted_entities  # drivers really are wrapped
        chaotic_app.advance(300)
        assert snapshot(chaotic_app, chaotic_sweep) == baseline
        assert injector.injected_failures == 0
