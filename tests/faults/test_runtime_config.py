"""The RuntimeConfig record and the deprecated keyword shim."""

import pytest

from repro.faults.policy import StalePolicy, SupervisionPolicy
from repro.runtime.app import Application
from repro.runtime.clock import SimulationClock
from repro.runtime.config import RuntimeConfig
from repro.sema.analyzer import analyze

DESIGN = """\
device Sensor {
    source reading as Float;
}

context Echo as Float {
    when provided reading from Sensor
    always publish;
}
"""


def design():
    return analyze(DESIGN)


class TestRuntimeConfig:
    def test_defaults_match_the_legacy_constructor(self):
        config = RuntimeConfig()
        assert config.clock is None
        assert config.error_policy == "raise"
        assert config.streaming_windows is True
        assert config.supervision is None
        assert config.supervision_overrides == {}
        assert not config.supervised()
        assert config.stale_policy == StalePolicy("skip")

    def test_invalid_error_policy_rejected(self):
        with pytest.raises(ValueError, match="error_policy"):
            RuntimeConfig(error_policy="pray")

    def test_policy_fields_are_type_checked(self):
        with pytest.raises(TypeError, match="StalePolicy"):
            RuntimeConfig(stale="last_known")
        with pytest.raises(TypeError, match="SupervisionPolicy"):
            RuntimeConfig(supervision="yes please")

    def test_replace_returns_an_updated_copy(self):
        base = RuntimeConfig()
        isolated = base.replace(error_policy="isolate")
        assert isolated.error_policy == "isolate"
        assert base.error_policy == "raise"

    def test_supervised_when_any_policy_present(self):
        policy = SupervisionPolicy()
        assert RuntimeConfig(supervision=policy).supervised()
        assert RuntimeConfig(
            supervision_overrides={"Sensor": policy}
        ).supervised()

    def test_describe_is_loggable(self):
        config = RuntimeConfig(
            clock=SimulationClock(),
            supervision=SupervisionPolicy(),
            supervision_overrides={"Sensor": SupervisionPolicy()},
        )
        summary = config.describe()
        assert summary["clock"] == "SimulationClock"
        assert summary["error_policy"] == "raise"
        assert summary["supervision"].startswith("SupervisionPolicy(")
        assert set(summary["supervision_overrides"]) == {"Sensor"}


class TestApplicationAcceptsConfig:
    def test_config_fields_reach_the_application(self):
        clock = SimulationClock()
        config = RuntimeConfig(
            clock=clock, name="Configured", error_policy="isolate"
        )
        app = Application(design(), config)
        assert app.clock is clock
        assert app.name == "Configured"
        assert app.config is config

    def test_default_config_when_omitted(self):
        app = Application(design())
        assert isinstance(app.config, RuntimeConfig)
        assert app.config.error_policy == "raise"


class TestLegacyKeywordShim:
    def test_legacy_keywords_warn_once_and_work(self):
        clock = SimulationClock()
        with pytest.warns(DeprecationWarning) as caught:
            app = Application(
                design(), clock=clock, streaming_windows=False
            )
        assert app.clock is clock
        assert app.config.streaming_windows is False
        # One consolidated warning, not one per keyword.
        deprecations = [
            w for w in caught if w.category is DeprecationWarning
        ]
        assert len(deprecations) == 1
        message = str(deprecations[0].message)
        assert "deprecated" in message
        assert "clock=..." in message
        assert "streaming_windows=..." in message

    def test_config_plus_keywords_is_an_error(self):
        with pytest.raises(TypeError, match="not both"):
            Application(
                design(), RuntimeConfig(), streaming_windows=False
            )

    def test_unknown_keyword_is_an_error_without_warning(self):
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            with pytest.raises(TypeError, match="wibble"):
                Application(design(), wibble=1)

    def test_from_legacy_kwargs_round_trip(self):
        clock = SimulationClock()
        with pytest.warns(DeprecationWarning):
            config = RuntimeConfig.from_legacy_kwargs(
                clock=clock, error_policy="isolate"
            )
        assert config.clock is clock
        assert config.error_policy == "isolate"

    def test_from_legacy_kwargs_without_kwargs_is_silent(self):
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            config = RuntimeConfig.from_legacy_kwargs()
        assert config == RuntimeConfig()
