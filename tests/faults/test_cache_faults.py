"""Read cache × fault tolerance: the interplay the redesign promises.

A cached value is evidence the device worked *then*, not that it works
now — so a cache hit must neither probe nor heal supervision state: it
does not reset the circuit breaker, does not improve health, and is
served even while the breaker is open.  Conversely the fault layer
must not leak into the cache: stale-policy substitution reads the
supervisor's last-known value (bypassing the cache entirely), and
failed reads cache nothing.
"""

import pytest

from repro.errors import DeliveryError, DeviceUnavailableError
from repro.faults.breaker import CLOSED, OPEN
from repro.faults.policy import StalePolicy, SupervisionPolicy
from repro.runtime.app import Application
from repro.runtime.cache import CacheConfig
from repro.runtime.clock import SimulationClock
from repro.runtime.component import Context
from repro.runtime.config import RuntimeConfig
from repro.runtime.device import DeviceDriver
from repro.sema.analyzer import analyze

DESIGN = """\
device Sensor {
    source reading as Float;
    source flaky as Float;
}

context Sweep as Integer {
    when periodic reading from Sensor <1 min>
    always publish;
}
"""

POLICY = SupervisionPolicy(
    max_retries=0,
    failure_threshold=1,
    backoff_base_seconds=600.0,
    jitter=0.0,
    quarantine_after=None,
)

CACHE = CacheConfig(enabled=True, ttl_seconds=10.0)


class TwoFacedSensor(DeviceDriver):
    """``reading`` works until ``down``; ``flaky`` always fails."""

    def __init__(self):
        self.down = False
        self.reads = 0

    def read(self, source):
        if source == "flaky" or self.down:
            raise DeliveryError(f"'{source}' is dark")
        self.reads += 1
        return 1.0


class SweepRecorder(Context):
    def __init__(self):
        super().__init__()
        self.payloads = []

    def on_periodic_reading(self, readings, discover):
        self.payloads.append(
            [reading.value for reading in readings]
        )
        return len(readings)


def build(stale=None, cache=CACHE):
    clock = SimulationClock()
    app = Application(
        analyze(DESIGN),
        RuntimeConfig(
            clock=clock,
            supervision=POLICY,
            stale=stale if stale is not None else StalePolicy("skip"),
            cache=cache,
        ),
    )
    recorder = SweepRecorder()
    app.implement("Sweep", recorder)
    driver = TwoFacedSensor()
    app.create_device("Sensor", "s-0", driver)
    app.start()
    return app, clock, driver, recorder


class TestHitsDoNotTouchSupervision:
    def test_hit_served_while_breaker_open_without_healing_it(self):
        app, __, driver, __recorder = build()
        proxy = app.discover.device("s-0")
        supervisor = app.supervision.supervisor("s-0")
        assert proxy.reading() == 1.0  # cached now
        with pytest.raises(DeviceUnavailableError):
            proxy.flaky()  # one failure trips the threshold-1 breaker
        assert supervisor.breaker.state is OPEN
        assert supervisor.health == "degraded"
        # Fresh cached value is still served: no driver probe, no
        # CircuitOpenError, and crucially no record_success — the
        # breaker stays open and health stays degraded.
        assert proxy.reading() == 1.0
        assert driver.reads == 1
        assert supervisor.breaker.state is OPEN
        assert supervisor.health == "degraded"
        assert app.read_cache.stats()["hits"] == 1

    def test_expired_entry_behind_open_breaker_is_refused(self):
        app, clock, driver, __recorder = build()
        proxy = app.discover.device("s-0")
        proxy.reading()
        with pytest.raises(DeviceUnavailableError):
            proxy.flaky()
        clock.advance(CACHE.ttl_seconds + 0.1)  # backoff is 600 s
        with pytest.raises(DeviceUnavailableError):
            proxy.reading()  # stale entry: the breaker gate is back
        assert driver.reads == 1

    def test_hard_failed_device_raises_before_the_cache(self):
        app, __, __driver, __recorder = build()
        proxy = app.discover.device("s-0")
        proxy.reading()  # cached and fresh
        app.registry.get("s-0").fail()
        with pytest.raises(DeviceUnavailableError):
            proxy.reading()


class TestStaleSubstitutionBypassesCache:
    def test_stale_serve_comes_from_supervisor_not_cache(self):
        app, clock, driver, recorder = build(
            stale=StalePolicy("last_known")
        )
        clock.advance(60.0)  # healthy sweep: reads 1.0, supervisor
        assert recorder.payloads[-1] == [1.0]  # caches last_known
        driver.down = True
        hits_before = app.read_cache.stats()["hits"]
        clock.advance(60.0)  # cache entry (10 s TTL) long expired
        # The cohort stayed full via the supervisor's last-known value.
        assert recorder.payloads[-1] == [1.0]
        assert app.metrics.value("supervision_stale_serves_total") == 1
        # The substitution did not go through the cache (no hit) and
        # did not repopulate it (no fresh entry afterwards).
        assert app.read_cache.stats()["hits"] == hits_before
        assert app.read_cache.peek("s-0", "reading") is None
        supervisor = app.supervision.supervisor("s-0")
        assert supervisor.last_known("reading") is not None

    def test_skip_policy_with_cache_just_shrinks_the_cohort(self):
        app, clock, driver, recorder = build(stale=StalePolicy("skip"))
        clock.advance(60.0)
        driver.down = True
        clock.advance(60.0)
        assert recorder.payloads[-1] == []


class TestFailuresAreNotCached:
    def test_failed_read_caches_nothing_and_counts_one_breaker_tick(self):
        app, __, __driver, __recorder = build()
        proxy = app.discover.device("s-0")
        with pytest.raises(DeviceUnavailableError):
            proxy.flaky()
        assert len(app.read_cache) == 0
        assert app.read_cache.peek("s-0", "flaky") is None
        # The breaker saw exactly the one real failure; a retry after
        # recovery is a fresh driver call, not a cached error.
        supervisor = app.supervision.supervisor("s-0")
        assert supervisor.breaker.state is OPEN

    def test_recovery_reads_through_after_breaker_closes(self):
        app, clock, driver, __recorder = build()
        proxy = app.discover.device("s-0")
        # Trip the breaker, then wait out the backoff; the half-open
        # probe is a real driver read (never a cached value).
        with pytest.raises(DeviceUnavailableError):
            proxy.flaky()
        supervisor = app.supervision.supervisor("s-0")
        assert supervisor.breaker.state is OPEN
        clock.advance(600.0)
        assert proxy.reading() == 1.0  # successful probe closes it
        assert supervisor.breaker.state is CLOSED
        assert driver.reads == 1
