"""Chaos injection on the columnar batch read path.

Before the batch path learned about chaos, wrapping a driver silently
opted its whole cohort out of injection (``ChaosDriver`` had no
``batch_key``), so fault plans never exercised batched deployments.
These tests pin the repaired contract: an inactive plan stays invisible
to batching, a latency fault is *absorbed* by the cohort (the
masked-straggler pathology the tuning benchmark trades against), and an
outage on any member fails the one batch RPC and demotes the cohort to
scalar reads with full per-entity supervision accounting.
"""

from repro.faults.chaos import ChaosInjector, FaultPlan
from repro.faults.policy import SupervisionPolicy
from repro.runtime.app import Application
from repro.runtime.config import RuntimeConfig
from repro.runtime.component import Context
from repro.runtime.clock import SimulationClock
from repro.runtime.plan import BatchConfig
from repro.sema.analyzer import analyze
from repro.simulation.sensors import FleetSubstrate

DESIGN = """\
device PresenceSensor {
    source presence as Boolean;
}

context Count as Integer {
    when periodic presence from PresenceSensor <1 min>
    always publish;
}
"""


class CountImpl(Context):
    def __init__(self):
        super().__init__()
        self.sizes = []

    def on_periodic_presence(self, readings, discover):
        self.sizes.append(len(readings))
        return len(readings)


def build_app(sensors=6, supervised=True):
    clock = SimulationClock()
    config = RuntimeConfig(
        clock=clock,
        batch=BatchConfig(enabled=True, min_column=2),
        supervision=SupervisionPolicy(
            max_retries=0, failure_threshold=3, jitter=0.0
        )
        if supervised
        else None,
    )
    app = Application(analyze(DESIGN), config)
    count = app.implement("Count", CountImpl())
    substrate = FleetSubstrate(
        clock, seed=7, models={"presence": lambda draw: draw < 0.5}
    )
    for index in range(sensors):
        app.create_device(
            "PresenceSensor", f"s-{index}", substrate.driver("presence")
        )
    app.start()
    return app, count


class TestChaosBatchKey:
    def test_wrapped_cohort_still_batches(self):
        app, count = build_app()
        plan = FaultPlan(seed=1).outage(
            "PresenceSensor", start=10_000_000.0, duration=60.0
        )
        ChaosInjector(app, plan).attach()
        app.advance(180.0)
        assert count.sizes == [6, 6, 6]
        assert app.metrics.value("sweep_batch_reads_total") == 3
        assert app.metrics.value("sweep_batch_demoted_total") == 0

    def test_unbatchable_inner_driver_stays_scalar(self):
        from repro.runtime.device import CallableDriver

        driver = CallableDriver(sources={"presence": lambda: True})
        app = Application(
            analyze(DESIGN),
            RuntimeConfig(clock=SimulationClock()),
        )
        app.implement("Count", CountImpl())
        instance = app.create_device("PresenceSensor", "s-0", driver)
        plan = FaultPlan(seed=1).outage(
            "PresenceSensor", start=10_000_000.0, duration=60.0
        )
        ChaosInjector(app, plan).attach()
        # Delegation preserves the inner driver's opt-out.
        assert instance.driver.batch_key("presence") is None


class TestLatencyIsAbsorbed:
    def test_batch_inherits_worst_member_latency(self):
        app, count = build_app()
        plan = FaultPlan(seed=1).latency(
            entity_ids=["s-0", "s-3"],
            start=0.0,
            duration=120.0,
            latency_seconds=3.0,
        )
        injector = ChaosInjector(app, plan).attach()
        app.advance(60.0)
        # The cohort batched (no demotion) despite the straggler...
        assert count.sizes == [6]
        assert app.metrics.value("sweep_batch_reads_total") == 1
        assert app.metrics.value("sweep_batch_demoted_total") == 0
        # ...and the batch carries the worst member's injected delay.
        wrapped = app.registry.get("s-0").driver
        assert wrapped.last_injected_batch_latency == 3.0
        assert injector.injected_latency_reads == 1
        # No breaker saw anything: the straggler is masked.
        assert app.supervision.stats()["breaker_opens"] == 0


class TestOutageDemotesTheCohort:
    def test_any_down_member_fails_the_batch_rpc(self):
        app, count = build_app()
        plan = FaultPlan(seed=1).outage(
            entity_ids=["s-0"], start=0.0, duration=90.0
        )
        injector = ChaosInjector(app, plan).attach()
        app.advance(60.0)
        # Sweep 1: the batch RPC fails, the cohort demotes to scalar
        # reads, and only the dark entity is lost from the payload.
        assert count.sizes == [5]
        assert app.metrics.value("sweep_batch_reads_total") == 0
        assert app.metrics.value("sweep_batch_demoted_total") == 6
        assert injector.injected_failures >= 2  # batch probe + scalar
        app.advance(60.0)
        # Sweep 2 (fault over): the cohort batches whole again.
        assert count.sizes == [5, 6]
        assert app.metrics.value("sweep_batch_reads_total") == 1
