"""Degraded delivery and health-aware discovery under supervision.

The scenarios the redesign promises: a supervised fleet keeps its
periodic gathers (and their ``grouped by ... every`` windows) closing
with full cohorts while sensors are dark, and chronically failing
entities drop out of ``instances_of`` until a probe succeeds.
"""

import pytest

from repro.errors import DeliveryError, DeviceUnavailableError
from repro.faults.policy import StalePolicy, SupervisionPolicy
from repro.runtime.app import Application
from repro.runtime.clock import SimulationClock
from repro.runtime.component import Context
from repro.runtime.config import RuntimeConfig
from repro.runtime.device import DeviceDriver
from repro.sema.analyzer import analyze

DESIGN = """\
device Sensor {
    attribute zone as ZoneEnum;
    source reading as Float;
}

enumeration ZoneEnum { NORTH, SOUTH }

context ZoneSweep as Integer {
    when periodic reading from Sensor <1 min>
    grouped by zone
    always publish;
}

context ZoneWindow as Integer {
    when periodic reading from Sensor <1 min>
    grouped by zone every <3 min>
    always publish;
}
"""


class FlakySensor(DeviceDriver):
    """Constant-value sensor with a kill switch."""

    def __init__(self, value: float):
        self.value = value
        self.down = False

    def read(self, source: str) -> float:
        if self.down:
            raise DeliveryError("sensor is dark")
        return self.value


class GroupRecorder(Context):
    """Records every grouped delivery it receives."""

    def __init__(self):
        super().__init__()
        self.deliveries = []

    def on_periodic_reading(self, by_zone, discover):
        self.deliveries.append(
            {zone: list(values) for zone, values in by_zone.items()}
        )
        return sum(len(values) for values in by_zone.values())


POLICY = SupervisionPolicy(
    max_retries=0,
    failure_threshold=1,
    backoff_base_seconds=600.0,
    jitter=0.0,
    quarantine_after=None,
)


def build(policy=POLICY, stale=StalePolicy("last_known")):
    clock = SimulationClock()
    app = Application(
        analyze(DESIGN),
        RuntimeConfig(clock=clock, supervision=policy, stale=stale),
    )
    sweeps, windows = GroupRecorder(), GroupRecorder()
    app.implement("ZoneSweep", sweeps)
    app.implement("ZoneWindow", windows)
    drivers = {}
    for zone, entity_id, value in (
        ("NORTH", "n-0", 1.0),
        ("NORTH", "n-1", 2.0),
        ("SOUTH", "s-0", 3.0),
        ("SOUTH", "s-1", 4.0),
    ):
        drivers[entity_id] = FlakySensor(value)
        app.create_device("Sensor", entity_id, drivers[entity_id], zone=zone)
    app.start()
    return app, drivers, sweeps, windows


class TestStaleServingIntoSweeps:
    def test_last_known_keeps_the_cohort_full(self):
        app, drivers, sweeps, __ = build()
        app.advance(60)  # one clean sweep caches every value
        drivers["n-0"].down = True
        app.advance(120)
        # Every sweep still sees both NORTH sensors: the dark one is
        # served from its last known value.
        for delivery in sweeps.deliveries:
            assert sorted(delivery) == ["NORTH", "SOUTH"]
            assert sorted(delivery["NORTH"]) == [1.0, 2.0]
        assert app.supervision.stats()["stale_serves"] > 0
        assert app.stats["gather_errors"] > 0

    def test_skip_mode_shrinks_the_cohort(self):
        app, drivers, sweeps, __ = build(stale=StalePolicy("skip"))
        app.advance(60)
        drivers["n-0"].down = True
        app.advance(60)
        assert sweeps.deliveries[-1]["NORTH"] == [2.0]
        assert app.supervision.stats()["stale_serves"] == 0

    def test_fail_mode_propagates(self):
        app, drivers, __, __ = build(stale=StalePolicy("fail"))
        app.advance(60)
        drivers["n-0"].down = True
        with pytest.raises(DeviceUnavailableError):
            app.advance(60)

    def test_max_age_expires_the_cache(self):
        app, drivers, sweeps, __ = build(
            stale=StalePolicy("last_known", max_age_seconds=90.0)
        )
        app.advance(60)
        drivers["n-0"].down = True
        app.advance(180)
        # The cached value aged past 90s, so later sweeps drop to skip
        # behaviour for that entity.
        assert sweeps.deliveries[-1]["NORTH"] == [2.0]


class TestStaleServingIntoWindows:
    def test_window_closes_with_full_cohort(self):
        app, drivers, __, windows = build()
        app.advance(180)  # first 3-sweep window, all healthy
        assert len(windows.deliveries) == 1
        drivers["n-0"].down = True
        app.advance(180)  # second window rides on stale values
        assert len(windows.deliveries) == 2
        degraded_window = windows.deliveries[-1]
        # 2 sensors x 3 sweeps per zone, dark sensor included: the
        # accumulated window is indistinguishable in shape from a
        # healthy one.
        assert sorted(degraded_window) == ["NORTH", "SOUTH"]
        assert sorted(degraded_window["NORTH"]) == [1.0, 1.0, 1.0,
                                                    2.0, 2.0, 2.0]
        assert sorted(degraded_window["SOUTH"]) == [3.0, 3.0, 3.0,
                                                    4.0, 4.0, 4.0]


QUARANTINE_POLICY = SupervisionPolicy(
    max_retries=0,
    failure_threshold=1,
    backoff_base_seconds=120.0,
    jitter=0.0,
    quarantine_after=1,
)


class TestQuarantineAndDiscovery:
    def test_quarantined_entity_leaves_discovery(self):
        app, drivers, __, __ = build(policy=QUARANTINE_POLICY)
        drivers["n-0"].down = True
        app.advance(60)  # first failed sweep trips and quarantines
        assert app.supervision.health_of("n-0") == "quarantined"
        visible = {
            i.entity_id for i in app.registry.instances_of("Sensor")
        }
        assert visible == {"n-1", "s-0", "s-1"}

    def test_health_filters(self):
        app, drivers, __, __ = build(policy=QUARANTINE_POLICY)
        drivers["n-0"].down = True
        app.advance(60)
        registry = app.registry
        quarantined = registry.instances_of(
            "Sensor", health="quarantined", include_quarantined=True
        )
        assert [i.entity_id for i in quarantined] == ["n-0"]
        healthy = registry.instances_of("Sensor", health="healthy")
        assert {i.entity_id for i in healthy} == {"n-1", "s-0", "s-1"}
        everyone = registry.instances_of("Sensor", include_quarantined=True)
        assert len(everyone) == 4

    def test_probe_success_restores_the_entity(self):
        app, drivers, __, __ = build(policy=QUARANTINE_POLICY)
        drivers["n-0"].down = True
        app.advance(60)
        assert app.supervision.health_of("n-0") == "quarantined"
        drivers["n-0"].down = False
        # The gather keeps probing quarantined entities; once the 120s
        # open window elapses the next sweep's read is the probe.
        app.advance(180)
        assert app.supervision.health_of("n-0") == "healthy"
        visible = {
            i.entity_id for i in app.registry.instances_of("Sensor")
        }
        assert "n-0" in visible
        stats = app.supervision.stats()
        assert stats["quarantines"] == 1
        assert stats["recoveries"] == 1

    def test_breaker_transitions_reach_app_metrics(self):
        app, drivers, __, __ = build(policy=QUARANTINE_POLICY)
        drivers["n-0"].down = True
        app.advance(60)
        drivers["n-0"].down = False
        app.advance(180)
        metrics = app.metrics
        assert metrics.value("supervision_breaker_opens_total") == 1
        assert metrics.value("supervision_breaker_half_opens_total") == 1
        assert metrics.value("supervision_breaker_closes_total") == 1
        assert metrics.value("supervision_quarantined_entities") == 0
