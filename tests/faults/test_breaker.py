"""Circuit breaker state machine on the simulation clock.

Every timing assertion here is exact: breaker windows are computed from
``clock.now()``, and the policies use ``jitter=0`` (or a fixed seed), so
open -> half-open -> closed traces replay bit for bit.
"""

import random

import pytest

from repro.faults.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.faults.policy import SupervisionPolicy
from repro.runtime.clock import SimulationClock

POLICY = SupervisionPolicy(
    failure_threshold=2,
    backoff_base_seconds=10.0,
    backoff_factor=2.0,
    backoff_max_seconds=40.0,
    jitter=0.0,
)


def make_breaker(policy=POLICY, transitions=None):
    clock = SimulationClock()
    listener = None
    if transitions is not None:
        def listener(old, new):
            transitions.append((old, new))
    breaker = CircuitBreaker(
        policy, clock, random.Random(0), on_transition=listener
    )
    return breaker, clock


class TestClosedState:
    def test_starts_closed_and_allows(self):
        breaker, __ = make_breaker()
        assert breaker.state is CLOSED
        assert breaker.allow()

    def test_failures_below_threshold_stay_closed(self):
        breaker, __ = make_breaker()
        breaker.record_failure()
        assert breaker.state is CLOSED
        assert breaker.allow()

    def test_success_resets_the_consecutive_count(self):
        breaker, __ = make_breaker()
        for __unused in range(5):
            breaker.record_failure()
            breaker.record_success()
        assert breaker.state is CLOSED

    def test_threshold_trips_open(self):
        breaker, __ = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is OPEN
        assert not breaker.allow()
        assert breaker.trip_count == 1


class TestOpenToHalfOpenToClosed:
    def test_full_recovery_cycle(self):
        transitions = []
        breaker, clock = make_breaker(transitions=transitions)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.open_until == pytest.approx(10.0)

        clock.advance(9.9)
        assert not breaker.allow()  # window not yet elapsed

        clock.advance(0.1)
        assert breaker.allow()  # lazy open -> half-open transition
        assert breaker.state is HALF_OPEN

        breaker.record_success()
        assert breaker.state is CLOSED
        assert breaker.trip_count == 0
        assert transitions == [
            (CLOSED, OPEN),
            (OPEN, HALF_OPEN),
            (HALF_OPEN, CLOSED),
        ]

    def test_half_open_failure_retrips_with_longer_window(self):
        breaker, clock = make_breaker()
        breaker.record_failure()
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()  # failed probe
        assert breaker.state is OPEN
        assert breaker.trip_count == 2
        # Second trip doubles the backoff: 10 -> 20 seconds.
        assert breaker.open_until == pytest.approx(clock.now() + 20.0)
        clock.advance(19.0)
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.allow()

    def test_multiple_probes_required_when_configured(self):
        policy = SupervisionPolicy(
            failure_threshold=1,
            backoff_base_seconds=10.0,
            jitter=0.0,
            half_open_probes=2,
        )
        breaker, clock = make_breaker(policy)
        breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is HALF_OPEN  # one probe is not enough
        breaker.record_success()
        assert breaker.state is CLOSED

    def test_closing_resets_the_backoff_ladder(self):
        breaker, clock = make_breaker()
        for __unused in range(2):
            breaker.record_failure()
            breaker.record_failure()
            clock.advance(breaker.open_until - clock.now())
            assert breaker.allow()
            breaker.record_success()
            assert breaker.state is CLOSED
        # Both cycles used the first-rung 10s window (trips reset on
        # close), so total elapsed time is exactly two base windows.
        assert clock.now() == pytest.approx(20.0)


class TestBackoffSchedule:
    def test_exponential_with_cap(self):
        rng = random.Random(0)
        durations = [POLICY.open_duration(n, rng) for n in (1, 2, 3, 4, 5)]
        assert durations == [10.0, 20.0, 40.0, 40.0, 40.0]

    def test_jitter_is_bounded_and_seeded(self):
        policy = SupervisionPolicy(
            backoff_base_seconds=100.0, backoff_max_seconds=100.0, jitter=0.2
        )
        jittered = [
            policy.open_duration(1, random.Random(seed)) for seed in range(50)
        ]
        assert all(80.0 <= duration <= 120.0 for duration in jittered)
        assert len(set(jittered)) > 1  # jitter actually varies
        # Same seed -> same duration: breaker traces are replayable.
        assert policy.open_duration(1, random.Random(7)) == pytest.approx(
            policy.open_duration(1, random.Random(7))
        )


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"failure_threshold": 0},
            {"backoff_base_seconds": 0.0},
            {"backoff_factor": 0.5},
            {"jitter": 1.0},
            {"jitter": -0.1},
            {"half_open_probes": 0},
            {"quarantine_after": 0},
        ],
    )
    def test_rejects_bad_fields(self, kwargs):
        with pytest.raises(ValueError):
            SupervisionPolicy(**kwargs)
