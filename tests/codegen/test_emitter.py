"""The indentation-aware code emitter."""

from repro.codegen.emitter import Emitter


class TestEmitter:
    def test_lines_and_render(self):
        emitter = Emitter()
        emitter.line("a = 1")
        emitter.line("b = 2")
        assert emitter.render() == "a = 1\nb = 2\n"

    def test_indentation_guard(self):
        emitter = Emitter()
        emitter.line("class Foo:")
        with emitter.indented():
            emitter.line("def bar(self):")
            with emitter.indented():
                emitter.line("return 1")
        assert emitter.render() == (
            "class Foo:\n    def bar(self):\n        return 1\n"
        )

    def test_indent_restored_after_guard(self):
        emitter = Emitter()
        with emitter.indented():
            emitter.line("inner")
        emitter.line("outer")
        assert emitter.render() == "    inner\nouter\n"

    def test_blank_lines_carry_no_indent(self):
        emitter = Emitter()
        with emitter.indented():
            emitter.line("x")
            emitter.blank()
            emitter.line("y")
        assert emitter.render() == "    x\n\n    y\n"

    def test_empty_line_via_line(self):
        emitter = Emitter()
        emitter.line("")
        assert emitter.render() == "\n"

    def test_lines_helper(self):
        emitter = Emitter()
        emitter.lines(["a", "b"])
        assert emitter.render() == "a\nb\n"

    def test_short_docstring_single_line(self):
        emitter = Emitter()
        emitter.docstring("One liner.")
        assert emitter.render() == '"""One liner."""\n'

    def test_long_docstring_multi_line(self):
        emitter = Emitter()
        emitter.docstring("First paragraph.", "Second paragraph\nwith wrap.")
        rendered = emitter.render()
        assert rendered.startswith('"""First paragraph.\n')
        assert rendered.endswith('"""\n')
        assert "Second paragraph" in rendered

    def test_line_count(self):
        emitter = Emitter()
        emitter.line("x")
        emitter.blank(2)
        assert emitter.line_count == 3

    def test_generated_code_compiles(self):
        emitter = Emitter()
        emitter.line("def f(x):")
        with emitter.indented():
            emitter.docstring("Doubles x.")
            emitter.line("return x * 2")
        namespace = {}
        exec(emitter.render(), namespace)
        assert namespace["f"](4) == 8
