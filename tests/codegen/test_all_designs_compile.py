"""The compiler handles every bundled design, end to end."""

import pytest

from repro.apps.avionics.design import DESIGN_SOURCE as AVIONICS
from repro.apps.cooker.design import DESIGN_SOURCE as COOKER
from repro.apps.homeassist.design import DESIGN_SOURCE as HOMEASSIST
from repro.apps.parking.design import DESIGN_SOURCE as PARKING
from repro.apps.pollution.design import DESIGN_SOURCE as POLLUTION
from repro.codegen.framework_gen import compile_design
from repro.codegen.stub_gen import generate_stubs
from repro.sema.analyzer import analyze

ALL_DESIGNS = [
    ("Cooker", COOKER),
    ("Parking", PARKING),
    ("Avionics", AVIONICS),
    ("HomeAssist", HOMEASSIST),
    ("Pollution", POLLUTION),
]


@pytest.mark.parametrize("name,source", ALL_DESIGNS)
class TestEveryDesign:
    def test_framework_compiles_and_registry_is_complete(self, name,
                                                         source):
        module = compile_design(source, name)
        framework_class = getattr(module, f"{name}Framework")
        design = analyze(source)
        expected = set(design.contexts) | set(design.controllers)
        assert set(framework_class.ABSTRACTS) == expected

    def test_every_abstract_subclasses_the_right_base(self, name, source):
        from repro.runtime.component import Context, Controller

        module = compile_design(source, name)
        design = analyze(source)
        framework_class = getattr(module, f"{name}Framework")
        for component, abstract in framework_class.ABSTRACTS.items():
            if component in design.contexts:
                assert issubclass(abstract, Context)
            else:
                assert issubclass(abstract, Controller)

    def test_driver_base_per_device(self, name, source):
        module = compile_design(source, name)
        design = analyze(source)
        for device in design.devices:
            assert hasattr(module, f"Abstract{device}Driver"), device

    def test_structure_and_enumeration_classes(self, name, source):
        module = compile_design(source, name)
        design = analyze(source)
        for enum_decl in design.spec.enumerations:
            cls = getattr(module, enum_decl.name)
            assert cls.MEMBERS == tuple(enum_decl.members)
        for struct_decl in design.spec.structures:
            assert hasattr(module, struct_decl.name)

    def test_stubs_compile(self, name, source):
        stubs = generate_stubs(source, name)
        compile(stubs, f"<{name}-stubs>", "exec")

    def test_embedded_design_reanalyzes_identically(self, name, source):
        module = compile_design(source, name)
        original = analyze(source)
        assert module.DESIGN.graph.render() == original.graph.render()
