"""Generated-code accounting (the 80 % claim, C1)."""

from repro.apps.cooker.design import DESIGN_SOURCE as COOKER
from repro.codegen.report import measure_generation


class TestGenerationReport:
    def test_fields_populated(self):
        report = measure_generation(COOKER, "x = 1\ny = 2\n", name="Cooker")
        assert report.design_loc > 0
        assert report.generated_loc > report.design_loc
        assert report.handwritten_loc == 2

    def test_ratio_definition(self):
        report = measure_generation(COOKER, "x = 1\n" * 10, name="Cooker")
        expected = report.generated_loc / (
            report.generated_loc + report.handwritten_loc
        )
        assert report.generated_ratio == expected

    def test_leverage(self):
        report = measure_generation(COOKER, "", name="Cooker")
        assert report.leverage == report.generated_loc / report.design_loc
        assert report.leverage > 1.0

    def test_empty_handwritten(self):
        report = measure_generation(COOKER, "", name="Cooker")
        assert report.generated_ratio == 1.0

    def test_row_formatting(self):
        report = measure_generation(COOKER, "x = 1\n", name="Cooker")
        row = report.row("cooker")
        assert "cooker" in row
        assert "%" in row

    def test_paper_claim_shape_for_typical_app(self):
        """A typical implementation (~100 lines) against the cooker design
        lands in the paper's 'up to 80%' generated-code regime."""
        handwritten = "\n".join(f"line_{i} = {i}" for i in range(100))
        report = measure_generation(COOKER, handwritten, name="Cooker")
        assert report.generated_ratio > 0.5
