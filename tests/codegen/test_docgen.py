"""The design documentation generator."""

import pytest

from repro.apps.parking.design import DESIGN_SOURCE as PARKING
from repro.cli import main
from repro.codegen.docgen import generate_docs


@pytest.fixture(scope="module")
def parking_docs():
    return generate_docs(PARKING, "Parking management")


class TestStructure:
    def test_title_and_summary(self, parking_docs):
        assert parking_docs.startswith("# Parking management\n")
        assert "5 device type(s), 4 context(s), 3 controller(s)" in (
            parking_docs
        )

    def test_devices_section(self, parking_docs):
        assert "### PresenceSensor" in parking_docs
        assert "`parkingLot` : ParkingLotEnum" in parking_docs
        assert "`presence` : Boolean" in parking_docs

    def test_inheritance_annotated(self, parking_docs):
        assert "### ParkingEntrancePanel *(extends DisplayPanel)*" in (
            parking_docs
        )
        assert "*(from DisplayPanel)*" in parking_docs

    def test_data_types_section(self, parking_docs):
        assert "enumeration `ParkingLotEnum`: A22, B16, D6" in parking_docs
        assert ("structure `Availability` { parkingLot: ParkingLotEnum, "
                "count: Integer }") in parking_docs

    def test_contexts_in_layer_order(self, parking_docs):
        availability = parking_docs.index("### ParkingAvailability")
        suggestion = parking_docs.index("### ParkingSuggestion")
        assert availability < suggestion

    def test_interaction_descriptions(self, parking_docs):
        assert ("gathers `presence` from `PresenceSensor` every <10 min>, "
                "grouped by `parkingLot` via MapReduce (Boolean → Integer)"
                ) in parking_docs
        assert "accumulated over <24 hr>" in parking_docs
        assert "serves query-driven pulls (`when required`)" in parking_docs
        assert "queries context `ParkingUsagePattern`" in parking_docs

    def test_controllers_section(self, parking_docs):
        assert ("- on `ParkingAvailability` → `update` on "
                "`ParkingEntrancePanel`") in parking_docs

    def test_functional_chains_section(self, parking_docs):
        assert "## Functional chains" in parking_docs
        assert "PresenceSensor → ParkingAvailability" in parking_docs


class TestDetails:
    def test_expect_clauses_documented(self):
        docs = generate_docs(
            "device S { source v as Float expect timeout <1 s> retry 2; }\n"
            "context C as Float { expect deadline <5 ms>; "
            "when provided v from S always publish; }\n"
        )
        assert "*(expect timeout 1.0s, retry 2)*" in docs
        assert "QoS deadline: <5 ms>." in docs

    def test_warnings_documented(self):
        docs = generate_docs("device Lonely { }")
        assert "## Warnings" in docs
        assert "Lonely" in docs

    def test_no_warning_section_when_clean(self, parking_docs):
        assert "## Warnings" not in parking_docs


class TestCliDoc:
    def test_doc_command(self, tmp_path, capsys):
        path = tmp_path / "p.diaspec"
        path.write_text(PARKING, encoding="utf-8")
        assert main(["doc", str(path), "--title", "Parking"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Parking\n")

    def test_default_title_is_filename(self, tmp_path, capsys):
        path = tmp_path / "myapp.diaspec"
        path.write_text("device D { }", encoding="utf-8")
        assert main(["doc", str(path)]) == 0
        assert capsys.readouterr().out.startswith("# myapp\n")
