"""Name conversions shared by the compiler and the runtime."""

from repro.naming import (
    abstract_class_name,
    camel_to_snake,
    class_name,
    context_handler_name,
    event_handler_name,
    periodic_handler_short_name,
    pluralize,
    proxy_set_method_name,
    publishable_name,
    snake_to_camel,
    where_method_name,
)


class TestCamelToSnake:
    def test_simple(self):
        assert camel_to_snake("tickSecond") == "tick_second"

    def test_multiword(self):
        assert camel_to_snake("parkingEntrancePanel") == (
            "parking_entrance_panel"
        )

    def test_leading_capital(self):
        assert camel_to_snake("ParkingAvailability") == "parking_availability"

    def test_acronym_runs(self):
        assert camel_to_snake("HTTPServer") == "http_server"

    def test_digits(self):
        assert camel_to_snake("zone2Sensor") == "zone2_sensor"

    def test_already_snake(self):
        assert camel_to_snake("already_snake") == "already_snake"


class TestSnakeToCamel:
    def test_roundtrip_simple(self):
        assert snake_to_camel("tick_second") == "tickSecond"

    def test_single_word(self):
        assert snake_to_camel("presence") == "presence"


class TestPaperNames:
    """The generated names match Figures 9-11 (modulo PEP 8 casing)."""

    def test_figure_9_callback(self):
        assert event_handler_name("tickSecond", "Clock") == (
            "on_tick_second_from_clock"
        )

    def test_figure_9_abstract_class(self):
        assert abstract_class_name("Alert") == "AbstractAlert"

    def test_figure_9_publishable(self):
        assert publishable_name("Alert") == "AlertValuePublishable"

    def test_figure_10_periodic_callback(self):
        assert periodic_handler_short_name("presence") == (
            "on_periodic_presence"
        )

    def test_figure_11_controller_callback(self):
        assert context_handler_name("ParkingAvailability") == (
            "on_parking_availability"
        )

    def test_figure_11_where_filter(self):
        assert where_method_name("location") == "where_location"

    def test_figure_11_proxy_set(self):
        assert proxy_set_method_name("ParkingEntrancePanel") == (
            "parking_entrance_panels"
        )


class TestPluralize:
    def test_regular(self):
        assert pluralize("sensor") == "sensors"

    def test_sibilant(self):
        assert pluralize("bus") == "buses"

    def test_y_to_ies(self):
        assert pluralize("battery") == "batteries"

    def test_vowel_y(self):
        assert pluralize("display") == "displays"


class TestClassName:
    def test_identity_for_wellformed(self):
        assert class_name("ParkingAvailability") == "ParkingAvailability"

    def test_capitalizes_first(self):
        assert class_name("alert") == "Alert"
