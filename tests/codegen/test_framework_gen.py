"""Framework generation: the compiler output matches Figures 9-11."""

import pytest

from repro.apps.cooker.design import DESIGN_SOURCE as COOKER
from repro.apps.parking.design import DESIGN_SOURCE as PARKING
from repro.codegen.framework_gen import compile_design, generate_framework


@pytest.fixture(scope="module")
def cooker_module():
    return compile_design(COOKER, "CookerMonitoring")


@pytest.fixture(scope="module")
def parking_module():
    return compile_design(PARKING, "ParkingManagement")


class TestGeneratedSource:
    def test_source_is_valid_python(self):
        source = generate_framework(COOKER, "CookerMonitoring")
        compile(source, "<test>", "exec")

    def test_design_embedded_and_reanalyzable(self, cooker_module):
        assert "Alert" in cooker_module.DESIGN.contexts
        assert "device Clock" in cooker_module.DESIGN_SOURCE

    def test_do_not_edit_marker(self):
        assert "DO NOT EDIT" in generate_framework(COOKER)


class TestFigure9Artifacts:
    """The generated Alert support matches Figure 9."""

    def test_abstract_alert_exists(self, cooker_module):
        assert hasattr(cooker_module, "AbstractAlert")

    def test_callback_signature(self, cooker_module):
        import inspect

        signature = inspect.signature(
            cooker_module.AbstractAlert.on_tick_second_from_clock
        )
        assert list(signature.parameters) == [
            "self",
            "tick_second_from_clock",
            "discover",
        ]

    def test_callback_raises_until_implemented(self, cooker_module):
        instance = cooker_module.AbstractAlert()
        with pytest.raises(NotImplementedError):
            instance.on_tick_second_from_clock(None, None)

    def test_publishable_alias(self, cooker_module):
        from repro.runtime.component import Publishable

        assert cooker_module.AlertValuePublishable is Publishable

    def test_get_helper_generated(self, cooker_module):
        assert hasattr(
            cooker_module.AbstractAlert, "get_consumption_from_cooker"
        )

    def test_metadata_attributes(self, cooker_module):
        assert cooker_module.AbstractAlert.CONTEXT_NAME == "Alert"
        assert cooker_module.AbstractAlert.RESULT_TYPE == "Integer"


class TestFigure10Artifacts:
    """The generated ParkingAvailability support matches Figure 10."""

    def test_mapreduce_interface_inherited(self, parking_module):
        from repro.mapreduce.api import MapReduce

        assert issubclass(
            parking_module.AbstractParkingAvailability, MapReduce
        )

    def test_map_reduce_abstract(self, parking_module):
        instance = parking_module.AbstractParkingAvailability()
        with pytest.raises(NotImplementedError):
            instance.map("A22", True, None)
        with pytest.raises(NotImplementedError):
            instance.reduce("A22", [True], None)

    def test_periodic_callback(self, parking_module):
        import inspect

        signature = inspect.signature(
            parking_module.AbstractParkingAvailability.on_periodic_presence
        )
        assert list(signature.parameters) == [
            "self",
            "presence_by_parking_lot",
            "discover",
        ]

    def test_structure_classes_generated(self, parking_module):
        availability = parking_module.Availability("A22", 3)
        assert availability.as_dict() == {"parkingLot": "A22", "count": 3}
        assert availability == parking_module.Availability("A22", 3)
        assert "A22" in repr(availability)

    def test_enumeration_classes_generated(self, parking_module):
        assert parking_module.ParkingLotEnum.A22 == "A22"
        assert "B16" in parking_module.ParkingLotEnum.MEMBERS
        assert parking_module.UsagePatternEnum.MEMBERS == (
            "HIGH", "MODERATE", "LOW",
        )


class TestFigure11Artifacts:
    """The generated controller support matches Figure 11."""

    def test_controller_callback(self, parking_module):
        controller = parking_module.AbstractParkingEntrancePanelController
        assert hasattr(controller, "on_parking_availability")

    def test_do_helper_generated(self, parking_module):
        controller = parking_module.AbstractParkingEntrancePanelController
        assert hasattr(controller, "do_update_on_parking_entrance_panel")

    def test_when_required_helper(self, parking_module):
        framework = parking_module.ParkingManagementFramework
        assert hasattr(framework, "query_parking_usage_pattern")


class TestDeviceDrivers:
    def test_driver_bases_generated(self, cooker_module):
        assert hasattr(cooker_module, "AbstractClockDriver")
        assert hasattr(cooker_module, "AbstractCookerDriver")

    def test_driver_inheritance_mirrors_device_extends(self, parking_module):
        assert issubclass(
            parking_module.AbstractParkingEntrancePanelDriver,
            parking_module.AbstractDisplayPanelDriver,
        )

    def test_reader_abstract(self, cooker_module):
        driver = cooker_module.AbstractCookerDriver()
        with pytest.raises(NotImplementedError):
            driver.read_consumption()

    def test_push_helper_for_indexed_source(self, cooker_module):
        import inspect

        signature = inspect.signature(
            cooker_module.AbstractTVPrompterDriver.push_answer
        )
        assert "question_id" in signature.parameters


class TestFrameworkConformance:
    def test_rejects_non_subclass(self, cooker_module):
        from repro.runtime.component import Context

        class Rogue(Context):
            def on_tick_second_from_clock(self, event, discover):
                return None

        framework = cooker_module.CookerMonitoringFramework()
        with pytest.raises(TypeError, match="AbstractAlert"):
            framework.implement("Alert", Rogue)

    def test_rejects_unknown_name(self, cooker_module):
        framework = cooker_module.CookerMonitoringFramework()
        with pytest.raises(TypeError, match="not a context"):
            framework.implement("Ghost", object)

    def test_accepts_subclass(self, cooker_module):
        class Alert(cooker_module.AbstractAlert):
            def on_tick_second_from_clock(self, event, discover):
                return None

        framework = cooker_module.CookerMonitoringFramework()
        assert framework.implement_alert(Alert()) is not None

    def test_named_implement_helpers_exist(self, parking_module):
        framework = parking_module.ParkingManagementFramework
        for name in (
            "implement_parking_availability",
            "implement_parking_suggestion",
            "implement_messenger_controller",
        ):
            assert hasattr(framework, name)

    def test_device_factories_take_snake_attributes(self, parking_module):
        import inspect

        factory = (
            parking_module.ParkingManagementFramework.create_presence_sensor
        )
        assert list(inspect.signature(factory).parameters) == [
            "self",
            "entity_id",
            "driver",
            "parking_lot",
        ]


class TestModuleCompilation:
    def test_compile_design_returns_module(self, cooker_module):
        assert cooker_module.__source__.startswith('"""')

    def test_custom_module_name(self):
        module = compile_design(COOKER, "Foo", module_name="my_mod")
        assert module.__name__ == "my_mod"
