"""Stub generation: the developer skeleton of Figures 9-10."""

import pytest

from repro.apps.cooker.design import DESIGN_SOURCE as COOKER
from repro.apps.parking.design import DESIGN_SOURCE as PARKING
from repro.codegen.stub_gen import generate_stubs


class TestStubShape:
    def test_stubs_are_valid_python(self):
        compile(generate_stubs(COOKER, "Cooker"), "<stubs>", "exec")
        compile(generate_stubs(PARKING, "Parking"), "<stubs>", "exec")

    def test_todo_markers_present(self):
        stubs = generate_stubs(COOKER)
        assert "# TODO Auto-generated method stub" in stubs

    def test_one_class_per_component(self):
        stubs = generate_stubs(COOKER)
        for name in ("Alert", "Notify", "RemoteTurnOff", "TurnOff"):
            assert f"class {name}(Abstract{name})" in stubs

    def test_mapreduce_stubs_for_figure_10(self):
        stubs = generate_stubs(PARKING)
        assert "def map(self, key, value, collector):" in stubs
        assert "def reduce(self, key, values, collector):" in stubs

    def test_when_required_stub(self):
        stubs = generate_stubs(PARKING)
        assert "def when_required(self, discover):" in stubs

    def test_periodic_argument_names(self):
        stubs = generate_stubs(PARKING)
        assert "presence_by_parking_lot" in stubs

    def test_stub_methods_raise(self):
        stubs = generate_stubs(COOKER, framework_module="framework")
        namespace = {}
        # Provide fake abstract bases so the stub module can execute.
        import types

        framework = types.ModuleType("framework")
        for line in stubs.splitlines():
            if line.startswith("class "):
                base = line.split("(")[1].rstrip("):")
                setattr(framework, base, type(base, (), {}))
        import sys

        sys.modules["framework"] = framework
        try:
            exec(compile(stubs, "<stubs>", "exec"), namespace)
        finally:
            del sys.modules["framework"]
        alert = namespace["Alert"]()
        with pytest.raises(NotImplementedError):
            alert.on_tick_second_from_clock(None, None)
