"""Running applications written against *generated* frameworks.

This is the paper's full workflow: design → compiler → framework →
developer subclasses → running application (Section V).
"""

import pytest

from repro.apps.cooker.design import DESIGN_SOURCE as COOKER
from repro.apps.parking.design import DESIGN_SOURCE as PARKING
from repro.codegen.framework_gen import compile_design
from repro.runtime.device import CallableDriver


@pytest.fixture(scope="module")
def cooker_module():
    return compile_design(COOKER, "CookerMonitoring")


@pytest.fixture(scope="module")
def parking_module():
    return compile_design(PARKING, "ParkingManagement")


class TestCookerViaGeneratedFramework:
    def test_full_chain(self, cooker_module):
        mod = cooker_module

        class Alert(mod.AbstractAlert):
            def __init__(self):
                super().__init__()
                self.on_seconds = 0

            def on_tick_second_from_clock(self, tick, discover):
                if self.get_consumption_from_cooker() > 0:
                    self.on_seconds += 1
                else:
                    self.on_seconds = 0
                if self.on_seconds == 3:
                    return mod.AlertValuePublishable(self.on_seconds)
                return None

        class Notify(mod.AbstractNotify):
            def on_alert(self, seconds, discover):
                self.do_ask_question_on_tv_prompter(
                    question=f"on for {seconds}s; turn off?",
                    question_id="q1",
                )

        class RemoteTurnOff(mod.AbstractRemoteTurnOff):
            def on_answer_from_tv_prompter(self, event, discover):
                if event.value == "yes":
                    return self.get_consumption_from_cooker() > 0
                return None

        class TurnOff(mod.AbstractTurnOff):
            def on_remote_turn_off(self, confirmed, discover):
                if confirmed:
                    self.do_off_on_cooker()

        class Prompter(mod.AbstractTVPrompterDriver):
            def __init__(self):
                self.questions = []

            def read_answer(self):
                return ""

            def do_ask_question(self, question, question_id):
                self.questions.append((question_id, question))

        class Cooker(mod.AbstractCookerDriver):
            def __init__(self):
                self.power = 1200.0

            def read_consumption(self):
                return self.power

            def do_on(self):
                self.power = 1200.0

            def do_off(self):
                self.power = 0.0

        framework = mod.CookerMonitoringFramework()
        framework.implement_alert(Alert())
        framework.implement_notify(Notify())
        framework.implement_remote_turn_off(RemoteTurnOff())
        framework.implement_turn_off(TurnOff())
        prompter = Prompter()
        cooker = Cooker()
        framework.create_tv_prompter("tv", prompter)
        framework.create_cooker("cooker", cooker)
        clock_instance = framework.create_clock(
            "clk", CallableDriver(sources={"tickSecond": lambda: 0})
        )
        framework.start()

        for tick in range(3):
            clock_instance.publish("tickSecond", tick)
        assert len(prompter.questions) == 1
        prompter.instance.publish("answer", "yes", index="q1")
        assert cooker.power == 0.0
        assert framework.stats["controller_activations"]["TurnOff"] == 1


class TestParkingViaGeneratedFramework:
    def test_mapreduce_pipeline(self, parking_module):
        mod = parking_module
        updates = []

        class Availability(mod.AbstractParkingAvailability):
            def map(self, lot, presence, collector):
                if not presence:
                    collector.emit_map(lot, True)

            def reduce(self, lot, values, collector):
                collector.emit_reduce(lot, len(values))

            def on_periodic_presence(self, by_lot, discover):
                return [
                    mod.Availability(lot, count)
                    for lot, count in sorted(by_lot.items())
                ]

        class PanelController(
            mod.AbstractParkingEntrancePanelController
        ):
            def on_parking_availability(self, availabilities, discover):
                for availability in availabilities:
                    self.do_update_on_parking_entrance_panel(
                        status=f"FREE: {availability.count}",
                        where={"location": availability.parkingLot},
                    )

        class Usage(mod.AbstractParkingUsagePattern):
            def on_periodic_presence(self, by_lot, discover):
                return None

            def when_required(self, discover):
                return []

        class Occupancy(mod.AbstractAverageOccupancy):
            def on_periodic_presence(self, window, discover):
                return []

        class Suggestion(mod.AbstractParkingSuggestion):
            def on_parking_availability(self, availabilities, discover):
                self.get_parking_usage_pattern()
                return [a.parkingLot for a in availabilities]

        class CityController(mod.AbstractCityEntrancePanelController):
            def on_parking_suggestion(self, lots, discover):
                pass

        class MessengerCtl(mod.AbstractMessengerController):
            def on_average_occupancy(self, occupancies, discover):
                pass

        framework = mod.ParkingManagementFramework()
        framework.implement_parking_availability(Availability())
        framework.implement_parking_usage_pattern(Usage())
        framework.implement_average_occupancy(Occupancy())
        framework.implement_parking_suggestion(Suggestion())
        framework.implement_parking_entrance_panel_controller(
            PanelController()
        )
        framework.implement_city_entrance_panel_controller(CityController())
        framework.implement_messenger_controller(MessengerCtl())

        for lot, free in [("A22", False), ("B16", True)]:
            framework.create_presence_sensor(
                f"s-{lot}",
                CallableDriver(sources={"presence": (lambda f=free: f)}),
                parking_lot=lot,
            )
            framework.create_parking_entrance_panel(
                f"p-{lot}",
                CallableDriver(
                    actions={
                        "update": (
                            lambda status, lot=lot: updates.append(
                                (lot, status)
                            )
                        )
                    }
                ),
                location=lot,
            )
        framework.create_messenger("m", CallableDriver())
        framework.start()
        framework.advance(600)

        assert ("A22", "FREE: 1") in updates
        # B16 is fully occupied: map emitted nothing for it, so it is
        # absent from the reduced dict and its panel never updates —
        # exactly the Figure 10 data flow.
        assert not any(lot == "B16" for lot, __ in updates)

    def test_query_helper(self, parking_module):
        mod = parking_module

        class Usage(mod.AbstractParkingUsagePattern):
            def on_periodic_presence(self, by_lot, discover):
                return None

            def when_required(self, discover):
                return [mod.UsagePattern("A22", "LOW")]

        framework = mod.ParkingManagementFramework()
        framework.implement_parking_usage_pattern(Usage())
        # other components still missing: start() must refuse
        with pytest.raises(Exception):
            framework.start()

    def test_cache_config_flows_through(self, parking_module):
        mod = parking_module
        from repro.api import CacheConfig

        framework = mod.ParkingManagementFramework()
        assert framework.application.read_cache is None  # off by default
        cached = mod.ParkingManagementFramework(
            cache=CacheConfig(enabled=True, ttl_seconds=5.0)
        )
        assert cached.application.read_cache is not None
        assert cached.application.config.cache.ttl_seconds == 5.0

    def test_batch_config_flows_through(self, parking_module):
        mod = parking_module
        from repro.api import BatchConfig

        framework = mod.ParkingManagementFramework()
        assert framework.application.planner is None  # off by default
        assert not framework.application._columnar_reads
        batched = mod.ParkingManagementFramework(
            batch=BatchConfig(enabled=True, min_column=4)
        )
        assert batched.application.planner is not None
        assert batched.application._columnar_reads
        assert batched.application.config.batch.min_column == 4

    def test_shard_config_flows_through(self, parking_module):
        mod = parking_module
        from repro.api import ShardConfig

        framework = mod.ParkingManagementFramework()
        assert framework.application.config.shard.enabled is False
        sharded = mod.ParkingManagementFramework(
            shard=ShardConfig(enabled=True, workers=2)
        )
        assert sharded.application.config.shard.enabled
        assert sharded.application.config.shard.workers == 2


EDGE_DESIGN = """\
device EdgeSensor {
    attribute cell as CellEnum;
    source presence as Boolean;
}
enumeration CellEnum { N1, N2 }

context CellCount as Integer at edge {
    when periodic presence from EdgeSensor <1 min>
    grouped by cell
    with map as Boolean reduce as Integer
    always publish;
}
"""


class TestPlacementThroughGeneratedFramework:
    def test_annotation_survives_embedding(self):
        mod = compile_design(EDGE_DESIGN, "EdgeCells")
        decl = mod.DESIGN.contexts["CellCount"].decl
        assert decl.placement == "edge"

    def test_generated_app_accepts_placement_kwargs(self):
        from repro.api import (
            HopProfile,
            NetworkConfig,
            PlacementConfig,
        )

        mod = compile_design(EDGE_DESIGN, "EdgeCells")

        class CellCount(mod.AbstractCellCount):
            def map(self, cell, presence, collector):
                if presence:
                    collector.emit_map(cell, True)

            def reduce(self, cell, values, collector):
                collector.emit_reduce(cell, len(values))

            def on_periodic_presence(self, by_cell, discover):
                return sum(by_cell.values())

        framework = mod.EdgeCellsFramework(
            network=NetworkConfig(
                hops={"access": HopProfile(), "wan": HopProfile()}
            ),
            placement=PlacementConfig(enabled=True),
        )
        framework.implement_cell_count(CellCount())
        for index in range(4):
            framework.create_edge_sensor(
                f"e-{index}",
                CallableDriver(sources={"presence": lambda: True}),
                cell=f"N{index % 2 + 1}",
            )
        framework.start()
        framework.advance(60.0)
        stats = framework.stats["placement"]
        assert stats["edge_sweeps"] == 1
        assert stats["edge_nodes"] == 2
