"""Compiler handling of the reproduction's design extensions and
synthesized designs."""

import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen.framework_gen import compile_design
from repro.lang.synth import synthesize_design
from repro.runtime.device import CallableDriver
from repro.sema.analyzer import analyze

EXPECT_DESIGN = """\
device Sensor {
    source reading as Float expect timeout <50 ms> retry 2;
}
device Horn { action honk(level as Integer); }

context Watch as Float {
    expect deadline <25 ms>;

    when provided reading from Sensor
    maybe publish;
}

controller K {
    when provided Watch
    do honk on Horn;
}
"""


class TestExpectClausesSurviveCompilation:
    def test_framework_compiles_with_expect_clauses(self):
        module = compile_design(EXPECT_DESIGN, "Guard")
        # The framework embeds the canonical design text: the expect
        # clauses must round-trip through the pretty-printer.
        assert "expect timeout <50 ms> retry 2" in module.DESIGN_SOURCE
        assert "expect deadline <25 ms>" in module.DESIGN_SOURCE

    def test_generated_app_monitors_qos(self):
        module = compile_design(EXPECT_DESIGN, "Guard")

        class Watch(module.AbstractWatch):
            def on_reading_from_sensor(self, event, discover):
                time.sleep(0.04)  # beyond the 25 ms deadline
                return event.value

        class K(module.AbstractK):
            def on_watch(self, value, discover):
                pass

        framework = module.GuardFramework()
        framework.implement_watch(Watch())
        framework.implement_k(K())
        sensor = framework.create_sensor(
            "s", CallableDriver(sources={"reading": lambda: 1.0})
        )
        framework.create_horn(
            "h", CallableDriver(actions={"honk": lambda level: None})
        )
        framework.start()
        sensor.publish("reading", 1.0)
        qos = framework.stats["qos"]["Watch"]
        assert qos["violations"] == 1

    def test_generated_app_applies_retry_policy(self):
        from repro.errors import DeliveryError
        from repro.runtime.device import DeviceDriver

        module = compile_design(EXPECT_DESIGN, "Guard")

        class Flaky(module.AbstractSensorDriver):
            def __init__(self):
                self.attempts = 0

            def read_reading(self):
                self.attempts += 1
                if self.attempts == 1:
                    raise DeliveryError("glitch")
                return 3.0

        design = analyze(EXPECT_DESIGN)
        from repro.runtime.device import DeviceInstance

        driver = Flaky()
        instance = DeviceInstance(design.devices["Sensor"], "s", driver)
        assert instance.read("reading") == 3.0
        assert driver.attempts == 2
        assert isinstance(driver, DeviceDriver)


@given(
    st.integers(min_value=1, max_value=12),
    st.integers(min_value=1, max_value=20),
)
@settings(max_examples=20, deadline=None)
def test_synthesized_designs_always_compile(devices, contexts):
    controllers = min(3, contexts)
    source = synthesize_design(devices, contexts, controllers)
    module = compile_design(source, "Synth")
    design = analyze(source)
    framework_class = module.SynthFramework
    assert set(framework_class.ABSTRACTS) == (
        set(design.contexts) | set(design.controllers)
    )
