"""Shipped artifacts (designs/, docs/designs/) stay in sync with the code."""

import os

import pytest

from repro.codegen.docgen import generate_docs
from repro.lang.loader import load_file

ROOT = os.path.join(os.path.dirname(__file__), "..")
DESIGNS_DIR = os.path.join(ROOT, "designs")
DOCS_DIR = os.path.join(ROOT, "docs", "designs")


def design_files():
    return sorted(
        name for name in os.listdir(DESIGNS_DIR)
        if name.endswith(".diaspec")
    )


class TestShippedDocs:
    def test_every_design_has_generated_docs(self):
        for filename in design_files():
            base = filename[: -len(".diaspec")]
            assert os.path.exists(
                os.path.join(DOCS_DIR, base + ".md")
            ), base

    @pytest.mark.parametrize("filename", design_files())
    def test_docs_are_current(self, filename):
        """docs/designs/*.md must be regenerated whenever the design or
        the doc generator changes (run:
        ``python -m repro doc designs/X.diaspec --title X >
        docs/designs/X.md``)."""
        base = filename[: -len(".diaspec")]
        from repro.sema.analyzer import analyze

        design = analyze(
            load_file(os.path.join(DESIGNS_DIR, filename))
        )
        expected = generate_docs(design, base)
        with open(os.path.join(DOCS_DIR, base + ".md"),
                  encoding="utf-8") as handle:
            actual = handle.read()
        assert actual == expected
