"""Shared fixtures: canonical designs and pre-built applications."""

from __future__ import annotations

import pytest

from repro.apps.cooker.design import DESIGN_SOURCE as COOKER_DESIGN
from repro.apps.parking.design import DESIGN_SOURCE as PARKING_DESIGN
from repro.runtime.clock import SimulationClock
from repro.sema.analyzer import analyze

# A compact design used by many unit tests: one device of each flavour,
# an event-driven context, a periodic grouped context, and a controller.
SMALL_DESIGN = """\
device Sensor {
    attribute zone as ZoneEnum;
    source reading as Float;
}

device Button {
    source pressed as Boolean;
}

device Siren {
    action sound(level as Integer);
}

enumeration ZoneEnum { NORTH, SOUTH }

context Average as Float {
    when periodic reading from Sensor <10 s>
    always publish;
}

context Spike as Float {
    when provided reading from Sensor
    maybe publish;
}

controller SirenController {
    when provided Spike
    do sound on Siren;
}
"""


@pytest.fixture
def small_design():
    return analyze(SMALL_DESIGN)


@pytest.fixture
def cooker_design():
    return analyze(COOKER_DESIGN)


@pytest.fixture
def parking_design():
    return analyze(PARKING_DESIGN)


@pytest.fixture
def clock():
    return SimulationClock()
