"""Parsing device, enumeration and structure declarations (Figures 5-6)."""

import pytest

from repro.errors import DiaSpecSyntaxError
from repro.lang.ast_nodes import (
    ActionDecl,
    AttributeDecl,
    DeviceDecl,
    EnumerationDecl,
    Param,
    SourceDecl,
    StructureDecl,
)
from repro.lang.parser import parse

FIGURE_5 = """\
device Clock {
    source tickSecond as Integer;
    source tickMinute as Integer;
    source tickHour as Integer;
}

device Cooker {
    source consumption as Float;
    action On;
    action Off;
}

device Prompter {
    source answer as String indexed by questionId as String;
    action askQuestion;
}
"""

FIGURE_6 = """\
device PresenceSensor {
    attribute parkingLot as ParkingLotEnum;
    source presence as Boolean;
}

device DisplayPanel {
    action update(status as String);
}

device ParkingEntrancePanel extends DisplayPanel {
    attribute location as ParkingLotEnum;
}

device CityEntrancePanel extends DisplayPanel {
    attribute location as CityEntranceEnum;
}

device Messenger {
    action sendMessage(message as String);
}

enumeration ParkingLotEnum {
    A22, B16, D6,
}

enumeration CityEntranceEnum {
    NORTH_EAST_14Y, SOUTH_EAST_1A,
}
"""


class TestFigure5:
    """The cooker monitoring device declarations parse exactly."""

    def test_clock_has_three_sources(self):
        spec = parse(FIGURE_5)
        clock = spec.devices[0]
        assert clock.name == "Clock"
        assert [s.name for s in clock.sources] == [
            "tickSecond",
            "tickMinute",
            "tickHour",
        ]
        assert all(s.type_name == "Integer" for s in clock.sources)

    def test_cooker_sources_and_actions(self):
        spec = parse(FIGURE_5)
        cooker = spec.devices[1]
        assert cooker.sources == (SourceDecl("consumption", "Float"),)
        assert cooker.actions == (ActionDecl("On"), ActionDecl("Off"))

    def test_indexed_source(self):
        spec = parse(FIGURE_5)
        prompter = spec.devices[2]
        answer = prompter.sources[0]
        assert answer.is_indexed
        assert answer.index_name == "questionId"
        assert answer.index_type_name == "String"

    def test_unindexed_source_has_no_index(self):
        spec = parse(FIGURE_5)
        assert not spec.devices[0].sources[0].is_indexed


class TestFigure6:
    """The parking management device declarations parse exactly."""

    def test_attribute_declaration(self):
        spec = parse(FIGURE_6)
        sensor = spec.devices[0]
        assert sensor.attributes == (
            AttributeDecl("parkingLot", "ParkingLotEnum"),
        )

    def test_inheritance(self):
        spec = parse(FIGURE_6)
        entrance = next(d for d in spec.devices
                        if d.name == "ParkingEntrancePanel")
        assert entrance.extends == "DisplayPanel"

    def test_action_with_parameter(self):
        spec = parse(FIGURE_6)
        panel = next(d for d in spec.devices if d.name == "DisplayPanel")
        assert panel.actions[0].params == (Param("status", "String"),)

    def test_enumeration_with_trailing_comma(self):
        spec = parse(FIGURE_6)
        lots = spec.enumerations[0]
        assert lots == EnumerationDecl(
            "ParkingLotEnum", ("A22", "B16", "D6")
        )

    def test_identifier_members_with_digits(self):
        spec = parse(FIGURE_6)
        entrances = spec.enumerations[1]
        assert "NORTH_EAST_14Y" in entrances.members


class TestStructures:
    def test_structure_fields_in_order(self):
        spec = parse(
            "structure Availability { parkingLot as LotEnum; "
            "count as Integer; }"
        )
        structure = spec.structures[0]
        assert structure == StructureDecl(
            "Availability",
            (Param("parkingLot", "LotEnum"), Param("count", "Integer")),
        )

    def test_empty_structure(self):
        spec = parse("structure Empty { }")
        assert spec.structures[0].fields == ()

    def test_array_field_type(self):
        spec = parse("structure Wrapper { values as Integer[]; }")
        assert spec.structures[0].fields[0].type_name == "Integer[]"


class TestDeviceVariants:
    def test_empty_device(self):
        spec = parse("device Null { }")
        assert spec.devices[0] == DeviceDecl("Null")

    def test_action_with_multiple_parameters(self):
        spec = parse(
            "device D { action go(speed as Float, direction as String); }"
        )
        action = spec.devices[0].actions[0]
        assert [p.name for p in action.params] == ["speed", "direction"]

    def test_multiple_attributes(self):
        spec = parse(
            "device D { attribute a as Integer; attribute b as String; }"
        )
        assert len(spec.devices[0].attributes) == 2

    def test_facets_interleaved_in_any_order(self):
        spec = parse(
            "device D { action x; source s as Float; attribute a as "
            "Integer; source t as Boolean; }"
        )
        device = spec.devices[0]
        assert len(device.sources) == 2
        assert len(device.actions) == 1
        assert len(device.attributes) == 1


class TestDeviceErrors:
    def test_missing_semicolon(self):
        with pytest.raises(DiaSpecSyntaxError):
            parse("device D { source x as Integer }")

    def test_missing_as(self):
        with pytest.raises(DiaSpecSyntaxError):
            parse("device D { source x Integer; }")

    def test_unknown_facet_keyword(self):
        with pytest.raises(DiaSpecSyntaxError, match="attribute"):
            parse("device D { publish x; }")

    def test_keyword_as_device_name(self):
        with pytest.raises(DiaSpecSyntaxError):
            parse("device context { }")

    def test_empty_enumeration_rejected(self):
        with pytest.raises(DiaSpecSyntaxError):
            parse("enumeration E { }")
