"""Unit tests for the DiaSpec tokenizer."""

import pytest

from repro.errors import DiaSpecSyntaxError
from repro.lang.lexer import KEYWORDS, Token, TokenKind, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind is not TokenKind.EOF]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        (token, __) = tokenize("tickSecond")
        assert token.kind is TokenKind.IDENT
        assert token.text == "tickSecond"

    def test_keywords_are_distinguished(self):
        (token, __) = tokenize("device")
        assert token.kind is TokenKind.KEYWORD

    def test_every_keyword_lexes_as_keyword(self):
        for word in KEYWORDS:
            (token, __) = tokenize(word)
            assert token.kind is TokenKind.KEYWORD, word

    def test_identifier_containing_keyword_prefix(self):
        (token, __) = tokenize("devices")
        assert token.kind is TokenKind.IDENT

    def test_underscore_identifier(self):
        (token, __) = tokenize("NORTH_EAST_14Y")
        assert token.kind is TokenKind.IDENT
        assert token.text == "NORTH_EAST_14Y"

    def test_integer_number(self):
        (token, __) = tokenize("42")
        assert token.kind is TokenKind.NUMBER
        assert token.text == "42"

    def test_decimal_number(self):
        (token, __) = tokenize("2.5")
        assert token.text == "2.5"

    def test_punctuation(self):
        assert kinds("{ } ( ) [ ] < > ; ,")[:-1] == [
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACKET,
            TokenKind.RBRACKET,
            TokenKind.LANGLE,
            TokenKind.RANGLE,
            TokenKind.SEMI,
            TokenKind.COMMA,
        ]


class TestComments:
    def test_line_comment_is_skipped(self):
        assert texts("a // comment here\nb") == ["a", "b"]

    def test_line_comment_at_eof(self):
        assert texts("a // trailing") == ["a"]

    def test_block_comment_is_skipped(self):
        assert texts("a /* x y z */ b") == ["a", "b"]

    def test_multiline_block_comment_keeps_line_numbers(self):
        tokens = tokenize("/* one\ntwo\nthree */ x")
        assert tokens[0].line == 4 or tokens[0].line == 3
        assert tokens[0].text == "x"

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(DiaSpecSyntaxError, match="unterminated"):
            tokenize("device /* oops")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("device Clock {\n    source x as Integer;\n}")
        by_text = {t.text: t for t in tokens if t.text}
        assert by_text["device"].line == 1
        assert by_text["device"].column == 1
        assert by_text["source"].line == 2
        assert by_text["source"].column == 5
        assert by_text["}"].line == 3

    def test_error_carries_position(self):
        with pytest.raises(DiaSpecSyntaxError) as excinfo:
            tokenize("device @")
        assert excinfo.value.line == 1
        assert excinfo.value.column == 8


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(DiaSpecSyntaxError, match="unexpected"):
            tokenize("$")

    def test_malformed_decimal(self):
        with pytest.raises(DiaSpecSyntaxError, match="decimal"):
            tokenize("3.")


class TestTokenApi:
    def test_is_keyword(self):
        token = Token(TokenKind.KEYWORD, "when", 1, 1)
        assert token.is_keyword("when")
        assert not token.is_keyword("device")

    def test_ident_is_not_keyword(self):
        token = Token(TokenKind.IDENT, "when2", 1, 1)
        assert not token.is_keyword("when2")
