"""The synthetic design generator (stress-test substrate)."""

import pytest

from repro.codegen.framework_gen import compile_design
from repro.lang.parser import parse
from repro.lang.pretty import pretty
from repro.lang.synth import synthesize_design
from repro.sema.analyzer import analyze


class TestSynthesis:
    def test_small_design_is_valid(self):
        design = analyze(synthesize_design(devices=3, contexts=5,
                                           controllers=2))
        assert len(design.devices) == 3
        assert len(design.contexts) == 5
        assert len(design.controllers) == 2

    def test_large_design_is_valid(self):
        design = analyze(
            synthesize_design(devices=40, contexts=60, controllers=20)
        )
        assert len(design.contexts) == 60
        # depth builds up through chained context subscriptions
        assert max(design.graph.layers.values()) > 3

    def test_roundtrips(self):
        source = synthesize_design(devices=5, contexts=9, controllers=3)
        spec = parse(source)
        assert parse(pretty(spec)) == spec

    def test_mapreduce_contexts_present(self):
        source = synthesize_design(
            devices=6, contexts=30, controllers=5,
            grouped_share=1.0, mapreduce_share=1.0,
        )
        assert "with map as Float reduce as Float" in source

    def test_compiles_to_framework(self):
        source = synthesize_design(devices=8, contexts=12, controllers=4)
        module = compile_design(source, "Synth")
        assert hasattr(module, "SynthFramework")
        assert len(module.SynthFramework.ABSTRACTS) == 16

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            synthesize_design(devices=0)
        with pytest.raises(ValueError):
            synthesize_design(contexts=2, controllers=3)

    def test_deterministic(self):
        assert synthesize_design(5, 7, 2) == synthesize_design(5, 7, 2)
